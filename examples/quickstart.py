"""Quickstart: optimize a small routine with the ILP scheduler.

Run:  python examples/quickstart.py

Parses a TIA assembly routine (the textual IA-64 subset; see
``repro.ir.parser``), runs the full postpass pipeline — register
renaming, dependence analysis, baseline list scheduling, the global
scheduling ILP with all paper extensions, schedule reconstruction,
verification and bundling — and prints before/after schedules.
"""

from repro import optimize_function, parse_function
from repro.ir.printer import format_schedule
from repro.sched.scheduler import ScheduleFeatures

ASM = """
.proc quickstart
.livein r32, r33, r40
.liveout r8
.block HEAD freq=100
  add r14 = r32, r33
  cmp.eq p6, p7 = r14, r0
  (p6) br.cond TAIL
.block WORK freq=60
  ld8 r15 = [r14] cls=heap
  add r16 = r15, r32
  shl r17 = r16, 2
  add r8 = r17, r40
.block TAIL freq=100
  st8 [r33+8] = r8 cls=stack
  br.ret b0
.endp
"""


def main():
    fn = parse_function(ASM)
    result = optimize_function(fn, ScheduleFeatures(time_limit=60))

    print(result.report())
    print()
    print("=== input schedule (heuristic baseline) ===")
    print(format_schedule(result.input_schedule, result.fn))
    print()
    print("=== optimized schedule (global ILP optimum) ===")
    print(format_schedule(result.output_schedule, result.fn))
    print()
    print("=== bundles ===")
    for block in result.output_schedule.block_order:
        for bundle in result.bundles_out.bundles_of(block):
            print(f"  {block}: {bundle!r}")


if __name__ == "__main__":
    main()
