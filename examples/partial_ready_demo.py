"""Figure 6 of the paper: partial-ready code motion.

Run:  python examples/partial_ready_demo.py

On the likely path the load's address is ready early, but a mov on the
unlikely side still redefines the address register. Partial-ready code
motion (Sec. 5.3) hoists a speculative copy above the join for the
likely path and places a compensation copy after the mov, so the load
executes twice on the unlikely path — exactly the transformation of
Fig. 6.
"""

from repro import optimize_function, parse_function
from repro.ir.printer import format_schedule
from repro.sched.scheduler import ScheduleFeatures
from repro.workloads.samples import fig6_partial_ready_sample


def main():
    fn = parse_function(fig6_partial_ready_sample())

    plain = optimize_function(
        fn, ScheduleFeatures(time_limit=60, partial_ready=False)
    )
    ready = optimize_function(fn, ScheduleFeatures(time_limit=60))

    print("--- without partial-ready motion ---")
    print(format_schedule(plain.output_schedule, plain.fn))
    print(f"weighted length: {plain.weighted_length_out:g}")
    print()
    print("--- with partial-ready motion (Fig. 6) ---")
    print(format_schedule(ready.output_schedule, ready.fn))
    print(f"weighted length: {ready.weighted_length_out:g}")
    print()
    loads = [
        p for p in ready.output_schedule.placements() if p.instr.is_load
    ]
    print("load copies:", ", ".join(f"{p.block}[{p.cycle}]" for p in loads))


if __name__ == "__main__":
    main()
