"""Micro-architecture exploration (paper Sec. 7).

Run:  python examples/microarch_exploration.py

"We can evaluate the impact of microarchitectural changes on performance
without compiler influence — it is simple to model architectural
restrictions and asymmetries with this method and to obtain schedules
that account for them optimally."

This example schedules one routine optimally for three machine variants:
the real Itanium 2, a narrow 2M/1I variant, and a hypothetical 8-wide
EPIC core — the compiler-independent architecture comparison the paper
proposes as a research application.
"""

from repro import optimize_function
from repro.machine.itanium2 import ITANIUM2
from repro.sched.scheduler import ScheduleFeatures
from repro.workloads.spec_routines import build_spec_routine

VARIANTS = {
    "itanium2 (6-wide, 4M/2I/2F/3B)": ITANIUM2,
    "narrow (3-wide, 2M/1I)": ITANIUM2.with_ports(
        issue_width=3, m_ports=2, i_ports=1
    ),
    "wide (8-wide, 5M/3I)": ITANIUM2.with_ports(
        issue_width=8, m_ports=5, i_ports=3
    ),
}


def main():
    fn = build_spec_routine("firstone")
    features = ScheduleFeatures(time_limit=60, verify=False)
    print(f"routine: {fn.name} ({fn.instruction_count} instructions)\n")
    baseline = None
    for label, machine in VARIANTS.items():
        result = optimize_function(fn, features, machine=machine)
        length = result.weighted_length_out
        if baseline is None:
            baseline = length
        print(
            f"{label:32s} weighted length {length:8.1f} "
            f"({length / baseline:5.2f}x vs itanium2)"
        )
    print(
        "\nEach schedule is optimal *for its machine*: differences measure "
        "the architecture, not the scheduler."
    )


if __name__ == "__main__":
    main()
