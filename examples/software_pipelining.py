"""Software pipelining: the paper's future-work extension, realized.

Run:  python examples/software_pipelining.py

Section 8 closes with "currently we are studying ... how [the model] can
be modified to support software pipelining". This example runs the
repository's ILP-based modulo scheduler on the Fig. 5 loop and compares
three treatments of the same loop body:

* plain global scheduling         (body length without cyclic motion),
* cyclic code motion (Sec. 5.2)   (body length with the latch copy),
* modulo scheduling               (kernel II — one iteration every II
                                   cycles at steady state).
"""

from repro import optimize_function, parse_function
from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.sched.scheduler import ScheduleFeatures
from repro.sched.swp import ModuloScheduler
from repro.workloads.samples import fig5_cyclic_sample


def main():
    text = fig5_cyclic_sample()

    plain = optimize_function(
        parse_function(text), ScheduleFeatures(time_limit=45, cyclic=False)
    )
    cyclic = optimize_function(
        parse_function(text), ScheduleFeatures(time_limit=45)
    )

    fn = parse_function(text)
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    swp = ModuloScheduler().schedule_loop(fn, cfg, ddg, cfg.loops[0])

    print("cycles per loop iteration (lower is better):")
    print(f"  global scheduling only   : {plain.output_schedule.block_length('LOOP')}")
    print(f"  + cyclic code motion     : {cyclic.output_schedule.block_length('LOOP')}")
    print(f"  modulo scheduling (II)   : {swp.ii}")
    print()
    print(
        f"bounds: ResMII={swp.mii_resource}, RecMII={swp.mii_recurrence} "
        f"-> II={swp.ii} is provably optimal; {swp.stages} stages"
    )
    print()
    print("kernel:")
    for slot, row in enumerate(swp.kernel()):
        text_row = "; ".join(f"{i.mnemonic} (stage {s})" for i, s in row)
        print(f"  [{slot}] {text_row}")
    print(f"prologue: {len(swp.prologue())} instructions, "
          f"epilogue: {len(swp.epilogue())} instructions")

    # Full code generation needs a *counted* loop (modulo variable
    # expansion; see repro.sched.swp_materialize). Pipeline one and prove
    # the rewrite semantically equivalent with the interpreter.
    from repro.ir.interp import Interpreter, initial_registers
    from repro.sched.swp_materialize import materialize_counted_loop

    counted_text = """
.proc counted
.livein r32, r33
.liveout r8
.block PRE freq=10
  add r15 = r32, 0
  mov r9 = 0
.block LOOP freq=130 succ=LOOP:0.92,POST:0.08
  add r20 = r15, r33
  ld8 r21 = [r20] cls=heap
  add r15 = r21, r32
  xor r23 = r21, r33
  st8 [r33+8] = r23 cls=glob
  adds r9 = 1, r9
  cmp.lt p16, p17 = r9, 13
  (p16) br.cond LOOP
.block POST freq=10
  add r8 = r15, 0
  br.ret b0
.endp
"""
    fn2 = parse_function(counted_text)
    cfg2 = CfgInfo(fn2)
    ddg2 = build_dependence_graph(fn2, cfg2, compute_liveness(fn2))
    msched = ModuloScheduler().schedule_loop(fn2, cfg2, ddg2, cfg2.loops[0])
    pipelined = materialize_counted_loop(fn2, cfg2, ddg2, cfg2.loops[0], msched)
    print()
    print(f"materialized counted loop at II={msched.ii}: blocks "
          f"{[b.name for b in pipelined.blocks]}")
    interp = Interpreter(max_blocks=2000)
    registers = initial_registers(fn2, 1)
    want = interp.run_function(fn2, registers, seed=1)
    got = interp.run_function(pipelined, registers, seed=1)
    same = (
        want.live_out_state(fn2) == got.live_out_state(pipelined)
        and want.memory == got.memory
    )
    print(f"interpreter differential: {'EQUAL' if same else 'MISMATCH'} "
          f"(original {want.instructions_executed} dynamic instructions, "
          f"pipelined {got.instructions_executed})")


if __name__ == "__main__":
    main()
