"""Figure 4 of the paper: control speculation with ld.s / chk.s.

Run:  python examples/speculation_demo.py

A load sits below a conditional branch, so hoisting it would risk a
spurious fault. The ILP considers two mutually exclusive instruction
groups (normal load vs. ld.s + chk.s, Sec. 5.1) and — because the load
is on the critical path — selects the speculative version: the ld.s
moves above the branch, the chk.s stays at the original program point,
and a recovery stub is recorded.
"""

from repro import optimize_function, parse_function
from repro.ir.printer import format_schedule
from repro.sched.scheduler import ScheduleFeatures
from repro.workloads.samples import fig4_speculation_sample


def main():
    fn = parse_function(fig4_speculation_sample())

    plain = optimize_function(
        fn,
        ScheduleFeatures(time_limit=60, speculation=False, data_speculation=False),
    )
    spec = optimize_function(fn, ScheduleFeatures(time_limit=60))

    print("--- without speculation ---")
    print(format_schedule(plain.output_schedule, plain.fn))
    print(f"weighted length: {plain.weighted_length_out:g}")
    print()
    print("--- with speculation (Fig. 4) ---")
    print(format_schedule(spec.output_schedule, spec.fn))
    print(f"weighted length: {spec.weighted_length_out:g}")
    print()
    for group in spec.reconstruction.selected_groups:
        print(
            f"selected {group.kind} speculation: {group.spec_load.mnemonic} "
            f"+ {group.check.mnemonic} (recovery label {group.check.target})"
        )
    for stub in spec.reconstruction.recovery_stubs:
        print(f"recovery stub {stub.label}: re-executes load {stub.load.uid}")


if __name__ == "__main__":
    main()
