"""Using the model as a schedule validator (paper Sec. 7).

Run:  python examples/validate_schedule.py

"A schedule is proven to be correct if it is a feasible solution of the
ILP ... This property can be used to validate the schedules produced by
heuristics." This example runs the operational version of that checker:
it validates the heuristic list scheduler's output, then corrupts the
schedule in two ways and shows the verifier catching both.
"""

from repro import parse_function
from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.sched.list_scheduler import ListScheduler
from repro.sched.regions import build_region
from repro.sched.verifier import verify_schedule
from repro.workloads.samples import fig4_speculation_sample


def main():
    fn = parse_function(fig4_speculation_sample())
    cfg = CfgInfo(fn)
    ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
    region = build_region(fn, cfg, ddg, allow_predication=False)

    schedule = ListScheduler().schedule(fn, ddg)
    report = verify_schedule(schedule, region)
    print(f"heuristic schedule: {'VALID' if report.ok else 'INVALID'} "
          f"({report.paths_checked} paths checked)")

    # Corruption 1: drop an instruction.
    dropped = schedule.group("B", 1).pop()
    report = verify_schedule(schedule, region)
    print(f"\nafter dropping {dropped.mnemonic} from B:")
    for problem in report.problems:
        print("  -", problem)
    schedule.group("B", 1).append(dropped)

    # Corruption 2: violate the load latency.
    load = next(i for i in fn.block("B").instructions if i.is_load)
    consumer_cycle = next(
        p.cycle for p in schedule.placements() if p.instr is load
    )
    group = schedule.cycles_of("B")
    # move every later instruction one cycle earlier than legal
    squeezed = ListScheduler().schedule(fn, ddg)
    from repro.sched.schedule import Schedule

    bad = Schedule(squeezed.block_order)
    for placement in squeezed.placements():
        cycle = 1 if placement.block == "B" else placement.cycle
        bad.place(placement.instr, placement.block, cycle)
    report = verify_schedule(bad, region)
    print("\nafter squeezing block B into one cycle:")
    for problem in report.problems:
        print("  -", problem)


if __name__ == "__main__":
    main()
