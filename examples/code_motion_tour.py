"""Figure 1 of the paper: the kinds of global code motion.

Run:  python examples/code_motion_tour.py

A diamond-shaped routine demonstrates what the ILP does with each
motion kind: speculative upward motion out of a side block (kind I),
motion across the join with automatic compensation copies (kind IV),
and block collapapse — when a side block empties, its unconditional
branch disappears (Sec. 5.4).
"""

from repro import optimize_function, parse_function
from repro.ir.printer import format_schedule
from repro.sched.scheduler import ScheduleFeatures
from repro.workloads.samples import fig1_code_motion_sample


def main():
    fn = parse_function(fig1_code_motion_sample())
    result = optimize_function(fn, ScheduleFeatures(time_limit=60))

    print(result.report())
    print()
    print("--- input (baseline local schedule) ---")
    print(format_schedule(result.input_schedule, result.fn))
    print()
    print("--- optimized ---")
    print(format_schedule(result.output_schedule, result.fn))
    print()

    collapsed = result.output_schedule.collapsed_blocks()
    if collapsed:
        print(f"collapsed blocks: {', '.join(collapsed)} (their branches vanish)")
    compensated = [
        p
        for p in result.output_schedule.placements()
        if p.instr.origin is not None
    ]
    if compensated:
        print("compensation copies:")
        for placement in compensated:
            print(
                f"  {placement.instr.mnemonic} duplicated into "
                f"{placement.block}[{placement.cycle}]"
            )


if __name__ == "__main__":
    main()
