"""Figure 5 of the paper: cyclic code motion.

Run:  python examples/cyclic_motion_demo.py

The loop's load address depends on the previous iteration's result, so
the address computation cannot simply be hoisted. Cyclic code motion
(Sec. 5.2) places one copy above the loop (feeding iteration 1) and one
copy in the latch (iteration i computes the address iteration i+1
needs), shortening the loop body's critical path.
"""

from repro import optimize_function, parse_function
from repro.ir.printer import format_schedule
from repro.sched.scheduler import ScheduleFeatures
from repro.workloads.samples import fig5_cyclic_sample


def main():
    fn = parse_function(fig5_cyclic_sample())

    plain = optimize_function(fn, ScheduleFeatures(time_limit=60, cyclic=False))
    cyclic = optimize_function(fn, ScheduleFeatures(time_limit=60))

    print("--- without cyclic motion ---")
    print(format_schedule(plain.output_schedule, plain.fn))
    print(f"loop body length: {plain.output_schedule.block_length('LOOP')}")
    print()
    print("--- with cyclic motion (Fig. 5) ---")
    print(format_schedule(cyclic.output_schedule, cyclic.fn))
    print(f"loop body length: {cyclic.output_schedule.block_length('LOOP')}")
    print()
    print(
        "note the copies of the address computation: one in PRE (first\n"
        "iteration) and one in the loop's final cycle (next iteration)."
    )


if __name__ == "__main__":
    main()
