"""The full postpass pipeline on a Table 1 routine, with simulation.

Run:  python examples/postpass_pipeline.py [routine] [scale]

Reproduces one row of the paper's evaluation end to end: generate the
calibrated synthetic routine, undo its input speculation, reschedule
with the ILP, bundle, verify, then run both schedules through the
pipeline simulator to derive routine and program speedups the way
Sec. 6.2 does.
"""

import sys

from repro.tools.experiments import run_routine


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "xfree"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    experiment = run_routine(name, scale=scale)
    row1 = experiment.table1_row()
    row2 = experiment.table2_row()

    print(experiment.result.report())
    print()
    print(f"Table 1 row for {name}:")
    print(f"  weight                 {row1['weight']:.0%}")
    print(f"  static reduction       {row1['static_red']:.1%}")
    print(f"  instructions           {row1['ins_in']} -> {row1['ins_out']}"
          f" ({row1['delta_ins']:+.0%})")
    print(f"  bundles delta          {row1['delta_bundles']:+.0%}")
    print(f"  weighted static IPC    {row1['ipc_in']:.1f} -> {row1['ipc_out']:.1f}")
    print(f"  simulated speedup      routine {row1['speedup_routine']:+.1%}, "
          f"program {row1['speedup_program']:+.2%}")
    print()
    print(f"Table 2 row for {name}:")
    print(f"  blocks/loops           {row2['blocks']}/{row2['loops']}")
    print(f"  speculation in/poss/out {row2['spec_in']}/{row2['spec_poss']}/"
          f"{row2['spec_out']}")
    print(f"  ILP size               {row2['constraints']} constraints, "
          f"{row2['variables']} variables")
    print(f"  search                 {row2['nodes']} nodes, {row2['time']:.1f}s")
    print()
    print(f"  stall profile (output schedule): "
          f"{experiment.sim_out.unstalled_fraction:.0%} unstalled — the paper "
          "attributes runtime gains to exactly this fraction")


if __name__ == "__main__":
    main()
