"""Decision variables and linear-expression algebra.

This is the modeling vocabulary of the ILP substrate: :class:`Var` objects
are created through :meth:`repro.ilp.model.Model.add_var`, combined with
``+``, ``-``, ``*`` and :func:`lin_sum` into :class:`LinExpr` objects, and
turned into constraints with ``<=``, ``>=`` and ``==``.
"""

from __future__ import annotations

import numbers


class Var:
    """A single decision variable.

    Instances are interned per-model and identified by ``index``; identity
    (not name) is what the expression algebra keys on. ``lb``/``ub`` may be
    ``None`` for unbounded, and ``is_integer`` selects integrality (binaries
    are integer variables with bounds [0, 1]).
    """

    __slots__ = ("index", "name", "lb", "ub", "is_integer")

    def __init__(self, index, name, lb=0.0, ub=None, is_integer=False):
        self.index = index
        self.name = name
        self.lb = lb
        self.ub = ub
        self.is_integer = is_integer

    @property
    def is_binary(self):
        return self.is_integer and self.lb == 0 and self.ub == 1

    def to_expr(self):
        return LinExpr({self: 1.0})

    # -- algebra -----------------------------------------------------------
    def __add__(self, other):
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-self.to_expr()) + other

    def __mul__(self, coef):
        return self.to_expr() * coef

    __rmul__ = __mul__

    def __neg__(self):
        return self.to_expr() * -1.0

    # -- relational (produce constraint specs) ------------------------------
    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # noqa: D105 - builds a constraint, like PuLP
        if isinstance(other, (Var, LinExpr, numbers.Number)):
            return self.to_expr() == other
        return NotImplemented

    def __hash__(self):
        return id(self)

    def __repr__(self):
        return f"Var({self.name})"


class LinExpr:
    """An affine expression ``sum(coef_i * var_i) + constant``.

    Immutable from the caller's point of view: every operator returns a new
    expression. Terms with coefficient 0 are dropped eagerly so expressions
    stay compact even after long chains of additions.
    """

    __slots__ = ("terms", "constant")

    def __init__(self, terms=None, constant=0.0):
        self.terms = dict(terms) if terms else {}
        self.constant = float(constant)

    @staticmethod
    def _coerce(value):
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return value.to_expr()
        if isinstance(value, numbers.Number):
            return LinExpr(constant=float(value))
        raise TypeError(f"cannot use {value!r} in a linear expression")

    def copy(self):
        return LinExpr(self.terms, self.constant)

    # -- algebra -----------------------------------------------------------
    def __add__(self, other):
        other = self._coerce(other)
        terms = dict(self.terms)
        for var, coef in other.terms.items():
            new = terms.get(var, 0.0) + coef
            if new == 0.0:
                terms.pop(var, None)
            else:
                terms[var] = new
        return LinExpr(terms, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other):
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other):
        return (self * -1.0) + other

    def __mul__(self, coef):
        if not isinstance(coef, numbers.Number):
            raise TypeError("linear expressions can only be scaled by numbers")
        coef = float(coef)
        if coef == 0.0:
            return LinExpr()
        return LinExpr(
            {var: c * coef for var, c in self.terms.items()}, self.constant * coef
        )

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1.0

    # -- relational --------------------------------------------------------
    def __le__(self, other):
        from repro.ilp.model import Constraint, Sense

        return Constraint._from_sides(self, self._coerce(other), Sense.LE)

    def __ge__(self, other):
        from repro.ilp.model import Constraint, Sense

        return Constraint._from_sides(self, self._coerce(other), Sense.GE)

    def __eq__(self, other):  # noqa: D105
        from repro.ilp.model import Constraint, Sense

        if isinstance(other, (Var, LinExpr, numbers.Number)):
            return Constraint._from_sides(self, self._coerce(other), Sense.EQ)
        return NotImplemented

    def __hash__(self):
        return id(self)

    # -- evaluation --------------------------------------------------------
    def value(self, assignment):
        """Evaluate under ``assignment``, a mapping ``Var -> float``."""
        total = self.constant
        for var, coef in self.terms.items():
            total += coef * assignment[var]
        return total

    def __repr__(self):
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


def lin_sum(items):
    """Sum an iterable of Vars/LinExprs/numbers into one LinExpr.

    Unlike repeated ``+`` this builds the term dictionary in place, which
    matters for the resource constraints that sum hundreds of variables.
    """
    terms = {}
    constant = 0.0
    for item in items:
        if isinstance(item, Var):
            terms[item] = terms.get(item, 0.0) + 1.0
        elif isinstance(item, LinExpr):
            for var, coef in item.terms.items():
                terms[var] = terms.get(var, 0.0) + coef
            constant += item.constant
        elif isinstance(item, numbers.Number):
            constant += float(item)
        else:
            raise TypeError(f"cannot sum {item!r}")
    return LinExpr({v: c for v, c in terms.items() if c != 0.0}, constant)
