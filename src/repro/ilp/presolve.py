"""Bound-tightening presolve for the matrix form of a model.

The transformations are deliberately *index-stable*: no variables or rows
are removed, only variable bounds are tightened (and integer bounds rounded
inward), so solutions map back to the original model without bookkeeping.
A few rounds usually fix a large share of the scheduler's ``a`` variables
whose equalities chain them to already-fixed neighbours.

The tightening is fully vectorized over the CSR entries: per round it costs
a handful of O(nnz) numpy passes, so it is cheap enough to run in front of
every solve (the pre-overhaul row-by-row Python loop took seconds on the
Table 2 models and dominated the branch-and-bound root).
"""

from __future__ import annotations

import numpy as np

from repro.obs import core as obs

_TIGHTEN_TOL = 1e-9
_FEAS_TOL = 1e-7


def presolve_arrays(arrays, max_rounds=6):
    """Tighten variable bounds from single-row implications.

    Returns ``(arrays, infeasible)`` where ``arrays`` shares the matrix but
    carries new ``lb``/``ub`` vectors. For every row ``b_lo <= a'x <= b_hi``
    and every variable with nonzero coefficient the classic activity-bound
    argument tightens that variable's bound using the minimum/maximum
    activity of the remaining terms. Rounds apply all row implications
    simultaneously and repeat until a fixed point (or ``max_rounds``).
    """
    if not obs.ENABLED:
        return _presolve_impl(arrays, max_rounds)
    with obs.span(
        "presolve", rows=int(arrays["A"].shape[0]), cols=len(arrays["lb"])
    ) as span:
        out, infeasible = _presolve_impl(arrays, max_rounds)
        fixed = 0 if infeasible else fixed_variable_count(out)
        span.set_attr("fixed_vars", fixed)
        span.set_attr("infeasible", infeasible)
    obs.counter("presolve_calls_total", 1)
    obs.counter("presolve_fixed_vars_total", fixed)
    return out, infeasible


def _presolve_impl(arrays, max_rounds):
    a_csr = arrays["A"].tocsr()
    lb = arrays["lb"].astype(float).copy()
    ub = arrays["ub"].astype(float).copy()
    integrality = arrays["integrality"]
    b_lo, b_hi = arrays["b_lo"], arrays["b_hi"]

    # Round integer bounds inward once up front.
    _round_integer_bounds(lb, ub, integrality)
    if np.any(lb > ub + _TIGHTEN_TOL):
        return arrays, True

    indptr, cols, coefs = a_csr.indptr, a_csr.indices, a_csr.data
    n_rows = a_csr.shape[0]
    if n_rows == 0 or coefs.size == 0:
        out = dict(arrays)
        out["lb"], out["ub"] = lb, ub
        return out, False

    rows = np.repeat(np.arange(n_rows), np.diff(indptr))
    positive = coefs > 0
    finite_hi = np.isfinite(b_hi)
    finite_lo = np.isfinite(b_lo)

    for _ in range(max_rounds):
        # Per-entry extreme contributions and per-row activity bounds.
        contrib_min = np.where(positive, coefs * lb[cols], coefs * ub[cols])
        contrib_max = np.where(positive, coefs * ub[cols], coefs * lb[cols])
        row_min = np.bincount(rows, weights=contrib_min, minlength=n_rows)
        row_max = np.bincount(rows, weights=contrib_max, minlength=n_rows)
        if np.any(row_min[finite_hi] > b_hi[finite_hi] + _FEAS_TOL) or np.any(
            row_max[finite_lo] < b_lo[finite_lo] - _FEAS_TOL
        ):
            return arrays, True

        with np.errstate(invalid="ignore"):
            rest_min = row_min[rows] - contrib_min
            rest_max = row_max[rows] - contrib_max
        ok_min = np.isfinite(rest_min)
        ok_max = np.isfinite(rest_max)
        entry_hi = b_hi[rows]
        entry_lo = b_lo[rows]

        new_ub = ub.copy()
        new_lb = lb.copy()
        with np.errstate(invalid="ignore", divide="ignore"):
            # coef > 0: a_j x_j <= b_hi - rest_min  and  a_j x_j >= b_lo - rest_max
            mask = positive & ok_min & np.isfinite(entry_hi)
            np.minimum.at(
                new_ub, cols[mask], (entry_hi[mask] - rest_min[mask]) / coefs[mask]
            )
            mask = positive & ok_max & np.isfinite(entry_lo)
            np.maximum.at(
                new_lb, cols[mask], (entry_lo[mask] - rest_max[mask]) / coefs[mask]
            )
            # coef < 0: dividing flips the side each row bound tightens.
            mask = ~positive & ok_min & np.isfinite(entry_hi)
            np.maximum.at(
                new_lb, cols[mask], (entry_hi[mask] - rest_min[mask]) / coefs[mask]
            )
            mask = ~positive & ok_max & np.isfinite(entry_lo)
            np.minimum.at(
                new_ub, cols[mask], (entry_lo[mask] - rest_max[mask]) / coefs[mask]
            )

        _round_integer_bounds(new_lb, new_ub, integrality)
        if np.any(new_lb > new_ub + _TIGHTEN_TOL):
            return arrays, True
        changed = np.any(new_ub < ub - _TIGHTEN_TOL) or np.any(
            new_lb > lb + _TIGHTEN_TOL
        )
        lb, ub = new_lb, new_ub
        if not changed:
            break

    out = dict(arrays)
    out["lb"], out["ub"] = lb, ub
    return out, False


def _round_integer_bounds(lb, ub, integrality):
    mask = integrality.astype(bool)
    finite_lb = mask & np.isfinite(lb)
    finite_ub = mask & np.isfinite(ub)
    lb[finite_lb] = np.ceil(lb[finite_lb] - 1e-9)
    ub[finite_ub] = np.floor(ub[finite_ub] + 1e-9)


def fixed_variable_count(arrays):
    """Number of variables whose bounds pin them to a single value."""
    return int(np.sum(np.isclose(arrays["lb"], arrays["ub"])))
