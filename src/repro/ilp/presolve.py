"""Bound-tightening presolve for the matrix form of a model.

The transformations are deliberately *index-stable*: no variables or rows
are removed, only variable bounds are tightened (and integer bounds rounded
inward), so solutions map back to the original model without bookkeeping.
Two passes usually fix a large share of the scheduler's ``a`` variables
whose equalities chain them to already-fixed neighbours.
"""

from __future__ import annotations

import math

import numpy as np


def presolve_arrays(arrays, max_rounds=3):
    """Tighten variable bounds from single-row implications.

    Returns ``(arrays, infeasible)`` where ``arrays`` shares the matrix but
    carries new ``lb``/``ub`` vectors. For every row ``b_lo <= a'x <= b_hi``
    and every variable with nonzero coefficient the classic activity-bound
    argument tightens that variable's bound using the minimum/maximum
    activity of the remaining terms.
    """
    a_csr = arrays["A"].tocsr()
    lb = arrays["lb"].astype(float).copy()
    ub = arrays["ub"].astype(float).copy()
    integrality = arrays["integrality"]
    b_lo, b_hi = arrays["b_lo"], arrays["b_hi"]

    # Round integer bounds inward once up front.
    _round_integer_bounds(lb, ub, integrality)
    if np.any(lb > ub + 1e-9):
        return arrays, True

    indptr, indices, data = a_csr.indptr, a_csr.indices, a_csr.data
    n_rows = a_csr.shape[0]
    for _ in range(max_rounds):
        changed = False
        for row in range(n_rows):
            lo_req, hi_req = b_lo[row], b_hi[row]
            if not (np.isfinite(lo_req) or np.isfinite(hi_req)):
                continue
            cols = indices[indptr[row] : indptr[row + 1]]
            coefs = data[indptr[row] : indptr[row + 1]]
            if cols.size == 0 or cols.size > 64:
                continue  # long rows rarely tighten anything; skip for speed
            mins = np.where(coefs > 0, coefs * lb[cols], coefs * ub[cols])
            maxs = np.where(coefs > 0, coefs * ub[cols], coefs * lb[cols])
            min_total, max_total = mins.sum(), maxs.sum()
            if min_total > hi_req + 1e-7 or max_total < lo_req - 1e-7:
                return arrays, True
            for k in range(cols.size):
                j, coef = cols[k], coefs[k]
                rest_min = min_total - mins[k]
                rest_max = max_total - maxs[k]
                if not (np.isfinite(rest_min) and np.isfinite(rest_max)):
                    continue
                if coef > 0:
                    if np.isfinite(hi_req):
                        new_ub = (hi_req - rest_min) / coef
                        if new_ub < ub[j] - 1e-9:
                            ub[j] = new_ub
                            changed = True
                    if np.isfinite(lo_req):
                        new_lb = (lo_req - rest_max) / coef
                        if new_lb > lb[j] + 1e-9:
                            lb[j] = new_lb
                            changed = True
                else:
                    if np.isfinite(hi_req):
                        new_lb = (hi_req - rest_min) / coef
                        if new_lb > lb[j] + 1e-9:
                            lb[j] = new_lb
                            changed = True
                    if np.isfinite(lo_req):
                        new_ub = (lo_req - rest_max) / coef
                        if new_ub < ub[j] - 1e-9:
                            ub[j] = new_ub
                            changed = True
            if changed:
                _round_integer_bounds(lb, ub, integrality)
                if np.any(lb > ub + 1e-9):
                    return arrays, True
        if not changed:
            break

    out = dict(arrays)
    out["lb"], out["ub"] = lb, ub
    return out, False


def _round_integer_bounds(lb, ub, integrality):
    mask = integrality.astype(bool)
    finite_lb = mask & np.isfinite(lb)
    finite_ub = mask & np.isfinite(ub)
    lb[finite_lb] = np.ceil(lb[finite_lb] - 1e-9)
    ub[finite_ub] = np.floor(ub[finite_ub] + 1e-9)


def fixed_variable_count(arrays):
    """Number of variables whose bounds pin them to a single value."""
    return int(np.sum(np.isclose(arrays["lb"], arrays["ub"])))
