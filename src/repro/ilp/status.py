"""Result types shared by all ILP/LP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # incumbent found, optimality not proven (limits hit)
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    NO_SOLUTION = "no_solution"  # limits hit before any incumbent

    @property
    def has_solution(self):
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolverStats:
    """Search statistics, the raw material of the paper's Table 2.

    ``nodes`` counts branch-and-bound nodes *explored* (the root relaxation
    counts as node 0, so a model solved at the root reports 0 — matching the
    convention CPLEX uses in the paper's table).
    """

    nodes: int = 0
    lp_solves: int = 0
    simplex_iterations: int = 0
    time_seconds: float = 0.0
    best_bound: float | None = None
    gap: float | None = None
    backend: str = ""
    # Relaxations that hit an iteration/numerical limit and returned no
    # verdict. Any nonzero count demotes a finished search from OPTIMAL to
    # FEASIBLE: an undecided subtree may hide the true optimum, and
    # silently pruning it (the pre-overhaul behaviour) could discard it.
    unknown_lps: int = 0
    # LP relaxations answered from a warm-started basis (simplex engine).
    warm_starts: int = 0
    # Incumbent/best-bound convergence record
    # (:class:`repro.obs.insight.GapTimeline`); both backends attach one
    # and close it on every exit path, fault and deadline exits included.
    gap_timeline: object = None
    # Plain-data pseudocost-table snapshot (bb backend; top branching
    # variables by history, see ``_Pseudocosts.snapshot``).
    pseudocosts: object = None
    # Race breakdown when ``backend == "portfolio"`` (plain dict: roster,
    # winner, proof kind, per-lane status/fault/seed-transfer counts; see
    # ``PortfolioSolver._detail``). ``None`` for single-backend solves.
    portfolio: object = None


@dataclass
class Solution:
    """A (possibly optimal) assignment for a model.

    ``values`` maps :class:`~repro.ilp.expr.Var` to float; integer variables
    in an integral solution carry values within the integrality tolerance of
    an integer and should be read through :meth:`value_of` which rounds them.
    """

    status: SolveStatus
    objective: float | None = None
    values: dict = field(default_factory=dict)
    stats: SolverStats = field(default_factory=SolverStats)

    def value_of(self, var):
        """Value of ``var``, rounded to an exact integer for integer vars."""
        raw = self.values[var]
        if var.is_integer:
            return int(round(raw))
        return raw

    def __bool__(self):
        return self.status.has_solution


def record_solve_metrics(stats, seeded=False):
    """Publish one solve's :class:`SolverStats` to :mod:`repro.obs`.

    Called by every backend after a completed solve (both backends
    already collect these numbers for Table 2, so telemetry costs one
    guarded call per *solve*, nothing per node). ``seeded`` marks a
    solve that started from a caller-provided incumbent — the
    warm-start currency of the HiGHS backend, where scipy offers no
    basis injection; the bb/simplex backend additionally reports true
    basis reuse through ``stats.warm_starts``.
    """
    from repro.obs import core as obs

    if not obs.ENABLED:
        return
    backend = stats.backend or "unknown"
    obs.counter("solves_total", 1, backend=backend)
    obs.counter("bb_nodes_total", stats.nodes, backend=backend)
    obs.histogram("solve_nodes", stats.nodes, backend=backend)
    obs.histogram("solve_seconds", stats.time_seconds, backend=backend)
    obs.counter("warm_start_hits_total", stats.warm_starts, backend=backend)
    obs.counter(
        "warm_start_misses_total",
        max(0, stats.lp_solves - stats.warm_starts),
        backend=backend,
    )
    if stats.simplex_iterations:
        obs.counter(
            "simplex_iterations_total",
            stats.simplex_iterations,
            backend=backend,
        )
    if seeded:
        obs.counter("incumbent_seeded_solves_total", 1, backend=backend)
    if stats.gap is not None:
        obs.histogram("solve_gap", stats.gap, backend=backend)
