"""Boundary constraints for region-decomposed scheduling ILPs.

When :mod:`repro.sched.decompose` splits a routine at cut blocks, each
partition is solved as an independent phase-1/phase-2 ILP.  The whole-
function model's cross-partition rows (dependences, liveness-induced
exclusivity, path constraints through the cut) are replaced by the
*boundary constraints* this module materializes:

* **Pinned live ranges.**  Every value that crosses a cut is, by cut
  legality, live exactly at the cut block, so the partition's
  sub-function carries ``live_in = live_in(cut)`` and ``live_out =
  live_in(next cut)`` from the *whole-function* liveness fixpoint.
  Downstream analyses (dependence graph, exclusive-def classification,
  Θ construction) then reproduce the whole model's rows restricted to
  the partition: a register consumed later is not "exclusive", a value
  produced earlier arrives through the live-in set, and anti/output
  dependences against the far side collapse into the boundary sets.

* **Pinned cycle offsets.**  Cross-cut dependences need no explicit
  latency rows: the machine model flushes in-flight latencies at block
  boundaries, and the stitched block order places every producer's
  partition strictly before its cross-cut consumers — the offset of a
  partition's first cycle is simply the end of the previous partition,
  which the stitcher (not the model) fixes.

* **Exit stubs.**  Each non-final partition ends in a synthetic empty
  block *named after the next cut block*.  The stub absorbs every
  crossing edge, which makes the sub-CFG's dominance **and**
  postdominance relations agree exactly with the whole function's
  restricted to the partition (a crossing edge would otherwise delete
  an exit path and let the sub-region classify unsafe upward motion as
  safe).  Stubs host no placements: they are recorded in the region's
  ``forbidden_blocks`` and their frequency is set above every
  speculation cap so no Θ-extension reaches into them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.block import BasicBlock
from repro.ir.function import Function


@dataclass(frozen=True)
class BoundarySpec:
    """The boundary constraints of one partition.

    ``entry`` is the cut block opening the partition (the function entry
    for the first one); ``exit`` the next cut block — ``None`` for the
    last partition. ``live_in``/``live_out`` are the pinned cross-cut
    live ranges from the whole-function liveness fixpoint.
    """

    index: int
    entry: str
    exit: str | None
    blocks: tuple  # partition block names, whole-function layout order
    live_in: frozenset
    live_out: frozenset


def partition_specs(fn, liveness, partitions):
    """Boundary constraints for each partition of ``fn``.

    ``partitions`` is a list of block-name lists (contiguous topological
    intervals, each starting at its cut block). The first partition pins
    the routine's own ``live_in``; the last pins ``live_out``; interior
    boundaries pin ``live_in(next cut)``. A partition containing a real
    exit (a return inside the routine) additionally keeps the routine's
    ``live_out`` — values escaping through that return must stay live.
    """
    exits = set(fn.exit_blocks)
    specs = []
    for index, blocks in enumerate(partitions):
        first = index == 0
        last = index == len(partitions) - 1
        entry = blocks[0]
        nxt = None if last else partitions[index + 1][0]
        live_in = set(fn.live_in) if first else set(liveness.live_in[entry])
        live_out = set(fn.live_out) if last else set(liveness.live_in[nxt])
        if not last and any(name in exits for name in blocks):
            live_out |= set(fn.live_out)
        specs.append(BoundarySpec(
            index=index,
            entry=entry,
            exit=nxt,
            blocks=tuple(blocks),
            live_in=frozenset(live_in),
            live_out=frozenset(live_out),
        ))
    return specs


def stub_frequency(fn, freq_cap):
    """A block frequency no speculation cap can admit.

    The freq-capped Θ of a load admits blocks up to ``cap * freq(source)``;
    anything above ``cap * max_freq`` is therefore unreachable for every
    load. Finite (not ``inf``) so ``freq * length`` objective terms stay
    well-defined when a solver probes the stub's (zero) length.
    """
    max_freq = max((block.freq for block in fn.blocks), default=1.0)
    cap = freq_cap if freq_cap and freq_cap == freq_cap else 5.0  # NaN-safe
    return max(cap, 1.0) * max(max_freq, 1.0) + 1.0


def build_partition_function(fn, spec, stub_freq):
    """The sub-:class:`Function` for one partition.

    Shares the whole function's :class:`BasicBlock`/instruction objects
    (identity is what lets the stitcher map sub-schedules back), keeps
    the whole function's textual block order restricted to the
    partition, and appends the exit stub (an *empty* block named
    ``spec.exit``) when the partition is not the last one. Edges are the
    whole function's restricted to the partition plus the crossing edges
    into the stub — which resolve by name, so branch targets stay valid.
    """
    inside = set(spec.blocks)
    sub = Function(
        name=f"{fn.name}#p{spec.index}",
        live_in=set(spec.live_in),
        live_out=set(spec.live_out),
    )
    for block in fn.blocks:
        if block.name in inside:
            sub.add_block(block)
    if spec.exit is not None:
        sub.add_block(BasicBlock(name=spec.exit, freq=stub_freq))
    for edge in fn.edges:
        if edge.src not in inside:
            continue
        if edge.dst in inside or edge.dst == spec.exit:
            sub.add_edge(edge.src, edge.dst, edge.prob)
    return sub
