"""Integer linear programming substrate.

The paper solves its scheduling models with CPLEX 8.0, which is not
available here, so this package provides the whole ILP stack from scratch:

``repro.ilp.expr``
    Variables and linear-expression algebra (a small modeling language).
``repro.ilp.model``
    The :class:`Model` container: variables, linear constraints, objective,
    conversion to matrix form, LP-format export.
``repro.ilp.simplex``
    A dense two-phase primal simplex for linear programs (used for the
    relaxations of small models and as an independent cross-check of the
    scipy backend).
``repro.ilp.branch_bound``
    A pure-Python branch-and-bound MILP solver over LP relaxations.
``repro.ilp.highs``
    A backend that hands the matrix form to ``scipy.optimize.milp``
    (the HiGHS branch-and-cut solver bundled with scipy).
``repro.ilp.presolve``
    Bound tightening and fixed-variable elimination applied before search.

Solvers share the :class:`~repro.ilp.status.Solution` result type, which
carries the variable assignment, objective value, proof status and search
statistics (node counts and times reported in Table 2).
"""

from repro.ilp.expr import Var, LinExpr, lin_sum
from repro.ilp.model import Model, Constraint, Sense
from repro.ilp.status import SolveStatus, Solution, SolverStats
from repro.ilp.branch_bound import BranchBoundSolver
from repro.ilp.highs import HighsSolver
from repro.ilp.portfolio import IncumbentBus, PortfolioSolver, RunnerControl
from repro.ilp.simplex import SimplexSolver, LpResult

#: Backends :func:`solve_model` dispatches on; eager feature validation
#: (``ScheduleFeatures.__post_init__``) and the CLIs list these instead of
#: hard-coding their own copies.
KNOWN_BACKENDS = ("highs", "bb", "portfolio")

__all__ = [
    "Var",
    "LinExpr",
    "lin_sum",
    "Model",
    "Constraint",
    "Sense",
    "SolveStatus",
    "Solution",
    "SolverStats",
    "BranchBoundSolver",
    "HighsSolver",
    "PortfolioSolver",
    "IncumbentBus",
    "RunnerControl",
    "SimplexSolver",
    "LpResult",
    "KNOWN_BACKENDS",
    "solve_model",
]


def solve_model(
    model,
    backend="highs",
    incumbent=None,
    cutoff=None,
    deadline=None,
    fault_site=None,
    **kwargs,
):
    """Solve ``model`` with the named backend (``"highs"`` or ``"bb"``).

    Returns a :class:`Solution`. This is the convenience entry point used
    throughout the scheduler; pass ``time_limit`` / ``node_limit`` through
    ``kwargs`` to bound the search.

    ``incumbent`` (a ``{Var: value}`` mapping or index-aligned array) seeds
    the search with a known feasible point, and ``cutoff`` rejects any
    solution not strictly better than the given objective. Both are solve-
    time inputs, not solver configuration, so they are threaded into the
    ``solve`` call rather than the backend constructor; the cut loop uses
    them to hand each re-solve the previous attempt's optimum.

    ``deadline`` (a :class:`repro.tools.deadline.Deadline`) clips the
    effective ``time_limit`` to the budget's *remaining* seconds, so a
    chain of solves (phase 1, cut re-solves, phase 2) shares one clock
    instead of each starting a fresh limit. ``fault_site`` names this
    solve for :mod:`repro.tools.faults` injection; ``None`` (the default)
    is never faulted.
    """
    if deadline is not None:
        kwargs["time_limit"] = deadline.bound(kwargs.get("time_limit"))
    if backend == "highs":
        solver = HighsSolver(**kwargs)
    elif backend == "bb":
        solver = BranchBoundSolver(**kwargs)
    elif backend == "portfolio":
        solver = PortfolioSolver(**kwargs)
    else:
        raise ValueError(
            f"unknown ILP backend: {backend!r} "
            f"(expected one of {', '.join(KNOWN_BACKENDS)})"
        )
    return solver.solve(
        model, incumbent=incumbent, cutoff=cutoff, fault_site=fault_site
    )
