"""Order/disjunctive scheduling encoding — the portfolio's third lane.

The time-indexed formulation (paper eqs. 2–7) spends one binary per
(instruction, block, cycle) triple; its LP relaxation is strong but the
variable count scales with the schedule horizon.  This module provides
the classic alternative from the job-shop literature (and the SMT
software pipelining line of work in PAPERS.md): one *integer cycle
variable* per instruction plus pairwise *sequencing binaries* on
resource-conflicting pairs.  The model is small on long blocks exactly
where the time-indexed encoding is large, which is what makes the
portfolio diverse rather than redundant.

The encoding deliberately solves a **restriction** of the full problem:
every instruction is pinned to its source block (no global code motion,
no speculation, no cyclic motion — all transformation binaries at
zero), and only the intra-block schedule and the block lengths are
optimized.  That restriction is always feasible (the input program is a
witness) and exact *within itself*, so:

* its solutions convert into genuine full-model incumbents (via a
  *completion solve* that re-derives the path/length variables and is
  re-validated against the full matrix), and
* its optimality proofs and dual bounds cover only the restricted
  space — the portfolio demotes an ordered ``OPTIMAL`` to ``FEASIBLE``
  and never mixes its bounds into the exact runners' bound group.

Formulation, for each nonempty block A with max length L_A:

* integer ``c_n ∈ [1, L_A]`` per included instruction n (source block A);
* integer ``len_A ∈ [1, L_A]``; ``c_n ≤ len_A``; branches ``c_br = len_A``;
* same-block dependence (m → n, latency l): ``c_n − c_m ≥ l`` (l = 0
  keeps same-cycle issue legal, matching local precedence (5));
* per conflicting pair (i, j): binaries ``y_ij`` (i strictly before j)
  and ``y_ji``, big-M linked so ``y_ij = y_ji = 0  ⟺  c_i = c_j``;
* per capacity class C with cap k and member weights w (movl counts 2
  toward issue width), one counting row per member i:
  ``Σ_{j∈C∖{i}} w_j·(1 − y_ij − y_ji) ≤ k − w_i`` — at most k weight in
  any cycle, without a time index anywhere;
* Sec. 4.2 bundling cuts get the same counting form: for a cut set S,
  per member i, ``Σ_{j∈S∖{i}} (1 − y_ij − y_ji) ≤ |S| − 2``;
* objective ``Σ_A freq_A · len_A`` — identical to (7) at one-hot blen.

Sequencing binaries are created lazily: only pairs that co-occur in
some capacity class whose row can actually bind (total weight exceeds
the cap) or in a bundling cut ever get them, so easy blocks stay nearly
LP-sized.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
from scipy import optimize

from repro.ilp.expr import LinExpr, Var, lin_sum
from repro.ilp.model import Model
from repro.machine.units import UnitKind


def _at_zero(value):
    """Evaluate a constant / Var / LinExpr with every variable at 0."""
    if isinstance(value, Var):
        return 0.0
    if isinstance(value, LinExpr):
        return value.constant
    return float(value)


class OrderedEncoding:
    """An order/disjunctive restriction of one :class:`SchedulingIlp`.

    Build with :meth:`from_scheduling_ilp` (returns ``None`` when the
    formulation's shape cannot be restricted — e.g. an instruction whose
    source block was carved out of its placement domain).  ``model`` is
    a self-contained :class:`~repro.ilp.model.Model` solvable by any
    numeric backend; :meth:`to_time_indexed` maps a solution back into
    the full model's variable space.
    """

    def __init__(self, ilp, model, cycle_vars, len_vars, included):
        self.ilp = ilp  # the time-indexed SchedulingIlp this restricts
        self.model = model
        self.cycle_vars = cycle_vars  # instr -> Var (c_n)
        self.len_vars = len_vars  # block name -> Var (len_A)
        self.included = included  # instrs scheduled in the restriction

    # -- construction -------------------------------------------------------
    @classmethod
    def from_scheduling_ilp(cls, ilp):
        lengths = ilp.lengths
        # The restriction schedules exactly the instructions the base
        # model must place with every transformation binary at zero:
        # assign_rhs evaluates to 1 there (plain instructions and
        # non-collapsed branches); speculative copies and other
        # binary-gated extras evaluate to 0 and stay out.
        included = []
        for instr, info in ilp.info.items():
            rhs = _at_zero(info.assign_rhs)
            if rhs >= 0.5:
                included.append(instr)
        by_block = {}
        for instr in included:
            source = ilp.info[instr].source
            if source not in ilp.info[instr].theta:
                return None  # source carved out: restriction infeasible
            if lengths.get(source, 0) < 1:
                return None
            by_block.setdefault(source, []).append(instr)

        model = Model(f"{ilp.model.name}_ordered")
        cycle_vars = {}
        len_vars = {}
        for block, instrs in sorted(by_block.items()):
            horizon = lengths[block]
            len_var = model.add_var(
                f"len_{block}", lb=1, ub=horizon, is_integer=True
            )
            len_vars[block] = len_var
            for instr in instrs:
                c = model.add_var(
                    f"c_{instr.uid}", lb=1, ub=horizon, is_integer=True
                )
                cycle_vars[instr] = c
                model.add_constraint(
                    c.to_expr() <= len_var.to_expr(),
                    name=f"clen_{instr.uid}",
                )
                if instr.is_branch:
                    # Branches sit exactly in the last cycle (Sec. 5.4).
                    model.add_constraint(
                        c.to_expr() >= len_var.to_expr(),
                        name=f"brlast_{instr.uid}",
                    )

        encoding = cls(ilp, model, cycle_vars, len_vars, by_block)
        encoding._precedence_constraints()
        encoding._capacity_constraints(by_block)
        encoding._objective(by_block)
        return encoding

    def _precedence_constraints(self):
        ilp = self.ilp
        seen = set()
        for edge in ilp.dep_edges():
            src, dst = edge.src, edge.dst
            if src not in self.cycle_vars or dst not in self.cycle_vars:
                continue
            if ilp.info[src].source != ilp.info[dst].source:
                # Cross-block order is fixed by the source placement and
                # already satisfied by the input program; like (4) it
                # carries no latency, so nothing to add.
                continue
            block = ilp.info[src].source
            # A relaxation term that is already ≥1 with every binary at
            # zero voids the constraint instance in the restriction
            # (cyclic motion's flipped writer edges are gated this way).
            entries = ilp.relax_terms.get(edge, ())
            relax0 = sum(
                _at_zero(term)
                for term, blocks in entries
                if blocks is None or block in blocks
            )
            if relax0 >= 0.5:
                continue
            lat = max(int(edge.latency), 0)
            key = (src, dst, lat)
            if key in seen:
                continue
            seen.add(key)
            self.model.add_constraint(
                self.cycle_vars[dst] - self.cycle_vars[src] >= lat,
                name=f"oprec_{src.uid}_{dst.uid}",
            )

    def _capacity_constraints(self, by_block):
        ports = self.ilp.machine.ports
        for block, instrs in sorted(by_block.items()):
            horizon = self.ilp.lengths[block]
            same = _SequencingPairs(self.model, self.cycle_vars, horizon)
            # Issue width: movl burns an L+X slot pair, weight 2.
            weighted = [
                (i, 2.0 if i.unit is UnitKind.L else 1.0) for i in instrs
            ]
            self._counting_rows(
                same, weighted, ports.issue_width, f"width_{block}"
            )
            for kinds, cap, tag in (
                ((UnitKind.M,), ports.m_ports, "m"),
                ((UnitKind.I, UnitKind.L), ports.i_ports, "i"),
                ((UnitKind.F,), ports.f_ports, "f"),
                ((UnitKind.B,), ports.b_ports, "b"),
            ):
                members = [(i, 1.0) for i in instrs if i.unit in kinds]
                self._counting_rows(same, members, cap, f"unit{tag}_{block}")
            # Sec. 4.2 bundling cuts: no cycle may host all of S.
            for idx, cut in enumerate(self.ilp.bundling_cuts):
                cut_here = [
                    i
                    for (i, cut_block) in cut
                    if cut_block == block and i in self.cycle_vars
                ]
                if len(cut_here) < 2 or len(cut_here) != len(
                    [1 for (_, cb) in cut if cb == block]
                ):
                    continue
                for i in cut_here:
                    others = [
                        same.expr(i, j) for j in cut_here if j is not i
                    ]
                    self.model.add_constraint(
                        lin_sum(others) <= len(cut_here) - 2,
                        name=f"obundle{idx}_{block}_{i.uid}",
                    )

    def _counting_rows(self, same, weighted, cap, tag):
        """``Σ_j w_j·same_ij ≤ cap − w_i`` per member — cycle-free (6)."""
        total = sum(w for _, w in weighted)
        if total <= cap:
            return  # the row can never bind; skip the binaries too
        for i, w_i in weighted:
            others = [
                w_j * same.expr(i, j) for j, w_j in weighted if j is not i
            ]
            self.model.add_constraint(
                lin_sum(others) <= cap - w_i,
                name=f"o{tag}_{i.uid}",
            )

    def _objective(self, by_block):
        freq = {
            b.name: b.freq
            for b in self.ilp.region.fn.blocks
            if b.name in self.len_vars
        }
        terms = [
            freq.get(block, 1.0) * var for block, var in self.len_vars.items()
        ]
        # Blocks with no included instructions contribute their (7)
        # minimum — zero length — and extensions' objective extras are
        # all binary-gated, hence 0 in the restriction; the two
        # objectives therefore agree on every restricted point.
        extras0 = sum(
            _at_zero(extra) for extra in self.ilp.objective_extras
        )
        self.model.set_objective(lin_sum(terms) + extras0)

    # -- conversion back ------------------------------------------------------
    def to_time_indexed(self, model, ordered_solution, time_limit=None):
        """Map an ordered solution into the full model's variable space.

        Runs a *completion solve*: the full model's arrays with every
        ``x`` bound pinned to the ordered placement (included n at
        ``x[n, source, c_n] = 1``, everything else 0), leaving the
        path/length/extension variables for :func:`scipy.optimize.milp`
        to fill.  The result is re-validated by construction (it is a
        solution of the full matrix) — returns ``(objective, values)``
        or ``None`` when the completion is infeasible (an extension
        constraint the restriction abstracted away binds after all).
        """
        ilp = self.ilp
        arrays = model.to_arrays()
        lb = arrays["lb"].copy()
        ub = arrays["ub"].copy()
        placed = {}
        for instr, c_var in self.cycle_vars.items():
            placed[instr] = int(round(ordered_solution.values[c_var]))
        for (instr, block, t), var in ilp.x.items():
            want = 1.0 if placed.get(instr) == t and (
                block == ilp.info[instr].source and instr in placed
            ) else 0.0
            lb[var.index] = want
            ub[var.index] = want
        start = time.perf_counter()
        with warnings.catch_warnings():
            warnings.filterwarnings(
                "ignore", message="Unrecognized options",
                category=RuntimeWarning,
            )
            options = {"mip_rel_gap": 0.0}
            if time_limit is not None:
                options["time_limit"] = max(float(time_limit), 1.0)
            result = optimize.milp(
                arrays["c"],
                constraints=optimize.LinearConstraint(
                    arrays["A"], arrays["b_lo"], arrays["b_hi"]
                ),
                bounds=optimize.Bounds(lb, ub),
                integrality=arrays["integrality"].astype(int),
                options=options,
            )
        if result.status != 0 or result.x is None:
            return None
        values = {}
        for var in model.variables:
            raw = float(result.x[var.index])
            values[var] = float(round(raw)) if var.is_integer else raw
        objective = float(np.dot(arrays["c"], result.x))
        ordered_solution.stats.lp_solves += 1
        ordered_solution.stats.time_seconds += time.perf_counter() - start
        return objective, values


class _SequencingPairs:
    """Lazily-created disjunctive binaries for one block.

    ``expr(i, j)`` returns the *same-cycle indicator* ``1 − y_ij − y_ji``
    as a LinExpr, creating the pair's binaries and big-M linking rows on
    first use.  y_ij = 1 means "i strictly before j"; the linking makes
    the two binaries exact:

    * ``c_j − c_i ≥ 1 − M(1 − y_ij)``  (y_ij ⇒ strictly before)
    * ``c_j − c_i ≤ M·y_ij``            (strictly before ⇒ y_ij)

    and symmetrically for ``y_ji``, with M = block horizon.
    """

    def __init__(self, model, cycle_vars, horizon):
        self.model = model
        self.cycle_vars = cycle_vars
        self.big_m = float(horizon)
        self._pairs = {}

    def expr(self, i, j):
        key = (i, j) if i.uid <= j.uid else (j, i)
        pair = self._pairs.get(key)
        if pair is None:
            pair = self._create(*key)
            self._pairs[key] = pair
        return 1.0 - pair[0] - pair[1]

    def _create(self, i, j):
        c_i, c_j = self.cycle_vars[i], self.cycle_vars[j]
        y_ij = self.model.add_binary(f"y_{i.uid}_{j.uid}")
        y_ji = self.model.add_binary(f"y_{j.uid}_{i.uid}")
        m = self.big_m
        self.model.add_constraint(
            c_j - c_i >= 1.0 - m * (1.0 - y_ij),
            name=f"seq1_{i.uid}_{j.uid}",
        )
        self.model.add_constraint(
            c_j - c_i <= m * y_ij, name=f"seq2_{i.uid}_{j.uid}"
        )
        self.model.add_constraint(
            c_i - c_j >= 1.0 - m * (1.0 - y_ji),
            name=f"seq3_{i.uid}_{j.uid}",
        )
        self.model.add_constraint(
            c_i - c_j <= m * y_ji, name=f"seq4_{i.uid}_{j.uid}"
        )
        return (y_ij, y_ji)
