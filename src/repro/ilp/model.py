"""The ILP model container: variables, constraints, objective, matrix form."""

from __future__ import annotations

import enum
import io

import numpy as np
from scipy import sparse

from repro.errors import IlpError
from repro.ilp.expr import LinExpr, Var


class Sense(enum.Enum):
    """Relational sense of a constraint."""

    LE = "<="
    GE = ">="
    EQ = "="


class Constraint:
    """A linear constraint ``expr (<=|>=|=) rhs`` in normalized form.

    Normalization moves every variable term to the left-hand side and every
    constant to the right, so ``expr`` has constant 0 and ``rhs`` is a float.
    """

    __slots__ = ("expr", "sense", "rhs", "name")

    def __init__(self, expr, sense, rhs, name=""):
        self.expr = expr
        self.sense = sense
        self.rhs = float(rhs)
        self.name = name

    @classmethod
    def _from_sides(cls, lhs, rhs, sense):
        diff = lhs - rhs
        rhs_const = -diff.constant
        return cls(LinExpr(diff.terms), sense, rhs_const)

    def satisfied_by(self, assignment, tol=1e-6):
        """Check the constraint under ``assignment`` with tolerance ``tol``."""
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs <= self.rhs + tol
        if self.sense is Sense.GE:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol

    def __repr__(self):
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.expr!r} {self.sense.value} {self.rhs:g}"


class Model:
    """A mixed-integer linear program under construction.

    Only minimization is supported (the scheduler always minimizes); callers
    wanting maximization negate their objective. Variables are created
    through :meth:`add_var` / :meth:`add_binary` and owned by the model.
    """

    def __init__(self, name="model"):
        self.name = name
        self.variables = []
        self.constraints = []
        self.objective = LinExpr()
        self._names = set()
        # Incremental matrix-form cache: appending constraints (the cut
        # loop's access pattern) only converts the *new* rows and stacks
        # them under the cached CSR instead of re-walking every term dict.
        self._matrix_cache = None

    # -- construction ------------------------------------------------------
    def add_var(self, name, lb=0.0, ub=None, is_integer=False):
        """Create and register a variable; names must be unique."""
        if name in self._names:
            raise IlpError(f"duplicate variable name {name!r}")
        if lb is not None and ub is not None and lb > ub:
            raise IlpError(f"variable {name!r} has empty domain [{lb}, {ub}]")
        var = Var(len(self.variables), name, lb, ub, is_integer)
        self.variables.append(var)
        self._names.add(name)
        self._matrix_cache = None  # column count changed
        return var

    def add_binary(self, name):
        return self.add_var(name, lb=0.0, ub=1.0, is_integer=True)

    def add_constraint(self, constraint, name=""):
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise IlpError(
                "add_constraint expects an expression comparison, got "
                f"{constraint!r} — a plain bool means both sides were constants"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr):
        """Set the (minimized) objective."""
        if isinstance(expr, Var):
            expr = expr.to_expr()
        self.objective = expr

    # -- introspection -----------------------------------------------------
    @property
    def num_variables(self):
        return len(self.variables)

    @property
    def num_constraints(self):
        return len(self.constraints)

    @property
    def num_integer_variables(self):
        return sum(1 for v in self.variables if v.is_integer)

    def check_solution(self, assignment, tol=1e-6):
        """Return the list of constraints violated by ``assignment``."""
        return [c for c in self.constraints if not c.satisfied_by(assignment, tol)]

    # -- incremental editing ----------------------------------------------
    def constraint_mark(self):
        """Checkpoint the current constraint count for later truncation."""
        return len(self.constraints)

    def truncate_constraints(self, mark):
        """Drop every constraint added after :meth:`constraint_mark`.

        Together with :meth:`constraint_mark` this lets a caller reuse one
        built model across solve variants (phase-2 length pinning, trial
        cuts) without regenerating the base formulation.
        """
        if mark < 0 or mark > len(self.constraints):
            raise IlpError(f"invalid constraint mark {mark}")
        del self.constraints[mark:]
        cache = self._matrix_cache
        if cache is not None and cache["rows"] > mark:
            cache["matrix"] = cache["matrix"][:mark]
            cache["b_lo"] = cache["b_lo"][:mark]
            cache["b_hi"] = cache["b_hi"][:mark]
            cache["rows"] = mark

    # -- matrix form -------------------------------------------------------
    def to_arrays(self):
        """Convert to matrix form for the numeric backends.

        Returns a dict with objective vector ``c`` (dense), constraint matrix
        ``A`` (CSR), row bound vectors ``b_lo``/``b_hi`` (so LE rows have
        ``b_lo = -inf``, GE rows ``b_hi = +inf``, EQ rows both equal),
        variable bounds ``lb``/``ub`` and the boolean ``integrality`` mask.
        """
        n = len(self.variables)
        c = np.zeros(n)
        for var, coef in self.objective.terms.items():
            c[var.index] = coef

        cache = self._matrix_cache
        if cache is None:
            matrix, b_lo, b_hi = self._rows_to_csr(self.constraints)
            cache = {
                "matrix": matrix,
                "b_lo": b_lo,
                "b_hi": b_hi,
                "rows": len(self.constraints),
            }
            self._matrix_cache = cache
        elif cache["rows"] < len(self.constraints):
            new = self.constraints[cache["rows"] :]
            delta, d_lo, d_hi = self._rows_to_csr(new)
            cache["matrix"] = sparse.vstack(
                [cache["matrix"], delta], format="csr"
            )
            cache["b_lo"] = np.concatenate([cache["b_lo"], d_lo])
            cache["b_hi"] = np.concatenate([cache["b_hi"], d_hi])
            cache["rows"] = len(self.constraints)

        lb = np.array([-np.inf if v.lb is None else v.lb for v in self.variables])
        ub = np.array([np.inf if v.ub is None else v.ub for v in self.variables])
        integrality = np.array([v.is_integer for v in self.variables])
        # Vectors are copied so callers may edit them (the presolve does)
        # without corrupting the cache; the CSR is shared and treated as
        # immutable by every backend.
        return {
            "c": c,
            "A": cache["matrix"],
            "b_lo": cache["b_lo"].copy(),
            "b_hi": cache["b_hi"].copy(),
            "lb": lb,
            "ub": ub,
            "integrality": integrality,
        }

    def _rows_to_csr(self, constraints):
        """Convert ``constraints`` to a CSR block plus row-bound vectors."""
        rows, cols, vals = [], [], []
        b_lo = np.empty(len(constraints))
        b_hi = np.empty(len(constraints))
        for i, con in enumerate(constraints):
            for var, coef in con.expr.terms.items():
                rows.append(i)
                cols.append(var.index)
                vals.append(coef)
            if con.sense is Sense.LE:
                b_lo[i], b_hi[i] = -np.inf, con.rhs
            elif con.sense is Sense.GE:
                b_lo[i], b_hi[i] = con.rhs, np.inf
            else:
                b_lo[i] = b_hi[i] = con.rhs
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(len(constraints), len(self.variables))
        )
        return matrix, b_lo, b_hi

    # -- export ------------------------------------------------------------
    def write_lp(self, path=None):
        """Render in CPLEX LP format; return the text (and write if ``path``).

        Useful for debugging the scheduler's formulations with external
        solvers and for regression-testing model structure.
        """
        out = io.StringIO()
        out.write(f"\\ model {self.name}\n")
        out.write("Minimize\n obj:")
        if not self.objective.terms:
            out.write(" 0")
        for var, coef in sorted(
            self.objective.terms.items(), key=lambda kv: kv[0].index
        ):
            out.write(f" {coef:+g} {var.name}")
        out.write("\nSubject To\n")
        for i, con in enumerate(self.constraints):
            label = con.name or f"c{i}"
            out.write(f" {label}:")
            for var, coef in sorted(con.expr.terms.items(), key=lambda kv: kv[0].index):
                out.write(f" {coef:+g} {var.name}")
            out.write(f" {con.sense.value} {con.rhs:g}\n")
        out.write("Bounds\n")
        for var in self.variables:
            lo = "-inf" if var.lb is None else f"{var.lb:g}"
            hi = "+inf" if var.ub is None else f"{var.ub:g}"
            out.write(f" {lo} <= {var.name} <= {hi}\n")
        integers = [v.name for v in self.variables if v.is_integer]
        if integers:
            out.write("Generals\n")
            for name in integers:
                out.write(f" {name}\n")
        out.write("End\n")
        text = out.getvalue()
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    def __repr__(self):
        return (
            f"Model({self.name!r}, vars={self.num_variables}, "
            f"constraints={self.num_constraints}, "
            f"integers={self.num_integer_variables})"
        )
