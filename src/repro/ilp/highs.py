"""MILP backend over ``scipy.optimize.milp`` (HiGHS branch-and-cut).

This is the production backend: it hands the matrix form of a
:class:`~repro.ilp.model.Model` to HiGHS and translates the result back
into the shared :class:`~repro.ilp.status.Solution` type, including the
node count that feeds the Table 2 reproduction.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize

from repro.ilp.status import Solution, SolveStatus, SolverStats


class HighsSolver:
    """Solve models with HiGHS via scipy.

    Parameters
    ----------
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited).
    node_limit:
        Branch-and-bound node cap.
    mip_rel_gap:
        Relative optimality tolerance. The paper grants CPLEX *no*
        tolerance ("only a 100% optimal result is accepted"), so the
        default is 0.
    """

    def __init__(self, time_limit=None, node_limit=None, mip_rel_gap=0.0):
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.mip_rel_gap = mip_rel_gap

    def solve(self, model):
        start = time.perf_counter()
        arrays = model.to_arrays()
        constraints = optimize.LinearConstraint(
            arrays["A"], arrays["b_lo"], arrays["b_hi"]
        )
        bounds = optimize.Bounds(arrays["lb"], arrays["ub"])
        options = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        if self.node_limit is not None:
            options["node_limit"] = int(self.node_limit)
        result = optimize.milp(
            arrays["c"],
            constraints=constraints,
            bounds=bounds,
            integrality=arrays["integrality"].astype(int),
            options=options,
        )
        elapsed = time.perf_counter() - start

        stats = SolverStats(
            nodes=int(getattr(result, "mip_node_count", 0) or 0),
            time_seconds=elapsed,
            best_bound=getattr(result, "mip_dual_bound", None),
            gap=getattr(result, "mip_gap", None),
            backend="highs",
        )
        status = self._translate_status(result)
        if not status.has_solution:
            return Solution(status, stats=stats)
        values = {}
        for var in model.variables:
            raw = float(result.x[var.index])
            values[var] = float(round(raw)) if var.is_integer else raw
        return Solution(status, float(result.fun), values, stats)

    @staticmethod
    def _translate_status(result):
        # scipy milp status codes: 0 optimal, 1 iteration/time limit,
        # 2 infeasible, 3 unbounded, 4 numerical/other.
        if result.status == 0:
            return SolveStatus.OPTIMAL
        if result.status == 1:
            return (
                SolveStatus.FEASIBLE if result.x is not None else SolveStatus.NO_SOLUTION
            )
        if result.status == 2:
            return SolveStatus.INFEASIBLE
        if result.status == 3:
            return SolveStatus.UNBOUNDED
        return (
            SolveStatus.FEASIBLE if result.x is not None else SolveStatus.NO_SOLUTION
        )
