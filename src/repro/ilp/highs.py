"""MILP backend over ``scipy.optimize.milp`` (HiGHS branch-and-cut).

This is the production backend: it hands the matrix form of a
:class:`~repro.ilp.model.Model` to HiGHS and translates the result back
into the shared :class:`~repro.ilp.status.Solution` type, including the
node count that feeds the Table 2 reproduction.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
from scipy import optimize

from repro.ilp.status import (
    Solution,
    SolveStatus,
    SolverStats,
    record_solve_metrics,
)
from repro.obs import core as obs
from repro.obs.insight import GapTimeline, fault_timeline as _fault_timeline
from repro.tools import faults


class HighsSolver:
    """Solve models with HiGHS via scipy.

    Parameters
    ----------
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited).
    node_limit:
        Branch-and-bound node cap.
    mip_rel_gap:
        Relative optimality tolerance. The paper grants CPLEX *no*
        tolerance ("only a 100% optimal result is accepted"), so the
        default is 0.
    heuristic_effort:
        HiGHS ``mip_heuristic_effort`` (default 0.5, HiGHS' own default
        is 0.05). The scheduling models have many equal-length feasible
        schedules, so spending more time on primal heuristics finds a
        strong incumbent early and lets branch-and-cut prune most of the
        tree; on the Table 2 routines this halves solve time while the
        gap tolerance (and hence the proven optimum) is unchanged.
        ``None`` keeps the HiGHS default.
    control:
        Optional :class:`repro.ilp.portfolio.RunnerControl`. scipy's
        ``milp`` is one blocking C call with no solve callback, so
        cooperation is coarse: the cancel flag is honoured *before* the
        call (a cancelled lane returns NO_SOLUTION without searching) and
        the result is published to the portfolio bus afterwards; a lane
        cancelled mid-call simply runs out its (deadline-clipped)
        ``time_limit``.
    """

    def __init__(
        self,
        time_limit=None,
        node_limit=None,
        mip_rel_gap=0.0,
        heuristic_effort=0.5,
        control=None,
    ):
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.mip_rel_gap = mip_rel_gap
        self.heuristic_effort = heuristic_effort
        self.control = control

    def solve(self, model, incumbent=None, cutoff=None, fault_site=None):
        """Solve ``model``; see :func:`repro.ilp.solve_model` for the API.

        scipy's ``milp`` wrapper offers no way to inject a starting
        solution or an objective cutoff into HiGHS, so both parameters are
        honoured post-hoc: a failed/timed-out solve falls back to the
        (validated) ``incumbent`` as a FEASIBLE answer instead of
        NO_SOLUTION, and any result not strictly better than ``cutoff`` is
        reported as NO_SOLUTION — matching the branch-and-bound backend's
        semantics so callers can treat backends interchangeably.

        ``fault_site`` names this solve for deterministic fault injection
        (:mod:`repro.tools.faults`); an injected ``timeout`` reproduces
        exactly the limits-hit path (incumbent fallback included) and an
        injected ``infeasible`` the INFEASIBLE verdict, so the degradation
        ladder above sees the same statuses a real failure would produce.
        """
        fault = faults.fire(fault_site)
        if fault == "infeasible":
            stats = SolverStats(backend="highs")
            stats.gap_timeline = _fault_timeline("INFEASIBLE")
            return Solution(SolveStatus.INFEASIBLE, stats=stats)
        if fault == "timeout":
            stats = SolverStats(backend="highs")
            if incumbent is not None:
                fallback = self._incumbent_solution(
                    model, model.to_arrays(), incumbent, stats
                )
                if fallback is not None:
                    stats.gap_timeline = _fault_timeline(
                        "FEASIBLE", incumbent=fallback.objective
                    )
                    return fallback
            stats.gap_timeline = _fault_timeline("NO_SOLUTION")
            return Solution(SolveStatus.NO_SOLUTION, stats=stats)
        if not obs.ENABLED:
            solution = self._solve_impl(model, incumbent, cutoff)
        else:
            with obs.span(
                "ilp.solve",
                backend="highs",
                variables=len(model.variables),
                constraints=model.num_constraints,
            ) as span:
                solution = self._solve_impl(model, incumbent, cutoff)
                span.set_attr("status", solution.status.name)
                span.set_attr("nodes", solution.stats.nodes)
                if solution.stats.gap is not None:
                    span.set_attr("gap", solution.stats.gap)
            # scipy's milp offers no basis injection, so "warm start" for
            # this backend means incumbent seeding (the cut loop's
            # prev-optimum hand-off); record it as such.
            record_solve_metrics(solution.stats, seeded=incumbent is not None)
        if fault == "incumbent":
            return faults.demote_to_feasible(solution)
        if fault == "corrupt" and solution.status.has_solution:
            faults.corrupt_solution(solution)
        return solution

    def _solve_impl(self, model, incumbent, cutoff):
        start = time.perf_counter()
        if self.control is not None and self.control.cancelled():
            stats = SolverStats(backend="highs")
            stats.gap_timeline = _fault_timeline("NO_SOLUTION")
            return Solution(SolveStatus.NO_SOLUTION, stats=stats)
        # scipy's milp exposes no solve callback, so the timeline is the
        # coarsest honest record HiGHS allows: an opening sample before
        # the search and a closing one with the final incumbent/dual
        # bound. Still monotone, still closed on every exit path.
        timeline = GapTimeline()
        timeline.sample(0.0, label="start")
        arrays = model.to_arrays()
        constraints = optimize.LinearConstraint(
            arrays["A"], arrays["b_lo"], arrays["b_hi"]
        )
        bounds = optimize.Bounds(arrays["lb"], arrays["ub"])
        options = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        if self.node_limit is not None:
            options["node_limit"] = int(self.node_limit)
        if self.heuristic_effort is not None:
            # Forwarded verbatim to HiGHS (scipy flags it as unrecognized
            # but passes it through; the warning is just noise).
            options["mip_heuristic_effort"] = float(self.heuristic_effort)
        with warnings.catch_warnings():
            warnings.filterwarnings(
                "ignore", message="Unrecognized options", category=RuntimeWarning
            )
            result = optimize.milp(
                arrays["c"],
                constraints=constraints,
                bounds=bounds,
                integrality=arrays["integrality"].astype(int),
                options=options,
            )
        elapsed = time.perf_counter() - start

        stats = SolverStats(
            nodes=int(getattr(result, "mip_node_count", 0) or 0),
            time_seconds=elapsed,
            best_bound=getattr(result, "mip_dual_bound", None),
            gap=getattr(result, "mip_gap", None),
            backend="highs",
        )
        stats.gap_timeline = timeline
        status = self._translate_status(result)
        if not status.has_solution:
            if status is SolveStatus.NO_SOLUTION and incumbent is not None:
                fallback = self._incumbent_solution(model, arrays, incumbent, stats)
                if fallback is not None:
                    timeline.close(
                        elapsed,
                        incumbent=fallback.objective,
                        bound=stats.best_bound,
                        nodes=stats.nodes,
                        status=SolveStatus.FEASIBLE.name,
                    )
                    return fallback
            timeline.close(
                elapsed,
                bound=stats.best_bound,
                nodes=stats.nodes,
                status=status.name,
            )
            return Solution(status, stats=stats)
        objective = float(result.fun)
        if cutoff is not None and objective >= cutoff - 1e-9:
            # Nothing strictly better than the cutoff exists (or was found
            # in time); mirror BranchBoundSolver's contract.
            timeline.close(
                elapsed,
                incumbent=objective,
                bound=stats.best_bound,
                nodes=stats.nodes,
                status=SolveStatus.NO_SOLUTION.name,
            )
            return Solution(SolveStatus.NO_SOLUTION, stats=stats)
        values = {}
        for var in model.variables:
            raw = float(result.x[var.index])
            values[var] = float(round(raw)) if var.is_integer else raw
        timeline.close(
            elapsed,
            incumbent=objective,
            bound=stats.best_bound,
            nodes=stats.nodes,
            status=status.name,
        )
        return Solution(status, objective, values, stats)

    @staticmethod
    def _incumbent_solution(model, arrays, incumbent, stats):
        """Validate a caller-provided point and wrap it as FEASIBLE."""
        point = np.zeros(len(arrays["c"]))
        if isinstance(incumbent, dict):
            for var, val in incumbent.items():
                point[var.index] = val
        else:
            point[:] = np.asarray(incumbent, dtype=float)
        integrality = arrays["integrality"].astype(bool)
        point[integrality] = np.round(point[integrality])
        if np.any(point < arrays["lb"] - 1e-7) or np.any(point > arrays["ub"] + 1e-7):
            return None
        activity = arrays["A"].dot(point)
        if np.any(activity < arrays["b_lo"] - 1e-6) or np.any(
            activity > arrays["b_hi"] + 1e-6
        ):
            return None
        values = {}
        for var in model.variables:
            raw = float(point[var.index])
            values[var] = float(round(raw)) if var.is_integer else raw
        objective = float(np.dot(arrays["c"], point))
        return Solution(SolveStatus.FEASIBLE, objective, values, stats)

    @staticmethod
    def _translate_status(result):
        # scipy milp status codes: 0 optimal, 1 iteration/time limit,
        # 2 infeasible, 3 unbounded, 4 numerical/other.
        if result.status == 0:
            return SolveStatus.OPTIMAL
        if result.status == 1:
            return (
                SolveStatus.FEASIBLE if result.x is not None else SolveStatus.NO_SOLUTION
            )
        if result.status == 2:
            return SolveStatus.INFEASIBLE
        if result.status == 3:
            return SolveStatus.UNBOUNDED
        return (
            SolveStatus.FEASIBLE if result.x is not None else SolveStatus.NO_SOLUTION
        )
