"""A dense two-phase primal simplex for linear programs.

This exists so the ILP substrate is self-contained: it solves the LP
relaxations inside :mod:`repro.ilp.branch_bound` when the ``"simplex"``
relaxation backend is selected, and it independently cross-checks the
scipy/HiGHS results in the test suite. It is a textbook tableau
implementation (Dantzig pricing with a Bland's-rule fallback against
cycling), adequate for the model sizes the schedulers build in tests.

The entry point accepts the matrix form produced by
:meth:`repro.ilp.model.Model.to_arrays` and internally converts to standard
form ``min c'x  s.t.  Ax = b, x >= 0``:

* finite lower bounds are shifted out,
* free variables are split into positive/negative parts,
* finite upper bounds become extra ``<=`` rows,
* ``<=``/``>=`` rows gain slack/surplus variables,
* phase 1 minimizes artificial variables to find a basic feasible point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import IlpError


@dataclass
class LpResult:
    """Outcome of an LP solve: status, objective and primal point.

    ``basis`` is the list of basic column indices of the internal standard
    form at the optimum. It can be fed back to
    :meth:`SimplexSolver.solve_arrays` as ``warm_basis`` for a later solve
    of a program with the *same shape* (same variables, same rows, same
    bound-finiteness pattern) but different bound values — exactly the
    situation branch-and-bound creates.
    """

    status: str  # "optimal" | "infeasible" | "unbounded"
    objective: float | None = None
    x: np.ndarray | None = None
    iterations: int = 0
    basis: list | None = None


@dataclass
class _StandardForm:
    """Internal standard-form program plus the recipe to map x back."""

    c: np.ndarray
    A: np.ndarray
    b: np.ndarray
    obj_offset: float
    # recover[i] = (kind, data) describing original variable i:
    #   ("shift", (col, lb))       -> x_i = y[col] + lb
    #   ("split", (pos, neg))      -> x_i = y[pos] - y[neg]
    recover: list = field(default_factory=list)


_TOL = 1e-9


def _to_standard_form(arrays):
    """Convert the Model matrix form to ``min c'y, Ay = b, y >= 0``."""
    raw = arrays["A"]
    if hasattr(raw, "todense"):
        a_mat = np.asarray(raw.todense(), dtype=float)
    else:
        a_mat = np.asarray(raw, dtype=float)
    m, n = a_mat.shape
    c = np.asarray(arrays["c"], dtype=float)
    lb, ub = arrays["lb"], arrays["ub"]
    b_lo, b_hi = arrays["b_lo"], arrays["b_hi"]

    columns = []  # one column vector (over original rows) per standard var
    new_c = []
    recover = []
    obj_offset = 0.0
    extra_upper_rows = []  # (std_col, bound) rows y_col <= bound

    for j in range(n):
        col = a_mat[:, j]
        if np.isfinite(lb[j]):
            # x_j = y + lb_j
            idx = len(columns)
            columns.append(col)
            new_c.append(c[j])
            obj_offset += c[j] * lb[j]
            recover.append(("shift", (idx, lb[j])))
            if np.isfinite(ub[j]):
                extra_upper_rows.append((idx, ub[j] - lb[j]))
        elif np.isfinite(ub[j]):
            # x_j = ub_j - y  (y >= 0)
            idx = len(columns)
            columns.append(-col)
            new_c.append(-c[j])
            obj_offset += c[j] * ub[j]
            recover.append(("shift_neg", (idx, ub[j])))
        else:
            pos = len(columns)
            columns.append(col)
            new_c.append(c[j])
            neg = len(columns)
            columns.append(-col)
            new_c.append(-c[j])
            recover.append(("split", (pos, neg)))

    std_a_core = np.column_stack(columns) if columns else np.zeros((m, 0))
    # Adjust row bounds for the shifts: row value = core + sum(a_ij * shift_j)
    shift_contrib = np.zeros(m)
    for j, (kind, data) in enumerate(recover):
        if kind == "shift":
            shift_contrib += a_mat[:, j] * data[1]
        elif kind == "shift_neg":
            shift_contrib += a_mat[:, j] * data[1]

    rows = []
    rhs = []
    kinds = []  # "le" or "eq" after normalization
    for i in range(m):
        lo, hi = b_lo[i] - shift_contrib[i], b_hi[i] - shift_contrib[i]
        if np.isfinite(lo) and np.isfinite(hi) and abs(lo - hi) <= _TOL:
            rows.append(std_a_core[i])
            rhs.append(hi)
            kinds.append("eq")
            continue
        if np.isfinite(hi):
            rows.append(std_a_core[i])
            rhs.append(hi)
            kinds.append("le")
        if np.isfinite(lo):
            rows.append(-std_a_core[i])
            rhs.append(-lo)
            kinds.append("le")
    n_core = std_a_core.shape[1]
    for col_idx, bound in extra_upper_rows:
        row = np.zeros(n_core)
        row[col_idx] = 1.0
        rows.append(row)
        rhs.append(bound)
        kinds.append("le")

    a_rows = np.array(rows) if rows else np.zeros((0, n_core))
    b_vec = np.array(rhs)

    # Add slacks for "le" rows.
    n_slack = sum(1 for k in kinds if k == "le")
    full = np.zeros((a_rows.shape[0], n_core + n_slack))
    full[:, :n_core] = a_rows
    slack_at = 0
    for i, kind in enumerate(kinds):
        if kind == "le":
            full[i, n_core + slack_at] = 1.0
            slack_at += 1
    c_full = np.concatenate([np.array(new_c), np.zeros(n_slack)])

    # Make rhs nonnegative.
    for i in range(full.shape[0]):
        if b_vec[i] < 0:
            full[i] *= -1.0
            b_vec[i] *= -1.0

    return _StandardForm(c_full, full, b_vec, obj_offset, recover)


class SimplexSolver:
    """Two-phase dense primal simplex.

    Parameters
    ----------
    max_iterations:
        Hard cap on pivots across both phases; exceeded caps raise
        :class:`~repro.errors.IlpError` (a symptom of cycling or a model
        far too large for the dense tableau).
    """

    def __init__(self, max_iterations=20000):
        self.max_iterations = max_iterations

    # -- public API ---------------------------------------------------------
    def solve(self, model):
        """Solve the LP relaxation of a :class:`~repro.ilp.model.Model`."""
        return self.solve_arrays(model.to_arrays())

    def solve_arrays(self, arrays, warm_basis=None):
        """Solve from matrix form; integrality flags are ignored.

        ``warm_basis`` is the ``basis`` of an earlier :class:`LpResult` for
        a program of identical shape (same variables and rows, same bound
        finiteness) whose bound *values* may differ — the branch-and-bound
        parent/child situation. The basis is re-factorized against the new
        data; if it is dual feasible the solve continues with dual simplex
        pivots from there (usually a handful), otherwise it falls back to
        the cold two-phase method. Warm solves are always safe: any
        mismatch or numerical failure silently degrades to a cold solve.
        """
        std = _to_standard_form(arrays)
        outcome = None
        if warm_basis is not None:
            outcome = self._warm_solve(std, warm_basis)
        if outcome is None:
            outcome = self._two_phase(std)
        status, y, iters, basis = outcome
        if status != "optimal":
            return LpResult(status=status, iterations=iters)
        x = np.empty(len(std.recover))
        for j, (kind, data) in enumerate(std.recover):
            if kind == "shift":
                col, low = data
                x[j] = y[col] + low
            elif kind == "shift_neg":
                col, high = data
                x[j] = high - y[col]
            else:
                pos, neg = data
                x[j] = y[pos] - y[neg]
        objective = float(np.dot(arrays["c"], x))
        return LpResult("optimal", objective, x, iters, basis=basis)

    # -- warm start ----------------------------------------------------------
    def _warm_solve(self, std, warm_basis):
        """Reoptimize from a previous basis; ``None`` means "fall back cold".

        The basis is refactorized against the (possibly changed) data. From
        there: dual simplex while the basis is dual feasible but primal
        infeasible (the textbook warm start after a bound change), else a
        primal restart from the basis if it is primal feasible. Any
        structural mismatch, singular basis or iteration blow-up aborts the
        warm path so correctness never depends on it.
        """
        a_mat, b_vec, c_vec = std.A, std.b, std.c
        m, n = a_mat.shape
        basis = list(warm_basis)
        if m == 0 or len(basis) != m or any(j < 0 or j >= n for j in basis):
            return None
        try:
            solved = np.linalg.solve(
                a_mat[:, basis], np.column_stack([a_mat, b_vec])
            )
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(solved)):
            return None
        tableau = np.zeros((m + 1, n + 1))
        tableau[:m, :n] = solved[:, :n]
        tableau[:m, -1] = solved[:, -1]
        c_basis = c_vec[basis]
        tableau[m, :n] = c_vec - c_basis @ tableau[:m, :n]
        tableau[m, -1] = -float(c_basis @ tableau[:m, -1])

        dual_feasible = float(np.min(tableau[m, :n])) >= -1e-7
        primal_feasible = float(np.min(tableau[:m, -1])) >= -1e-7
        if dual_feasible:
            status, dual_iters = self._dual_iterate(tableau, basis)
            if status == "infeasible":
                return "infeasible", None, dual_iters, None
            if status != "ok":
                return None  # iteration cap: retry cold
        elif not primal_feasible:
            return None  # neither side usable: retry cold
        else:
            dual_iters = 0
        phase2 = self._iterate(tableau, basis, restrict=n)
        if phase2 < 0:
            return "unbounded", None, dual_iters - phase2, None
        y = np.zeros(n)
        for i, var in enumerate(basis):
            y[var] = tableau[i, -1]
        return "optimal", y, dual_iters + phase2, list(basis)

    def _dual_iterate(self, tableau, basis):
        """Dual simplex pivots until primal feasible; returns (status, iters).

        Requires a dual-feasible objective row. Status is ``"ok"``,
        ``"infeasible"`` (a row proves emptiness) or ``"limit"``.
        """
        m = len(basis)
        n = tableau.shape[1] - 1
        iters = 0
        while True:
            if iters > self.max_iterations:
                return "limit", iters
            rhs = tableau[:m, -1]
            row = int(np.argmin(rhs))
            if rhs[row] >= -1e-9:
                return "ok", iters
            entries = tableau[row, :n]
            negative = entries < -_TOL
            if not negative.any():
                return "infeasible", iters
            ratios = np.full(n, np.inf)
            ratios[negative] = tableau[m, :n][negative] / -entries[negative]
            col = int(np.argmin(ratios))
            self._pivot(tableau, basis, row, col)
            iters += 1

    # -- core ----------------------------------------------------------------
    def _two_phase(self, std):
        a_mat, b_vec, c_vec = std.A, std.b, std.c
        m, n = a_mat.shape
        if m == 0:
            # Unconstrained: optimum at y = 0 unless some cost is negative.
            if np.any(c_vec < -_TOL):
                return "unbounded", None, 0, None
            return "optimal", np.zeros(n), 0, []

        # Phase 1 with artificials on every row (simple and robust; rows
        # whose slack can serve as basis start there instead).
        tableau = np.zeros((m + 1, n + m + 1))
        tableau[:m, :n] = a_mat
        tableau[:m, n : n + m] = np.eye(m)
        tableau[:m, -1] = b_vec
        basis = list(range(n, n + m))
        # Phase-1 objective row: minimize sum of artificials.
        tableau[m, n : n + m] = 1.0
        for i in range(m):
            tableau[m] -= tableau[i]

        iters = self._iterate(tableau, basis, restrict=n + m)
        phase1_obj = -tableau[m, -1]
        if phase1_obj > 1e-7:
            return "infeasible", None, iters, None

        # Drive artificials out of the basis where possible.
        for i in range(m):
            if basis[i] >= n:
                pivot_col = next(
                    (
                        j
                        for j in range(n)
                        if abs(tableau[i, j]) > 1e-9
                    ),
                    None,
                )
                if pivot_col is not None:
                    self._pivot(tableau, basis, i, pivot_col)
                # else: redundant row; artificial stays basic at zero.

        # Phase 2: replace the objective row.
        tableau[m, :] = 0.0
        tableau[m, :n] = c_vec
        for i in range(m):
            if basis[i] < n:
                tableau[m] -= c_vec[basis[i]] * tableau[i]
        # Artificials cannot re-enter: phase 2 restricts entering columns
        # to the first n (structural + slack) columns.

        phase2 = self._iterate(tableau, basis, restrict=n)
        if phase2 < 0:
            return "unbounded", None, iters - phase2, None
        iters += phase2
        y = np.zeros(n)
        for i, var in enumerate(basis):
            if var < n:
                y[var] = tableau[i, -1]
        # A basis still containing an artificial (redundant row) cannot be
        # refactorized against the structural columns alone; report no
        # warm-startable basis in that case.
        usable = all(var < n for var in basis)
        return "optimal", y, iters, (list(basis) if usable else None)

    def _iterate(self, tableau, basis, restrict):
        """Run simplex pivots until optimal; returns iteration count.

        Returns a negative count if the problem is unbounded (the caller
        inspects the sign). Entering columns are limited to ``restrict``.
        """
        m = len(basis)
        iters = 0
        degenerate_streak = 0
        while True:
            if iters > self.max_iterations:
                raise IlpError("simplex iteration limit exceeded (cycling?)")
            row_obj = tableau[m, :restrict]
            if degenerate_streak > 50:  # Bland's rule
                candidates = np.where(row_obj < -_TOL)[0]
                if candidates.size == 0:
                    return iters
                col = int(candidates[0])
            else:
                col = int(np.argmin(row_obj))
                if row_obj[col] >= -_TOL:
                    return iters
            ratios = np.full(m, np.inf)
            column = tableau[:m, col]
            positive = column > _TOL
            ratios[positive] = tableau[:m, -1][positive] / column[positive]
            row = int(np.argmin(ratios))
            if not np.isfinite(ratios[row]):
                return -iters if iters else -1
            if ratios[row] < _TOL:
                degenerate_streak += 1
            else:
                degenerate_streak = 0
            self._pivot(tableau, basis, row, col)
            iters += 1

    @staticmethod
    def _pivot(tableau, basis, row, col):
        tableau[row] /= tableau[row, col]
        for i in range(tableau.shape[0]):
            if i != row and tableau[i, col] != 0.0:
                tableau[i] -= tableau[i, col] * tableau[row]
        basis[row] = col
