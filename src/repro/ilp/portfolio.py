"""Portfolio solving: race diverse backends under one deadline.

Castañeda Lozano & Schulte's survey names portfolio solving and bound
sharing as the standard way combinatorial schedulers close the
robustness gap: no single search strategy dominates, so the robust
configuration races several and keeps whichever finishes first.  This
module is that layer for the repro ILP stack:

:class:`PortfolioSolver`
    Races N *runners* on the same :class:`~repro.ilp.model.Model` in
    threads, under one shared wall-clock budget.  The first runner to
    prove optimality wins; the losers are cancelled cooperatively.  A
    runner is either a backend on the time-indexed model (``"highs"``,
    ``"bb"``) or a backend on the order/disjunctive re-encoding
    (``"ordered:highs"``, ``"ordered:bb"`` — see :mod:`repro.ilp.ordered`),
    so the portfolio is diverse rather than redundant.

:class:`IncumbentBus`
    The thread-safe exchange between runners.  Incumbents (full
    variable vectors of the time-indexed model) and dual bounds are
    published tighten-only: a worse incumbent or a weaker bound is
    silently dropped, so a slow runner can never regress the shared
    state.  A *poisoned* runner (one hit by a ``portfolio.cancel``
    fault) has its past bounds discarded and all future publishes
    barred — corrupted search state never crosses the bus.

:class:`RunnerControl`
    The per-runner handle threaded into the backend hot paths: a
    cooperative cancel flag (checked by the branch-and-bound node loop
    and before the blocking HiGHS call) plus publish/poll access to the
    bus.  Consumers validate every polled incumbent against their own
    model before adopting it, so the bus never needs to be trusted.

Proof semantics
---------------
Runners on the time-indexed model are exact: their optimality proofs
and dual bounds hold globally, and the bus combines them — when the
best shared bound meets the best shared incumbent, the race stops with
a *combined* proof even though no single runner closed its own tree
("the race pays for itself").  Ordered-encoding runners solve a
fixed-placement restriction: their solutions convert into valid
time-indexed incumbents (validated on conversion), but their bounds and
proofs only cover the restricted space, so an ordered ``OPTIMAL`` is
demoted to ``FEASIBLE`` at the portfolio level unless the exact group's
bound closes the gap.

Determinism
-----------
Racing is wall-clock nondeterministic, so the winner is picked per
*poll tick*: all runners that finished with a proof inside the same
tick are tied, and the tie is broken by a seeded permutation of the
roster (``seed`` parameter) — byte-identical output run-to-run whenever
finishing order is stable at poll granularity.  The emitted solution is
always the winner's own; cross-seeded incumbents are adopted only when
*strictly* better, so a runner that proves optimality emits exactly
what it would have found solo whenever its solo run reaches the same
optimum.
"""

from __future__ import annotations

import math
import random
import threading
import time

import numpy as np

from repro.ilp.branch_bound import BranchBoundSolver
from repro.ilp.highs import HighsSolver
from repro.ilp.status import (
    Solution,
    SolveStatus,
    SolverStats,
    record_solve_metrics,
)
from repro.obs import core as obs
from repro.obs.insight import GapTimeline, fault_timeline as _fault_timeline
from repro.tools import faults

# Runner roster entries the portfolio understands.  ``ordered:*`` runners
# additionally require a ``scheduling_ilp`` (the time-indexed formulation
# object) to derive the disjunctive re-encoding from; without one they
# are skipped with a note instead of failing the race.
KNOWN_RUNNERS = ("highs", "bb", "ordered:highs", "ordered:bb")

_TIE_TOL = 1e-9


class IncumbentBus:
    """Thread-safe tighten-only exchange of incumbents and dual bounds.

    All vectors live in the index space of one model (the time-indexed
    one); publishers hand in index-aligned arrays, consumers re-validate
    against their own matrices before adopting.  Minimization throughout:
    a better incumbent is *lower*, a stronger dual bound is *higher*.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._incumbent = None  # (np.ndarray, objective, runner)
        self._version = 0
        self._bounds = {}  # runner -> best dual bound published
        self._poisoned = set()
        self.published = 0  # accepted incumbent publishes
        self.rejected = 0  # tighten-only rejections

    # -- incumbents -----------------------------------------------------------
    def publish_incumbent(self, runner, values, objective):
        """Offer a feasible point; kept only if strictly better."""
        objective = float(objective)
        with self._lock:
            if runner in self._poisoned:
                return False
            if (
                self._incumbent is not None
                and objective >= self._incumbent[1] - _TIE_TOL
            ):
                self.rejected += 1
                return False
            self._incumbent = (
                np.array(values, dtype=float, copy=True),
                objective,
                runner,
            )
            self._version += 1
            self.published += 1
            return True

    def best_incumbent(self, newer_than=-1):
        """``(values, objective, version)`` or ``None``.

        ``newer_than`` skips the copy when the consumer already saw the
        current version (pollers call this on a hot path).
        """
        with self._lock:
            if self._incumbent is None or self._version <= newer_than:
                return None
            values, objective, _ = self._incumbent
            return values.copy(), objective, self._version

    def incumbent_holder(self):
        with self._lock:
            return None if self._incumbent is None else self._incumbent[2]

    # -- dual bounds ----------------------------------------------------------
    def publish_bound(self, runner, bound):
        """Offer a dual (lower) bound; kept per-runner, tighten-only."""
        if bound is None:
            return False
        bound = float(bound)
        if not math.isfinite(bound):
            return False
        with self._lock:
            if runner in self._poisoned:
                return False
            current = self._bounds.get(runner)
            if current is not None and bound <= current + _TIE_TOL:
                return False
            self._bounds[runner] = bound
            return True

    def best_bound(self):
        """Strongest (max) dual bound across healthy runners, or None."""
        with self._lock:
            live = [
                b for r, b in self._bounds.items() if r not in self._poisoned
            ]
            return max(live) if live else None

    # -- poisoning ------------------------------------------------------------
    def poison(self, runner):
        """Discard the runner's bounds and bar its future publishes.

        The runner's past *incumbents* stay only if they were adopted as
        the bus optimum before the fault — but a poisoned holder's
        incumbent is dropped too: a corrupted search may have published
        a vector that never was feasible, and nothing downstream should
        have to trust it.
        """
        with self._lock:
            self._poisoned.add(runner)
            self._bounds.pop(runner, None)
            if self._incumbent is not None and self._incumbent[2] == runner:
                self._incumbent = None
                self._version += 1

    def is_poisoned(self, runner):
        with self._lock:
            return runner in self._poisoned


class RunnerControl:
    """Per-runner cancellation token + bus access.

    Backends treat this as opaque: ``cancelled()`` on the hot path,
    ``poll_incumbent()``/``publish_incumbent()``/``publish_bound()`` on
    the sampling cadence.  ``bus=None`` builds a detached control
    (cancel-only) for runners whose variable space differs from the
    bus's (the ordered re-encoding).
    """

    def __init__(self, runner, bus=None):
        self.runner = runner
        self.bus = bus
        self._cancel = threading.Event()
        self._seen_version = -1
        # Telemetry counters, read by the portfolio after the race.
        self.published = 0
        self.adopted = 0

    def cancel(self):
        self._cancel.set()

    def cancelled(self):
        return self._cancel.is_set()

    def publish_incumbent(self, values, objective):
        if self.bus is not None and self.bus.publish_incumbent(
            self.runner, values, objective
        ):
            self.published += 1

    def publish_bound(self, bound):
        if self.bus is not None:
            self.bus.publish_bound(self.runner, bound)

    def poll_incumbent(self):
        """A bus incumbent newer than the last poll, else ``None``.

        Never returns this runner's own publishes back to it (the bus
        version still advances past them so the poll stays cheap).
        """
        if self.bus is None:
            return None
        entry = self.bus.best_incumbent(newer_than=self._seen_version)
        if entry is None:
            return None
        values, objective, version = entry
        self._seen_version = version
        if self.bus.incumbent_holder() == self.runner:
            return None
        return values, objective

    def note_adoption(self):
        self.adopted += 1


class _Runner:
    """One racing lane: spec, thread, control, and the outcome slots."""

    def __init__(self, index, spec, control):
        self.index = index
        self.spec = spec  # e.g. "highs" or "ordered:bb"
        self.control = control
        self.thread = None
        self.solution = None
        self.error = None
        self.fault = None
        self.skipped = None  # reason string when the lane never ran
        self.seconds = None  # lane wall-clock from race start to finish
        self.started = False

    @property
    def encoding(self):
        return "ordered" if self.spec.startswith("ordered:") else "time_indexed"

    @property
    def backend(self):
        return self.spec.split(":", 1)[-1]

    @property
    def exact(self):
        """Do this lane's proofs and bounds hold for the full model?"""
        return self.encoding == "time_indexed"


class PortfolioSolver:
    """Race backends on one model; first optimality proof wins.

    Parameters
    ----------
    backends:
        Runner roster, entries from :data:`KNOWN_RUNNERS`.
    time_limit:
        Shared wall-clock budget for the whole race (``None`` =
        unlimited; :func:`repro.ilp.solve_model` clips it to the
        pipeline deadline before construction).
    seed:
        Seeds the deterministic tie-break permutation applied when two
        runners prove optimality within the same poll tick.
    threads:
        Cap on concurrently running lanes (``None`` = all at once).
        Excess lanes start as slots free up — and skip starting
        entirely once the race is decided.
    poll_interval:
        Winner-election tick in seconds.  Coarser ticks collapse more
        photo-finishes into the deterministic tie-break.
    scheduling_ilp:
        The :class:`repro.sched.ilp_formulation.SchedulingIlp` the model
        was generated from; required by ``ordered:*`` lanes (their
        re-encoding is derived from its structure, and their solutions
        are converted back through it).
    heuristic_effort / node_limit / mip_rel_gap:
        Forwarded to HiGHS lanes (see :class:`~repro.ilp.highs.HighsSolver`).
    lane_stats:
        Optional ``{runner spec: {"win_rate": f, "mean_seconds": s}}``
        history (e.g. from :func:`lane_stats_from_metrics` over a prior
        run's telemetry).  Only consulted when the race *serializes*
        (``threads`` below the roster size): queued lanes then launch in
        expected-productivity order — highest win rate first, faster
        expected solve breaking ties — so a losing lane no longer burns
        the shared budget before a productive lane starts.  Fully
        concurrent races ignore it: launch order is irrelevant when
        every lane starts at once, and the roster-order default keeps
        output byte-identical.
    """

    def __init__(
        self,
        backends=("highs", "bb"),
        time_limit=None,
        seed=0,
        threads=None,
        poll_interval=0.02,
        scheduling_ilp=None,
        heuristic_effort=0.5,
        node_limit=None,
        mip_rel_gap=0.0,
        lane_stats=None,
    ):
        roster = tuple(backends)
        if not roster:
            raise ValueError("portfolio roster is empty")
        unknown = [b for b in roster if b not in KNOWN_RUNNERS]
        if unknown:
            raise ValueError(
                f"unknown portfolio runner(s) {unknown!r} "
                f"(expected one of {', '.join(KNOWN_RUNNERS)})"
            )
        self.backends = roster
        self.time_limit = time_limit
        self.seed = int(seed)
        self.threads = threads
        self.poll_interval = float(poll_interval)
        self.scheduling_ilp = scheduling_ilp
        self.heuristic_effort = heuristic_effort
        self.node_limit = node_limit
        self.mip_rel_gap = mip_rel_gap
        self.lane_stats = dict(lane_stats) if lane_stats else None

    # -- public ---------------------------------------------------------------
    def solve(self, model, incumbent=None, cutoff=None, fault_site=None):
        """Race the roster on ``model``; returns the winner's Solution.

        ``fault_site`` injects at the whole-portfolio level with the
        same kind semantics as the single backends; the dedicated
        ``portfolio.cancel`` site additionally fires once per *lane*
        (inside the race) and degrades that lane to the survivors.
        """
        fault = faults.fire(fault_site)
        if fault == "infeasible":
            stats = SolverStats(backend="portfolio")
            stats.gap_timeline = _fault_timeline("INFEASIBLE")
            return Solution(SolveStatus.INFEASIBLE, stats=stats)
        if fault == "timeout":
            stats = SolverStats(backend="portfolio")
            if incumbent is not None:
                fallback = HighsSolver._incumbent_solution(
                    model, model.to_arrays(), incumbent, stats
                )
                if fallback is not None:
                    stats.gap_timeline = _fault_timeline(
                        "FEASIBLE", incumbent=fallback.objective
                    )
                    return fallback
            stats.gap_timeline = _fault_timeline("NO_SOLUTION")
            return Solution(SolveStatus.NO_SOLUTION, stats=stats)

        if not obs.ENABLED:
            solution = self._race(model, incumbent, cutoff)
        else:
            with obs.span(
                "ilp.solve",
                backend="portfolio",
                variables=len(model.variables),
                constraints=model.num_constraints,
            ) as span:
                solution = self._race(model, incumbent, cutoff)
                span.set_attr("status", solution.status.name)
                detail = solution.stats.portfolio or {}
                if detail.get("winner"):
                    span.set_attr("winner", detail["winner"])
            record_solve_metrics(solution.stats, seeded=incumbent is not None)
            self._record_race_metrics(solution.stats.portfolio)
        if fault == "incumbent":
            return faults.demote_to_feasible(solution)
        if fault == "corrupt" and solution.status.has_solution:
            faults.corrupt_solution(solution)
        return solution

    # -- the race ---------------------------------------------------------------
    def _race(self, model, incumbent, cutoff):
        start = time.perf_counter()
        # Lane threads get fresh thread-locals, so the racing thread's
        # distributed-trace context (and its enclosing span as remote
        # parent) is captured here and re-entered inside each lane —
        # lane spans stitch back to the request's trace.
        trace_id, _parent = obs.current_trace()
        trace_parent = obs.current_span_ref()
        bus = IncumbentBus()
        self._seed_bus(bus, model, incumbent)

        runners = []
        for index, spec in enumerate(self.backends):
            control = RunnerControl(
                f"{spec}#{index}",
                bus=bus if not spec.startswith("ordered:") else None,
            )
            runners.append(_Runner(index, spec, control))

        # Seeded deterministic tie-break: a permutation of roster slots.
        # Two lanes finishing within one poll tick are ranked by it, so
        # the elected winner is a pure function of (roster, seed,
        # tick-grain finishing order) — not of scheduler jitter inside
        # the tick.
        priority = list(range(len(runners)))
        random.Random(self.seed).shuffle(priority)
        tie_rank = {runners[i].index: rank for rank, i in enumerate(priority)}

        cap = len(runners) if self.threads is None else max(1, int(self.threads))
        pending = list(runners)
        if self.lane_stats and cap < len(pending):
            # Serialized race: launch order decides who gets the budget.
            # Reorder the queue by expected productivity; concurrent
            # races keep roster order (launch order is moot there, and
            # the default stays byte-identical).
            pending = self._order_lanes(pending)
        running = []
        decided = None
        proof = None

        def launch_next():
            while pending and len(running) < cap:
                runner = pending.pop(0)
                runner.started = True
                runner.thread = threading.Thread(
                    target=self._run_lane,
                    args=(
                        runner, model, bus, incumbent, cutoff, start,
                        trace_id, trace_parent,
                    ),
                    name=f"portfolio-{runner.control.runner}",
                    daemon=True,
                )
                running.append(runner)
                runner.thread.start()

        launch_next()
        while running or pending:
            if (
                self.time_limit is not None
                and time.perf_counter() - start > self.time_limit
            ):
                break
            # A fixed tick, deliberately not an event wait: every lane
            # finishing inside one tick ties, and the seeded permutation
            # breaks the tie — waking on the first finisher would hand
            # photo finishes to scheduler jitter instead of the seed.
            time.sleep(self.poll_interval)
            finished = [r for r in running if not r.thread.is_alive()]
            for runner in finished:
                running.remove(runner)
            # Winner election: all lanes that *proved* within this tick
            # tie; the seeded permutation breaks the tie.
            provers = [
                r
                for r in finished
                if r.solution is not None
                and r.solution.status is SolveStatus.OPTIMAL
                and r.exact
                and not bus.is_poisoned(r.control.runner)
            ]
            if provers:
                decided = min(provers, key=lambda r: tie_rank[r.index])
                proof = "solo"
                break
            # Combined proof: the strongest shared dual bound meets the
            # best shared incumbent — optimal without any single runner
            # closing its tree.
            combined = self._combined_proof(model, bus)
            if combined:
                decided, proof = None, "combined"
                break
            launch_next()

        # Cancel the losers (cooperative: bb lanes exit at the next node
        # tick; a HiGHS lane mid-C-call runs out its own clipped budget).
        cancelled = {
            r.control.runner
            for r in runners
            if not r.started or (r.thread is not None and r.thread.is_alive())
        }
        for runner in runners:
            runner.control.cancel()
        grace = max(self.poll_interval * 5, 0.1)
        for runner in running:
            runner.thread.join(timeout=grace)
        abandoned = [r for r in running if r.thread.is_alive()]

        return self._emit(
            model, runners, bus, decided, proof, start, incumbent,
            cutoff, abandoned, cancelled,
        )

    def _run_lane(self, runner, model, bus, incumbent, cutoff, start,
                  trace_id=None, trace_parent=None):
        """Body of one racing thread; never lets an exception escape."""
        with obs.trace_scope(trace_id, trace_parent):
            with obs.span(
                "portfolio.lane",
                runner=runner.control.runner,
                spec=runner.spec,
            ):
                self._run_lane_body(
                    runner, model, bus, incumbent, cutoff, start
                )

    def _run_lane_body(self, runner, model, bus, incumbent, cutoff, start):
        control = runner.control
        try:
            kind = faults.fire("portfolio.cancel")
            if kind is not None:
                runner.fault = kind
                if kind in ("crash", "error"):
                    # The lane dies before producing anything; its bus
                    # state is poisoned so stale bounds cannot linger.
                    bus.poison(control.runner)
                    return
                if kind == "timeout":
                    control.cancel()
                if kind in ("corrupt", "infeasible"):
                    # The lane runs on, but nothing it says is trusted:
                    # bounds discarded, publishes barred, result dropped.
                    bus.poison(control.runner)
            if control.cancelled() and runner.fault != "timeout":
                return
            remaining = self._lane_budget(start)
            if remaining is not None and remaining <= 0:
                return
            if runner.encoding == "ordered":
                solution = self._solve_ordered(
                    runner, model, bus, cutoff, remaining
                )
            else:
                solution = self._solve_exact(
                    runner, model, bus, incumbent, cutoff, remaining
                )
            if runner.fault in ("corrupt", "infeasible"):
                # Poisoned lane: its own result is as untrusted as its
                # bus traffic.
                solution = None
            elif (
                runner.fault == "incumbent"
                and solution is not None
                and solution.status is SolveStatus.OPTIMAL
            ):
                # The lane's proof is suspect: it may not win by proof,
                # but its feasible point still races on merit.
                solution = faults.demote_to_feasible(solution)
            runner.solution = solution
            if (
                solution is not None
                and solution.status.has_solution
                and runner.exact
            ):
                values = _values_vector(model, solution.values)
                control.publish_incumbent(values, solution.objective)
                if runner.fault is None:
                    control.publish_bound(solution.stats.best_bound)
        except Exception as exc:  # a lane crash degrades, never raises
            runner.error = f"{type(exc).__name__}: {exc}"
            bus.poison(control.runner)
        finally:
            runner.seconds = time.perf_counter() - start

    def _solve_exact(self, runner, model, bus, incumbent, cutoff, budget):
        seed_incumbent = incumbent
        entry = bus.best_incumbent()
        if entry is not None:
            # Launch-time cross-seed: the best shared point (validated
            # by the receiving backend before adoption).
            seed_incumbent = entry[0]
        if runner.backend == "bb":
            solver = BranchBoundSolver(
                time_limit=budget,
                control=runner.control,
                **({"node_limit": self.node_limit} if self.node_limit else {}),
            )
        else:
            solver = HighsSolver(
                time_limit=budget,
                node_limit=self.node_limit,
                mip_rel_gap=self.mip_rel_gap,
                heuristic_effort=self.heuristic_effort,
                control=runner.control,
            )
        return solver.solve(model, incumbent=seed_incumbent, cutoff=cutoff)

    def _solve_ordered(self, runner, model, bus, cutoff, budget):
        from repro.ilp.ordered import OrderedEncoding

        if self.scheduling_ilp is None:
            runner.skipped = "no scheduling formulation attached"
            return None
        encoding = OrderedEncoding.from_scheduling_ilp(self.scheduling_ilp)
        if encoding is None:
            runner.skipped = "model shape not expressible in order encoding"
            return None
        # The race's cutoff (and the bus's best objective) live in the
        # *full* model's objective space, which need not match the
        # ordered objective (phase 2 swaps it); both are enforced after
        # conversion, never inside the ordered search.
        if runner.backend == "bb":
            solver = BranchBoundSolver(
                time_limit=budget, control=runner.control
            )
        else:
            solver = HighsSolver(
                time_limit=budget,
                heuristic_effort=self.heuristic_effort,
                control=runner.control,
            )
        ordered_solution = solver.solve(encoding.model)
        if not ordered_solution.status.has_solution:
            return ordered_solution
        converted = encoding.to_time_indexed(
            model, ordered_solution, time_limit=self._lane_budget(None)
        )
        if converted is None:
            runner.skipped = "ordered solution failed time-indexed completion"
            return None
        if cutoff is not None and converted[0] >= cutoff - _TIE_TOL:
            runner.skipped = "ordered solution not better than the cutoff"
            return None
        # The restriction's proof does not cover the full model: demote.
        status = (
            SolveStatus.FEASIBLE
            if ordered_solution.status is SolveStatus.OPTIMAL
            else ordered_solution.status
        )
        stats = ordered_solution.stats
        stats.backend = f"ordered/{runner.backend}"
        stats.best_bound = None  # restricted bound: not globally valid
        stats.gap = None
        solution = Solution(status, converted[0], converted[1], stats)
        values = _values_vector(model, solution.values)
        if bus.publish_incumbent(runner.control.runner, values, solution.objective):
            runner.control.published += 1
        return solution

    # -- outcome assembly -------------------------------------------------------
    def _emit(
        self, model, runners, bus, decided, proof, start, incumbent,
        cutoff, abandoned, cancelled,
    ):
        elapsed = time.perf_counter() - start
        winner = decided
        if winner is None and proof == "combined":
            # The bus optimum is the winner's solution; attribute the
            # win to the lane holding it (the holder may be the launch
            # seed, or still mid-cancel — the bus vector stands alone).
            holder = bus.incumbent_holder()
            for runner in runners:
                if runner.control.runner == holder:
                    winner = runner
                    break
        if winner is None and proof != "combined":
            winner, proof = self._best_finisher(runners, bus), None

        detail = self._detail(
            runners, bus, winner, proof, elapsed, abandoned, cancelled
        )

        if proof == "combined" and (
            winner is None or winner.solution is None
        ):
            # Proven optimal by the shared bound, but the holding lane
            # produced no standalone Solution (cancelled mid-exit, or
            # the launch seed holds): rebuild from the bus vector.
            entry = bus.best_incumbent()
            stats = SolverStats(backend="portfolio", time_seconds=elapsed)
            stats.portfolio = detail
            stats.best_bound = bus.best_bound()
            if entry is not None:
                rebuilt = HighsSolver._incumbent_solution(
                    model, model.to_arrays(), entry[0], stats
                )
                if rebuilt is not None:
                    stats.gap_timeline = _fault_timeline(
                        "OPTIMAL",
                        incumbent=rebuilt.objective,
                        bound=stats.best_bound,
                    )
                    return Solution(
                        SolveStatus.OPTIMAL,
                        rebuilt.objective,
                        rebuilt.values,
                        stats,
                    )
            proof = None  # vector failed validation: fall through

        if winner is None or winner.solution is None:
            winner = self._best_finisher(runners, bus)

        if winner is None or winner.solution is None:
            # Nothing usable from any lane: degrade, never raise.
            stats = SolverStats(backend="portfolio", time_seconds=elapsed)
            stats.portfolio = detail
            # An exact lane's infeasibility proof holds globally.
            if any(
                r.solution is not None
                and r.exact
                and r.solution.status is SolveStatus.INFEASIBLE
                and not bus.is_poisoned(r.control.runner)
                for r in runners
            ):
                stats.gap_timeline = _fault_timeline("INFEASIBLE")
                return Solution(SolveStatus.INFEASIBLE, stats=stats)
            for candidate in (
                entry[0] if (entry := bus.best_incumbent()) else None,
                incumbent,
            ):
                if candidate is None:
                    continue
                fallback = HighsSolver._incumbent_solution(
                    model, model.to_arrays(), candidate, stats
                )
                if fallback is not None:
                    stats.gap_timeline = _fault_timeline(
                        "FEASIBLE", incumbent=fallback.objective
                    )
                    return fallback
            stats.gap_timeline = _fault_timeline("NO_SOLUTION")
            return Solution(SolveStatus.NO_SOLUTION, stats=stats)

        solution = winner.solution
        status = solution.status
        if (
            proof == "combined"
            and status is SolveStatus.FEASIBLE
            and self._combined_proof(model, bus)
        ):
            status = SolveStatus.OPTIMAL
        stats = solution.stats
        stats.backend = "portfolio"
        stats.time_seconds = elapsed
        stats.portfolio = detail
        if stats.gap_timeline is None:
            stats.gap_timeline = GapTimeline()
            stats.gap_timeline.close(
                elapsed, incumbent=solution.objective, status=status.name
            )
        return Solution(status, solution.objective, solution.values, stats)

    def _order_lanes(self, pending):
        """Expected-productivity launch order for a serialized race.

        Highest historical win rate first; among equals, the lower
        expected solve time; among unknowns, original roster order.  A
        runner absent from the stats table sorts after every known one —
        history never demotes a proven lane below an untried one.
        """
        def rank(runner):
            stats = self.lane_stats.get(runner.spec)
            if stats is None:
                return (1, 0.0, float("inf"), runner.index)
            if isinstance(stats, (int, float)):
                return (0, -float(stats), float("inf"), runner.index)
            win_rate = float(stats.get("win_rate") or 0.0)
            seconds = stats.get("mean_seconds")
            seconds = float("inf") if seconds is None else float(seconds)
            return (0, -win_rate, seconds, runner.index)

        return sorted(pending, key=rank)

    def _best_finisher(self, runners, bus):
        """No proof anywhere: best objective wins, tie-broken by roster."""
        candidates = [
            r
            for r in runners
            if r.solution is not None
            and r.solution.status.has_solution
            and not bus.is_poisoned(r.control.runner)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (r.solution.objective, r.index),
        )

    def _combined_proof(self, model, bus):
        """Does the shared bound close the gap on the shared incumbent?"""
        entry = bus.best_incumbent()
        bound = bus.best_bound()
        if entry is None or bound is None:
            return False
        objective = entry[1]
        if _objective_is_integral(model):
            return math.ceil(bound - 1e-6) >= objective - _TIE_TOL
        return bound >= objective - 1e-6

    def _detail(
        self, runners, bus, winner, proof, elapsed, abandoned, cancelled
    ):
        lanes = {}
        transfers = 0
        for runner in runners:
            solution = runner.solution
            lanes[runner.control.runner] = {
                "spec": runner.spec,
                "status": (
                    solution.status.name if solution is not None else None
                ),
                "objective": (
                    solution.objective if solution is not None else None
                ),
                "nodes": solution.stats.nodes if solution is not None else 0,
                "seconds": (
                    None if runner.seconds is None else round(runner.seconds, 4)
                ),
                "cancelled": runner.control.runner in cancelled
                and (winner is None or runner is not winner),
                "fault": runner.fault,
                "error": runner.error,
                "skipped": runner.skipped,
                "published": runner.control.published,
                "adopted": runner.control.adopted,
                "poisoned": bus.is_poisoned(runner.control.runner),
                "abandoned": runner in abandoned,
                "started": runner.started,
            }
            transfers += runner.control.adopted
        return {
            "roster": list(self.backends),
            "seed": self.seed,
            "winner": winner.spec if winner is not None else None,
            "winner_lane": (
                winner.control.runner if winner is not None else None
            ),
            "proof": proof,
            "elapsed_seconds": elapsed,
            "seed_transfers": transfers,
            "bus_published": bus.published,
            "bus_rejected": bus.rejected,
            "lanes": lanes,
        }

    def _record_race_metrics(self, detail):
        if not detail or not obs.ENABLED:
            return
        obs.counter("portfolio_races_total", 1)
        winner = detail.get("winner")
        for lane in detail.get("lanes", {}).values():
            spec = lane["spec"]
            if spec == winner and lane["status"] is not None:
                obs.counter("portfolio_wins_total", 1, runner=spec)
            elif lane["started"] and lane["skipped"] is None:
                obs.counter("portfolio_losses_total", 1, runner=spec)
            if lane["cancelled"]:
                obs.counter("portfolio_cancelled_total", 1, runner=spec)
            if lane["fault"] is not None:
                obs.counter(
                    "portfolio_lane_faults_total", 1, runner=spec,
                    kind=lane["fault"],
                )
            if lane["adopted"]:
                obs.counter(
                    "portfolio_seed_transfers_total",
                    lane["adopted"],
                    runner=spec,
                )
            if lane["published"]:
                obs.counter(
                    "portfolio_incumbents_published_total",
                    lane["published"],
                    runner=spec,
                )
            if lane["seconds"] is not None and lane["started"]:
                # Raw material for lane_stats_from_metrics: expected
                # solve time per runner, for budget-aware lane ordering.
                obs.histogram(
                    "portfolio_lane_seconds", lane["seconds"], runner=spec
                )
        if detail.get("proof"):
            obs.counter(
                "portfolio_proofs_total", 1, proof=detail["proof"]
            )

    # -- helpers ------------------------------------------------------------------
    def _lane_budget(self, start):
        if self.time_limit is None:
            return None
        if start is None:
            return self.time_limit
        return max(0.0, self.time_limit - (time.perf_counter() - start))

    @staticmethod
    def _seed_bus(bus, model, incumbent):
        if incumbent is None:
            return
        try:
            vector = _values_vector(model, incumbent)
        except (KeyError, ValueError, TypeError):
            return
        arrays = model.to_arrays()
        objective = float(np.dot(arrays["c"], vector))
        bus.publish_incumbent("seed", vector, objective)


def lane_stats_from_metrics(metrics):
    """Per-runner ``lane_stats`` table from a ``--metrics`` dump.

    Folds a prior run's telemetry (``portfolio_wins_total`` /
    ``portfolio_losses_total`` counters, the ``portfolio_lane_seconds``
    histogram) into the ``{spec: {"win_rate", "mean_seconds"}}`` shape
    :class:`PortfolioSolver` consumes, closing the telemetry loop the
    ROADMAP's backend auto-tuner calls for: yesterday's races decide
    today's serialized launch order.  Returns ``{}`` on an empty or
    obs-disabled dump, which the solver treats as "no history".
    """
    from repro.obs.insight import portfolio_summary

    digest = portfolio_summary(metrics or {})
    histograms = (metrics or {}).get("histograms", {}) or {}
    seconds = {}
    marker = 'portfolio_lane_seconds{runner="'
    for key, value in histograms.items():
        if not key.startswith(marker) or not isinstance(value, dict):
            continue
        spec = key[len(marker):].split('"', 1)[0]
        count = value.get("count") or 0
        if count:
            entry = seconds.setdefault(spec, [0.0, 0.0])
            entry[0] += value.get("sum") or 0.0
            entry[1] += count
    stats = {}
    for spec in set(digest["wins"]) | set(digest["losses"]) | set(seconds):
        wins = digest["wins"].get(spec, 0)
        entered = wins + digest["losses"].get(spec, 0)
        total, count = seconds.get(spec, (0.0, 0.0))
        stats[spec] = {
            "win_rate": wins / entered if entered else 0.0,
            "mean_seconds": total / count if count else None,
        }
    return stats


def _values_vector(model, values):
    """An index-aligned array from a ``{Var: value}`` map (or passthrough)."""
    if isinstance(values, dict):
        vector = np.zeros(len(model.variables))
        for var in model.variables:
            vector[var.index] = float(values[var])
        return vector
    vector = np.asarray(values, dtype=float)
    if vector.shape != (len(model.variables),):
        raise ValueError("incumbent vector shape mismatch")
    return vector


def _objective_is_integral(model):
    arrays = model.to_arrays()
    coeffs = arrays["c"][np.abs(arrays["c"]) > 0]
    if coeffs.size == 0:
        return True
    on_integers = arrays["integrality"][np.abs(arrays["c"]) > 0]
    return bool(
        np.all(on_integers)
        and np.allclose(coeffs, np.round(coeffs), atol=1e-9)
    )
