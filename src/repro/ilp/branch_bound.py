"""Pure-Python branch-and-bound MILP solver.

This is the stand-in for the paper's CPLEX: a best-bound branch-and-bound
search over LP relaxations. Relaxations are solved either with scipy's
``linprog`` (HiGHS, the default) or with the package's own dense simplex
(:mod:`repro.ilp.simplex`) so the whole stack can run without scipy's C
solvers if required.

Features:

* best-bound node selection (min-heap on relaxation objective) with an
  initial depth-first *dive* to find an incumbent early,
* most-fractional branching,
* optional root rounding heuristic,
* integral-objective bound strengthening (``ceil`` the node bound when all
  objective coefficients and variables are integral),
* node / time limits with graceful ``FEASIBLE``/``NO_SOLUTION`` statuses,
* search statistics (explored nodes, LP solves, wall time) feeding Table 2.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time

import numpy as np
from scipy import optimize, sparse

from repro.ilp.presolve import presolve_arrays
from repro.ilp.simplex import SimplexSolver
from repro.ilp.status import Solution, SolveStatus, SolverStats

_INT_TOL = 1e-6


class _Relaxation:
    """LP relaxation oracle with per-node variable bounds."""

    def __init__(self, arrays, engine="scipy"):
        self.c = arrays["c"]
        self.engine = engine
        a_mat = arrays["A"]
        b_lo, b_hi = arrays["b_lo"], arrays["b_hi"]
        eq_rows = np.isfinite(b_lo) & np.isfinite(b_hi) & (b_lo == b_hi)
        ub_rows = np.isfinite(b_hi) & ~eq_rows
        lo_rows = np.isfinite(b_lo) & ~eq_rows
        blocks, rhs = [], []
        if ub_rows.any():
            blocks.append(a_mat[ub_rows])
            rhs.append(b_hi[ub_rows])
        if lo_rows.any():
            blocks.append(-a_mat[lo_rows])
            rhs.append(-b_lo[lo_rows])
        self.a_ub = sparse.vstack(blocks).tocsr() if blocks else None
        self.b_ub = np.concatenate(rhs) if rhs else None
        self.a_eq = a_mat[eq_rows] if eq_rows.any() else None
        self.b_eq = b_hi[eq_rows] if eq_rows.any() else None
        self.arrays = arrays

    def solve(self, lb, ub):
        """Solve min c'x with the given bound vectors; returns (status, obj, x)."""
        if np.any(lb > ub + 1e-12):
            return "infeasible", None, None
        if self.engine == "simplex":
            local = dict(self.arrays)
            local["lb"], local["ub"] = lb, ub
            result = SimplexSolver().solve_arrays(local)
            return result.status, result.objective, result.x
        bounds = np.column_stack([lb, ub])
        result = optimize.linprog(
            self.c,
            A_ub=self.a_ub,
            b_ub=self.b_ub,
            A_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=bounds,
            method="highs",
        )
        if result.status == 2:
            return "infeasible", None, None
        if result.status == 3:
            return "unbounded", None, None
        if not result.success:
            return "infeasible", None, None
        return "optimal", float(result.fun), result.x


class BranchBoundSolver:
    """Branch-and-bound over LP relaxations.

    Parameters
    ----------
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited). When exceeded
        the best incumbent (if any) is returned with status ``FEASIBLE``.
    node_limit:
        Maximum number of explored nodes.
    relaxation:
        ``"scipy"`` (HiGHS linprog) or ``"simplex"`` (own dense simplex).
    rounding_heuristic:
        Try rounding the root relaxation to snatch an early incumbent.
    dive_first:
        Explore a depth-first dive from the root before switching to
        best-bound order, which usually finds an incumbent quickly.
    """

    def __init__(
        self,
        time_limit=None,
        node_limit=200000,
        relaxation="scipy",
        rounding_heuristic=True,
        dive_first=True,
    ):
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.relaxation = relaxation
        self.rounding_heuristic = rounding_heuristic
        self.dive_first = dive_first

    # -- public -------------------------------------------------------------
    def solve(self, model):
        start = time.perf_counter()
        stats = SolverStats(backend=f"bb/{self.relaxation}")
        arrays = model.to_arrays()
        arrays, fixed_empty = presolve_arrays(arrays)
        if fixed_empty:
            stats.time_seconds = time.perf_counter() - start
            return Solution(SolveStatus.INFEASIBLE, stats=stats)

        integrality = arrays["integrality"]
        int_idx = np.where(integrality)[0]
        oracle = _Relaxation(arrays, engine=self.relaxation)
        obj_integral = self._objective_is_integral(arrays)

        status, obj, x = oracle.solve(arrays["lb"], arrays["ub"])
        stats.lp_solves += 1
        if status == "infeasible":
            stats.time_seconds = time.perf_counter() - start
            return Solution(SolveStatus.INFEASIBLE, stats=stats)
        if status == "unbounded":
            stats.time_seconds = time.perf_counter() - start
            return Solution(SolveStatus.UNBOUNDED, stats=stats)

        incumbent_x = None
        incumbent_obj = math.inf

        frac = self._most_fractional(x, int_idx)
        if frac is None:
            return self._finish(model, arrays, x, obj, stats, start, optimal=True)

        if self.rounding_heuristic:
            rounded = self._try_rounding(arrays, x, int_idx)
            if rounded is not None:
                incumbent_x, incumbent_obj = rounded

        counter = itertools.count()
        heap = []  # (bound, depth-tiebreak, lb, ub, warm x)
        heapq.heappush(
            heap,
            (obj, 0, next(counter), arrays["lb"].copy(), arrays["ub"].copy(), x, obj),
        )
        best_bound = obj
        timed_out = False

        while heap:
            if self.time_limit is not None and (
                time.perf_counter() - start > self.time_limit
            ):
                timed_out = True
                break
            if stats.nodes >= self.node_limit:
                timed_out = True
                break
            if self.dive_first and incumbent_x is None:
                # LIFO dive: take the most recently pushed node.
                entry = max(heap, key=lambda e: e[2])
                heap.remove(entry)
                heapq.heapify(heap)
            else:
                entry = heapq.heappop(heap)
            bound, _depth, _tie, lb, ub, node_x, node_obj = entry
            best_bound = min([bound] + [e[0] for e in heap], default=bound)
            if self._prune(bound, incumbent_obj, obj_integral):
                continue
            frac = self._most_fractional(node_x, int_idx)
            if frac is None:
                if node_obj < incumbent_obj - 1e-9:
                    incumbent_obj, incumbent_x = node_obj, node_x
                continue
            var, value = frac
            stats.nodes += 1
            for branch in ("down", "up"):
                child_lb, child_ub = lb.copy(), ub.copy()
                if branch == "down":
                    child_ub[var] = math.floor(value)
                else:
                    child_lb[var] = math.ceil(value)
                status, child_obj, child_x = oracle.solve(child_lb, child_ub)
                stats.lp_solves += 1
                if status != "optimal":
                    continue
                if self._prune(child_obj, incumbent_obj, obj_integral):
                    continue
                child_frac = self._most_fractional(child_x, int_idx)
                if child_frac is None:
                    if child_obj < incumbent_obj - 1e-9:
                        incumbent_obj, incumbent_x = child_obj, child_x
                    continue
                heapq.heappush(
                    heap,
                    (
                        child_obj,
                        _depth + 1,
                        next(counter),
                        child_lb,
                        child_ub,
                        child_x,
                        child_obj,
                    ),
                )

        stats.best_bound = best_bound if heap or timed_out else incumbent_obj
        if incumbent_x is None:
            stats.time_seconds = time.perf_counter() - start
            status = SolveStatus.NO_SOLUTION if timed_out else SolveStatus.INFEASIBLE
            return Solution(status, stats=stats)
        return self._finish(
            model,
            arrays,
            incumbent_x,
            incumbent_obj,
            stats,
            start,
            optimal=not timed_out,
        )

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _objective_is_integral(arrays):
        coeffs = arrays["c"][np.abs(arrays["c"]) > 0]
        if coeffs.size == 0:
            return True
        on_integers = arrays["integrality"][np.abs(arrays["c"]) > 0]
        return bool(
            np.all(on_integers) and np.allclose(coeffs, np.round(coeffs), atol=1e-9)
        )

    @staticmethod
    def _prune(bound, incumbent_obj, obj_integral):
        if not math.isfinite(incumbent_obj):
            return False
        if obj_integral:
            return math.ceil(bound - 1e-6) >= incumbent_obj - 1e-9
        return bound >= incumbent_obj - 1e-9

    @staticmethod
    def _most_fractional(x, int_idx):
        """Pick the integer variable farthest from integrality, or None."""
        if x is None or int_idx.size == 0:
            return None
        values = x[int_idx]
        dist = np.abs(values - np.round(values))
        worst = int(np.argmax(dist))
        if dist[worst] <= _INT_TOL:
            return None
        return int(int_idx[worst]), float(values[worst])

    def _try_rounding(self, arrays, x, int_idx):
        """Round the relaxation and accept if it satisfies every row."""
        candidate = x.copy()
        candidate[int_idx] = np.round(candidate[int_idx])
        candidate = np.clip(candidate, arrays["lb"], arrays["ub"])
        row_vals = arrays["A"] @ candidate
        if np.all(row_vals <= arrays["b_hi"] + 1e-6) and np.all(
            row_vals >= arrays["b_lo"] - 1e-6
        ):
            return candidate, float(np.dot(arrays["c"], candidate))
        return None

    def _finish(self, model, arrays, x, obj, stats, start, optimal):
        stats.time_seconds = time.perf_counter() - start
        if stats.best_bound is not None and obj is not None and obj != 0:
            stats.gap = abs(obj - stats.best_bound) / max(1.0, abs(obj))
        values = {}
        for var in model.variables:
            raw = float(x[var.index])
            values[var] = float(round(raw)) if var.is_integer else raw
        status = SolveStatus.OPTIMAL if optimal else SolveStatus.FEASIBLE
        return Solution(status, float(obj), values, stats)
