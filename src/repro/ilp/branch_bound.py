"""Pure-Python branch-and-bound MILP solver.

This is the stand-in for the paper's CPLEX: a branch-and-bound search over
LP relaxations. Relaxations are solved either with scipy's ``linprog``
(HiGHS, the default) or with the package's own dense simplex
(:mod:`repro.ilp.simplex`) so the whole stack can run without scipy's C
solvers if required.

Search architecture (the solver-throughput overhaul):

* a **two-policy frontier** — an initial LIFO *dive* finds an incumbent
  fast, then the open nodes move into a best-bound min-heap; both
  structures push and pop in O(log n), with no linear rescans or
  ``heap.remove`` calls on the hot path,
* **lazy node evaluation** — a node stores only the *bound deltas* along
  its path from the root (O(depth) memory, not O(vars) bound-array
  copies); its LP is solved once, when it is popped,
* **pseudocost branching** seeded from most-fractional until per-variable
  degradation history accumulates,
* **warm-started relaxations** — with the ``"simplex"`` engine each node
  reuses its parent's optimal basis and reoptimizes with dual simplex
  pivots (:meth:`repro.ilp.simplex.SimplexSolver.solve_arrays`); the
  scipy/HiGHS engine keeps cold solves but still benefits from the cheap
  node bookkeeping,
* **incumbent / cutoff seeding** — a caller holding a feasible assignment
  (e.g. the scheduler's bundling-cut loop) can pass it in to start the
  search with an upper bound,
* relaxations that hit an iteration or numerical limit are surfaced as
  ``"unknown"`` (counted in :attr:`SolverStats.unknown_lps`) and demote
  the final status from OPTIMAL to FEASIBLE instead of being silently
  pruned,
* node / time limits with graceful ``FEASIBLE``/``NO_SOLUTION`` statuses,
  search statistics (explored nodes, LP solves, wall time) feeding Table 2.
"""

from __future__ import annotations

import heapq
import math
import time

import numpy as np
from scipy import optimize, sparse

from repro.errors import IlpError
from repro.ilp.presolve import presolve_arrays
from repro.ilp.simplex import SimplexSolver
from repro.ilp.status import (
    Solution,
    SolveStatus,
    SolverStats,
    record_solve_metrics,
)
from repro.obs import core as obs
from repro.obs.insight import GapTimeline, fault_timeline as _fault_timeline
from repro.tools import faults

_INT_TOL = 1e-6
# Gap-timeline sampling cadence: one sample per this many explored nodes
# (plus one per new incumbent). One min() over the open frontier every 32
# LP solves is noise next to the solves themselves.
_GAP_SAMPLE_NODES = 32


class _Relaxation:
    """LP relaxation oracle with per-node variable bounds.

    ``solve`` returns ``(status, objective, x, basis)`` where status is one
    of ``"optimal"``, ``"infeasible"``, ``"unbounded"`` or ``"unknown"``
    (the relaxation hit an iteration/numerical limit and produced no
    verdict — callers must NOT treat that as infeasible). ``basis`` is a
    warm-start token for a later call (simplex engine only).
    """

    def __init__(self, arrays, engine="scipy"):
        self.c = arrays["c"]
        self.engine = engine
        a_mat = arrays["A"]
        b_lo, b_hi = arrays["b_lo"], arrays["b_hi"]
        eq_rows = np.isfinite(b_lo) & np.isfinite(b_hi) & (b_lo == b_hi)
        ub_rows = np.isfinite(b_hi) & ~eq_rows
        lo_rows = np.isfinite(b_lo) & ~eq_rows
        blocks, rhs = [], []
        if ub_rows.any():
            blocks.append(a_mat[ub_rows])
            rhs.append(b_hi[ub_rows])
        if lo_rows.any():
            blocks.append(-a_mat[lo_rows])
            rhs.append(-b_lo[lo_rows])
        self.a_ub = sparse.vstack(blocks).tocsr() if blocks else None
        self.b_ub = np.concatenate(rhs) if rhs else None
        self.a_eq = a_mat[eq_rows].tocsr() if eq_rows.any() else None
        self.b_eq = b_hi[eq_rows] if eq_rows.any() else None
        self.arrays = arrays
        self.iterations = 0  # simplex pivots across the whole tree
        if engine == "simplex":
            # The dense conversion is done once for the whole tree instead
            # of once per node.
            self._dense_a = np.asarray(a_mat.todense(), dtype=float)
            self._simplex = SimplexSolver()

    def solve(self, lb, ub, warm_basis=None):
        """Solve min c'x with the given bound vectors."""
        if np.any(lb > ub + 1e-12):
            return "infeasible", None, None, None
        if self.engine == "simplex":
            local = dict(self.arrays)
            local["A"] = self._dense_a
            local["lb"], local["ub"] = lb, ub
            try:
                result = self._simplex.solve_arrays(local, warm_basis=warm_basis)
            except IlpError:
                return "unknown", None, None, None
            self.iterations += result.iterations
            return result.status, result.objective, result.x, result.basis
        bounds = np.column_stack([lb, ub])
        result = optimize.linprog(
            self.c,
            A_ub=self.a_ub,
            b_ub=self.b_ub,
            A_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=bounds,
            method="highs",
        )
        self.iterations += int(getattr(result, "nit", 0) or 0)
        if result.status == 2:
            return "infeasible", None, None, None
        if result.status == 3:
            return "unbounded", None, None, None
        if not result.success:
            # Iteration limit (1) or numerical trouble (4): no verdict.
            return "unknown", None, None, None
        return "optimal", float(result.fun), result.x, None

    def check_point(self, x, tol=1e-6):
        """Feasibility of ``x`` against rows and bounds, via the cached CSR."""
        arrays = self.arrays
        if np.any(x < arrays["lb"] - tol) or np.any(x > arrays["ub"] + tol):
            return False
        if self.a_ub is not None and np.any(self.a_ub @ x > self.b_ub + tol):
            return False
        if self.a_eq is not None and np.any(
            np.abs(self.a_eq @ x - self.b_eq) > tol
        ):
            return False
        return True


class _Pseudocosts:
    """Per-variable branching degradation history (objective per unit)."""

    def __init__(self, n):
        self.sums = {"down": np.zeros(n), "up": np.zeros(n)}
        self.counts = {"down": np.zeros(n), "up": np.zeros(n)}

    def record(self, var, direction, frac, gain):
        distance = frac if direction == "down" else 1.0 - frac
        unit = max(gain, 0.0) / max(distance, 1e-4)
        self.sums[direction][var] += unit
        self.counts[direction][var] += 1.0

    def select(self, x, int_idx):
        """Pick the branch variable; returns (index, value) or None.

        Product rule over down/up pseudocosts; variables without history
        fall back to the average initialized pseudocost, and when *nothing*
        is initialized yet the choice is seeded from most-fractional.
        """
        values = x[int_idx]
        dist = np.abs(values - np.round(values))
        mask = dist > _INT_TOL
        if not mask.any():
            return None
        cand = int_idx[mask]
        cand_vals = values[mask]
        frac = cand_vals - np.floor(cand_vals)
        cnt_d, cnt_u = self.counts["down"][cand], self.counts["up"][cand]
        if not ((cnt_d > 0) | (cnt_u > 0)).any():
            pick = int(np.argmax(dist[mask]))
            return int(cand[pick]), float(cand_vals[pick])
        avg_d = self._average("down")
        avg_u = self._average("up")
        pc_d = np.where(
            cnt_d > 0, self.sums["down"][cand] / np.maximum(cnt_d, 1.0), avg_d
        )
        pc_u = np.where(
            cnt_u > 0, self.sums["up"][cand] / np.maximum(cnt_u, 1.0), avg_u
        )
        score = np.maximum(pc_d * frac, 1e-6) * np.maximum(
            pc_u * (1.0 - frac), 1e-6
        )
        best = np.max(score)
        # Break near-ties toward the most fractional candidate.
        tied = score >= best * (1.0 - 1e-9)
        pick = int(np.flatnonzero(tied)[np.argmax(dist[mask][tied])])
        return int(cand[pick]), float(cand_vals[pick])

    def _average(self, direction):
        counts = self.counts[direction]
        initialized = counts > 0
        if not initialized.any():
            return 1.0
        return float(
            np.sum(self.sums[direction][initialized] / counts[initialized])
            / np.count_nonzero(initialized)
        )

    def snapshot(self, top=8):
        """Plain-data dump of the most-branched variables (telemetry).

        Returns up to ``top`` rows ordered by total branch count, each
        ``{"var", "down_avg", "up_avg", "down_count", "up_count"}`` — the
        pseudocost table a dashboard can render without numpy.
        """
        total = self.counts["down"] + self.counts["up"]
        active = np.flatnonzero(total)
        if active.size == 0:
            return []
        order = active[np.argsort(-total[active], kind="stable")][:top]
        rows = []
        for var in order:
            var = int(var)
            row = {"var": var}
            for direction, key in (("down", "down"), ("up", "up")):
                count = self.counts[direction][var]
                avg = (
                    self.sums[direction][var] / count if count > 0 else 0.0
                )
                row[f"{key}_avg"] = float(avg)
                row[f"{key}_count"] = int(count)
            rows.append(row)
        return rows


class _Node:
    """An open branch-and-bound node: bound deltas, not bound arrays.

    ``deltas`` is the tuple of ``(var, is_upper, value)`` bound changes
    along the path from the root — O(depth) per node. The parent's LP
    solution is *not* stored; the node's relaxation is solved lazily when
    it is popped. ``basis`` is the parent's warm-start token (shared, not
    copied).
    """

    __slots__ = ("bound", "deltas", "basis", "bvar", "bdir", "bfrac")

    def __init__(self, bound, deltas, basis, bvar, bdir, bfrac):
        self.bound = bound
        self.deltas = deltas
        self.basis = basis
        self.bvar = bvar
        self.bdir = bdir
        self.bfrac = bfrac


class BranchBoundSolver:
    """Branch-and-bound over LP relaxations.

    Parameters
    ----------
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited). When exceeded
        the best incumbent (if any) is returned with status ``FEASIBLE``.
    node_limit:
        Maximum number of explored nodes.
    relaxation:
        ``"scipy"`` (HiGHS linprog) or ``"simplex"`` (own dense simplex,
        with parent-basis warm starts).
    rounding_heuristic:
        Try rounding the root relaxation to snatch an early incumbent.
    dive_first:
        Explore depth-first from the root until the first incumbent, then
        switch to best-bound order.
    control:
        Optional :class:`repro.ilp.portfolio.RunnerControl` (or anything
        duck-typed like it). The node loop checks ``control.cancelled()``
        each iteration — a cancelled search exits like a timeout, with
        its best incumbent — and on the gap-sample cadence publishes its
        incumbent/dual bound to the portfolio bus and polls for external
        incumbents, which are validated against this model and adopted
        only when strictly better.
    """

    def __init__(
        self,
        time_limit=None,
        node_limit=200000,
        relaxation="scipy",
        rounding_heuristic=True,
        dive_first=True,
        control=None,
    ):
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.relaxation = relaxation
        self.rounding_heuristic = rounding_heuristic
        self.dive_first = dive_first
        self.control = control

    # -- public -------------------------------------------------------------
    def solve(self, model, incumbent=None, cutoff=None, fault_site=None):
        """Solve ``model``; returns a :class:`Solution`.

        ``incumbent`` seeds the search with a known assignment (a mapping
        ``Var -> value`` or an index-aligned array); it is validated
        against the model and silently discarded if infeasible — e.g. the
        previous schedule after a bundling cut outlawed it. ``cutoff``
        prunes all nodes with bound >= cutoff: only strictly better
        solutions are searched for, and exhausting the tree without one
        yields ``NO_SOLUTION`` (*not* INFEASIBLE — the caller's cutoff
        solution still stands).

        ``fault_site`` enables deterministic fault injection
        (:mod:`repro.tools.faults`) with the same status semantics as the
        HiGHS backend: ``timeout`` returns the validated incumbent as
        FEASIBLE (else NO_SOLUTION), ``infeasible`` the INFEASIBLE
        verdict; ``incumbent``/``corrupt`` mangle a completed solve.
        """
        fault = faults.fire(fault_site)
        stats_name = f"bb/{self.relaxation}"
        if fault == "infeasible":
            stats = SolverStats(backend=stats_name)
            stats.gap_timeline = _fault_timeline("INFEASIBLE")
            return Solution(SolveStatus.INFEASIBLE, stats=stats)
        if fault == "timeout":
            stats = SolverStats(backend=stats_name)
            if incumbent is not None:
                oracle = _Relaxation(model.to_arrays())
                int_idx = np.where(oracle.arrays["integrality"])[0]
                seeded = self._validate_incumbent(
                    model, incumbent, oracle, int_idx
                )
                if seeded is not None:
                    x, obj = seeded
                    values = {}
                    for var in model.variables:
                        raw = float(x[var.index])
                        values[var] = (
                            float(round(raw)) if var.is_integer else raw
                        )
                    stats.gap_timeline = _fault_timeline(
                        "FEASIBLE", incumbent=obj
                    )
                    return Solution(SolveStatus.FEASIBLE, obj, values, stats)
            stats.gap_timeline = _fault_timeline("NO_SOLUTION")
            return Solution(SolveStatus.NO_SOLUTION, stats=stats)
        # Telemetry rides on the stats the search already collects, so
        # the node loop itself carries no instrumentation overhead.
        if not obs.ENABLED:
            solution = self._solve_impl(model, incumbent, cutoff)
        else:
            with obs.span(
                "ilp.solve",
                backend=stats_name,
                variables=len(model.variables),
                constraints=model.num_constraints,
            ) as span:
                solution = self._solve_impl(model, incumbent, cutoff)
                span.set_attr("status", solution.status.name)
                span.set_attr("nodes", solution.stats.nodes)
                if solution.stats.gap is not None:
                    span.set_attr("gap", solution.stats.gap)
            record_solve_metrics(solution.stats, seeded=incumbent is not None)
        if fault == "incumbent":
            return faults.demote_to_feasible(solution)
        if fault == "corrupt" and solution.status.has_solution:
            faults.corrupt_solution(solution)
        return solution

    def _solve_impl(self, model, incumbent, cutoff):
        start = time.perf_counter()
        stats = SolverStats(backend=f"bb/{self.relaxation}")
        arrays = model.to_arrays()
        arrays, fixed_empty = presolve_arrays(arrays)
        if fixed_empty:
            stats.time_seconds = time.perf_counter() - start
            stats.gap_timeline = _fault_timeline("INFEASIBLE")
            return Solution(SolveStatus.INFEASIBLE, stats=stats)

        integrality = arrays["integrality"]
        int_idx = np.where(integrality)[0]
        oracle = _Relaxation(arrays, engine=self.relaxation)
        obj_integral = self._objective_is_integral(arrays)
        root_lb, root_ub = arrays["lb"], arrays["ub"]

        # The convergence record. Sampled after the root relaxation, on
        # every new incumbent and per node batch; closed (exactly once)
        # on *every* exit path below, so ``closed`` is a trustworthy
        # "the search really ended" marker for dashboards.
        timeline = stats.gap_timeline = GapTimeline()
        status, obj, x, basis = oracle.solve(root_lb, root_ub)
        stats.lp_solves += 1
        stats.simplex_iterations = oracle.iterations
        if status == "infeasible":
            stats.time_seconds = time.perf_counter() - start
            timeline.close(stats.time_seconds, status="INFEASIBLE")
            return Solution(SolveStatus.INFEASIBLE, stats=stats)
        if status == "unbounded":
            stats.time_seconds = time.perf_counter() - start
            timeline.close(stats.time_seconds, status="UNBOUNDED")
            return Solution(SolveStatus.UNBOUNDED, stats=stats)
        if status == "unknown":
            stats.unknown_lps += 1
            stats.time_seconds = time.perf_counter() - start
            timeline.close(stats.time_seconds, status="NO_SOLUTION")
            return Solution(SolveStatus.NO_SOLUTION, stats=stats)

        incumbent_x = None
        incumbent_obj = math.inf
        had_cutoff = cutoff is not None
        if cutoff is not None:
            incumbent_obj = float(cutoff)
        seeded = self._validate_incumbent(model, incumbent, oracle, int_idx)
        if seeded is not None and seeded[1] < incumbent_obj - 1e-9:
            incumbent_x, incumbent_obj = seeded

        timeline.sample(
            time.perf_counter() - start,
            incumbent=incumbent_obj if incumbent_x is not None else None,
            bound=obj,
            label="root",
        )
        frac = _Pseudocosts(len(root_lb)).select(x, int_idx)  # integrality probe
        if frac is None:
            if obj < incumbent_obj - 1e-9:
                return self._finish(model, x, obj, stats, start, optimal=True)
            if incumbent_x is not None:
                return self._finish(
                    model, incumbent_x, incumbent_obj, stats, start, optimal=True
                )
            # Integral root at or above the cutoff: nothing strictly better.
            stats.time_seconds = time.perf_counter() - start
            timeline.close(
                stats.time_seconds, bound=obj, status="NO_SOLUTION"
            )
            return Solution(SolveStatus.NO_SOLUTION, stats=stats)

        if self.rounding_heuristic:
            rounded = self._try_rounding(oracle, x, int_idx)
            if rounded is not None and rounded[1] < incumbent_obj - 1e-9:
                incumbent_x, incumbent_obj = rounded
                timeline.sample(
                    time.perf_counter() - start,
                    incumbent=incumbent_obj,
                    bound=obj,
                    label="incumbent",
                )

        pseudo = _Pseudocosts(len(root_lb))
        dive = []  # LIFO stack: depth-first until the first incumbent
        heap = []  # best-bound min-heap of (bound, tie, _Node)
        tie = 0
        proven = True  # no unknown relaxations dropped
        timed_out = False
        cancelled = False
        dropped_bound = math.inf  # min bound over unknown-LP subtrees
        diving = self.dive_first and incumbent_x is None

        def push(node):
            nonlocal tie
            if diving:
                dive.append(node)
            else:
                tie += 1
                heapq.heappush(heap, (node.bound, tie, node))

        self._branch(push, x, obj, (), basis, pseudo, int_idx)

        def open_bound(extra=None):
            """Best bound over the open frontier (None when exhausted)."""
            bounds = [] if extra is None else [extra]
            if heap:
                bounds.append(heap[0][0])
            if dive:
                bounds.append(min(n.bound for n in dive))
            return min(bounds, default=None)

        def take_sample(label=None, extra_bound=None):
            timeline.sample(
                time.perf_counter() - start,
                incumbent=incumbent_obj if incumbent_x is not None else None,
                bound=open_bound(extra_bound),
                nodes=stats.nodes,
                label=label,
            )

        def bus_exchange(extra_bound=None):
            """Portfolio cross-seeding on the gap-sample cadence."""
            nonlocal incumbent_x, incumbent_obj, diving
            control = self.control
            if incumbent_x is not None:
                control.publish_incumbent(incumbent_x, incumbent_obj)
            shared = min(
                b
                for b in (
                    open_bound(extra_bound),
                    dropped_bound,
                    incumbent_obj,
                )
                if b is not None
            )
            if math.isfinite(shared):
                control.publish_bound(shared)
            polled = control.poll_incumbent()
            if polled is None:
                return
            values, objective = polled
            if objective >= incumbent_obj - 1e-9:
                return
            adopted = self._validate_incumbent(model, values, oracle, int_idx)
            if adopted is not None and adopted[1] < incumbent_obj - 1e-9:
                incumbent_x, incumbent_obj = adopted
                control.note_adoption()
                if diving:
                    diving = False
                    self._flush_dive(dive, push)
                take_sample(label="seed")

        while dive or heap:
            if self.control is not None and self.control.cancelled():
                cancelled = True
                timed_out = True
                break
            if self.time_limit is not None and (
                time.perf_counter() - start > self.time_limit
            ):
                timed_out = True
                break
            if stats.nodes >= self.node_limit:
                timed_out = True
                break
            node = dive.pop() if dive else heapq.heappop(heap)[2]
            if self._prune(node.bound, incumbent_obj, obj_integral):
                continue
            lb, ub = self._materialize(root_lb, root_ub, node.deltas)
            status, node_obj, node_x, node_basis = oracle.solve(
                lb, ub, warm_basis=node.basis
            )
            stats.nodes += 1
            stats.lp_solves += 1
            if stats.nodes % _GAP_SAMPLE_NODES == 0:
                take_sample(extra_bound=node.bound)
                if self.control is not None:
                    bus_exchange(extra_bound=node.bound)
            if node.basis is not None:
                stats.warm_starts += 1
            if status == "unknown":
                stats.unknown_lps += 1
                proven = False
                dropped_bound = min(dropped_bound, node.bound)
                continue
            if status != "optimal":
                continue
            pseudo.record(
                node.bvar, node.bdir, node.bfrac, node_obj - node.bound
            )
            if self._prune(node_obj, incumbent_obj, obj_integral):
                continue
            frac = pseudo.select(node_x, int_idx)
            if frac is None:
                incumbent_obj, incumbent_x = node_obj, node_x
                if diving:
                    diving = False
                    self._flush_dive(dive, push)
                take_sample(label="incumbent")
                if self.control is not None:
                    self.control.publish_incumbent(incumbent_x, incumbent_obj)
                continue
            self._branch(
                push, node_x, node_obj, node.deltas, node_basis, pseudo, int_idx,
                choice=frac,
            )

        stats.simplex_iterations = oracle.iterations
        stats.pseudocosts = pseudo.snapshot()
        if timed_out:
            open_bounds = [n.bound for n in dive]
            open_bounds.extend(entry[0] for entry in heap)
            stats.best_bound = min(open_bounds, default=incumbent_obj)
        else:
            stats.best_bound = incumbent_obj if incumbent_x is not None else None
        if self.control is not None:
            # Final cross-seed so a cancelled/exhausted lane's progress
            # still reaches the survivors (and the combined proof).
            if incumbent_x is not None:
                self.control.publish_incumbent(incumbent_x, incumbent_obj)
            if stats.best_bound is not None:
                exit_bound = min(stats.best_bound, dropped_bound)
                if math.isfinite(exit_bound):
                    self.control.publish_bound(exit_bound)
        if incumbent_x is None:
            stats.time_seconds = time.perf_counter() - start
            if timed_out or had_cutoff or not proven:
                timeline.close(
                    stats.time_seconds,
                    bound=stats.best_bound,
                    nodes=stats.nodes,
                    status="NO_SOLUTION",
                )
                return Solution(SolveStatus.NO_SOLUTION, stats=stats)
            timeline.close(
                stats.time_seconds, nodes=stats.nodes, status="INFEASIBLE"
            )
            return Solution(SolveStatus.INFEASIBLE, stats=stats)
        return self._finish(
            model,
            incumbent_x,
            incumbent_obj,
            stats,
            start,
            optimal=not timed_out and proven,
        )

    # -- search helpers ------------------------------------------------------
    def _branch(self, push, x, obj, deltas, basis, pseudo, int_idx, choice=None):
        """Create the down/up children of a solved node.

        During the dive phase the preferred child (the rounding direction
        of the fractional value) is pushed last so the LIFO pops it first.
        """
        if choice is None:
            choice = pseudo.select(x, int_idx)
        var, value = choice
        down = _Node(
            obj, deltas + ((var, True, math.floor(value)),), basis,
            var, "down", value - math.floor(value),
        )
        up = _Node(
            obj, deltas + ((var, False, math.ceil(value)),), basis,
            var, "up", value - math.floor(value),
        )
        if value - math.floor(value) >= 0.5:
            push(down)
            push(up)
        else:
            push(up)
            push(down)

    @staticmethod
    def _materialize(root_lb, root_ub, deltas):
        """Apply a node's bound deltas to fresh copies of the root bounds."""
        lb, ub = root_lb.copy(), root_ub.copy()
        for var, is_upper, value in deltas:
            if is_upper:
                ub[var] = value
            else:
                lb[var] = value
        return lb, ub

    @staticmethod
    def _flush_dive(dive, push):
        """Move the dive stack into the best-bound heap (incumbent found).

        Re-pushes through the caller's ``push`` so every heap entry gets
        a unique tie id — two entries with equal ``(bound, tie)`` would
        fall through to comparing :class:`_Node` objects, which do not
        order.
        """
        pending = list(dive)
        dive.clear()
        for node in pending:
            push(node)

    def _validate_incumbent(self, model, incumbent, oracle, int_idx):
        """Turn a caller-provided assignment into (x, obj) if feasible."""
        if incumbent is None:
            return None
        if isinstance(incumbent, dict):
            x = np.zeros(len(model.variables))
            try:
                for var in model.variables:
                    x[var.index] = float(incumbent[var])
            except KeyError:
                return None
        else:
            x = np.asarray(incumbent, dtype=float)
            if x.shape != (len(model.variables),):
                return None
        if int_idx.size:
            if np.any(np.abs(x[int_idx] - np.round(x[int_idx])) > 1e-4):
                return None
            x = x.copy()
            x[int_idx] = np.round(x[int_idx])
        if not oracle.check_point(x):
            return None
        return x, float(np.dot(oracle.arrays["c"], x))

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _objective_is_integral(arrays):
        coeffs = arrays["c"][np.abs(arrays["c"]) > 0]
        if coeffs.size == 0:
            return True
        on_integers = arrays["integrality"][np.abs(arrays["c"]) > 0]
        return bool(
            np.all(on_integers) and np.allclose(coeffs, np.round(coeffs), atol=1e-9)
        )

    @staticmethod
    def _prune(bound, incumbent_obj, obj_integral):
        if not math.isfinite(incumbent_obj):
            return False
        if obj_integral:
            return math.ceil(bound - 1e-6) >= incumbent_obj - 1e-9
        return bound >= incumbent_obj - 1e-9

    def _try_rounding(self, oracle, x, int_idx):
        """Round the relaxation; accept only a verified-feasible incumbent.

        Clip-and-round in one pass, then check feasibility through the
        oracle's prebuilt CSR blocks instead of re-multiplying the full
        row matrix.
        """
        arrays = oracle.arrays
        candidate = x.copy()
        candidate[int_idx] = np.round(candidate[int_idx])
        np.clip(candidate, arrays["lb"], arrays["ub"], out=candidate)
        if int_idx.size:
            # Clipping a rounded integer against a fractional bound could
            # de-integralize it; re-round and reject if out of bounds.
            candidate[int_idx] = np.round(candidate[int_idx])
        if not oracle.check_point(candidate):
            return None
        return candidate, float(np.dot(arrays["c"], candidate))

    def _finish(self, model, x, obj, stats, start, optimal):
        stats.time_seconds = time.perf_counter() - start
        if optimal and stats.best_bound is None and obj is not None:
            # A proven-optimal search closed the tree: the bound met the
            # incumbent, so the reported gap is exactly 0.
            stats.best_bound = float(obj)
        if stats.best_bound is not None and obj is not None and obj != 0:
            stats.gap = abs(obj - stats.best_bound) / max(1.0, abs(obj))
        status = SolveStatus.OPTIMAL if optimal else SolveStatus.FEASIBLE
        if stats.gap_timeline is not None:
            stats.gap_timeline.close(
                stats.time_seconds,
                incumbent=obj,
                bound=stats.best_bound,
                nodes=stats.nodes,
                status=status.name,
            )
        values = {}
        for var in model.variables:
            raw = float(x[var.index])
            values[var] = float(round(raw)) if var.is_integer else raw
        return Solution(status, float(obj), values, stats)
