"""Graphviz exports for CFGs, dependence graphs and schedules.

Debugging and paper-figure-style visualization: the exporters emit plain
``dot`` text (no graphviz dependency — render externally with
``dot -Tsvg``). Used by ``tia-opt --dot``.
"""

from __future__ import annotations

import io


def cfg_to_dot(fn, cfg=None, schedule=None):
    """The basic-block graph; loop back edges dashed, lengths annotated."""
    out = io.StringIO()
    out.write(f'digraph "{fn.name}" {{\n')
    out.write("  node [shape=box, fontname=monospace];\n")
    for block in fn.blocks:
        label = f"{block.name}\\nfreq={block.freq:g}"
        if schedule is not None:
            label += f"\\nlen={schedule.block_length(block.name)}"
        out.write(f'  "{block.name}" [label="{label}"];\n')
    back = cfg.back_edges if cfg is not None else set()
    for edge in fn.edges:
        style = ' [style=dashed, constraint=false]' if (edge.src, edge.dst) in back else ""
        out.write(f'  "{edge.src}" -> "{edge.dst}"{style};\n')
    out.write("}\n")
    return out.getvalue()


def ddg_to_dot(fn, ddg, max_nodes=150):
    """The data-dependence graph; edge style encodes the dependence kind."""
    styles = {
        "true": "solid",
        "anti": "dashed",
        "output": "dotted",
        "mem_true": "bold",
        "mem_anti": "dashed",
        "mem_output": "dotted",
        "call": "dotted",
    }
    nodes = [i for i in fn.all_instructions() if not i.is_nop][:max_nodes]
    node_set = set(nodes)
    out = io.StringIO()
    out.write(f'digraph "{fn.name}_ddg" {{\n')
    out.write("  rankdir=TB; node [shape=oval, fontname=monospace];\n")
    for instr in nodes:
        out.write(f'  n{instr.uid} [label="{instr.uid}: {instr.mnemonic}"];\n')
    for edge in ddg.edges:
        if edge.src not in node_set or edge.dst not in node_set:
            continue
        style = styles.get(edge.kind.value, "solid")
        out.write(
            f"  n{edge.src.uid} -> n{edge.dst.uid} "
            f'[style={style}, label="{edge.latency}"];\n'
        )
    out.write("}\n")
    return out.getvalue()


def schedule_to_dot(fn, schedule):
    """Schedule as an HTML-table-per-block graph (cycles as rows)."""
    out = io.StringIO()
    out.write(f'digraph "{fn.name}_sched" {{\n')
    out.write("  node [shape=plaintext, fontname=monospace];\n")
    for name in schedule.block_order:
        length = schedule.block_length(name)
        rows = [
            f'<tr><td align="left">{name} (len {length})</td></tr>'
        ]
        for cycle in range(1, length + 1):
            group = schedule.group(name, cycle)
            text = "; ".join(i.mnemonic for i in group) or "&middot;"
            rows.append(f'<tr><td align="left">[{cycle}] {text}</td></tr>')
        table = (
            '<<table border="1" cellborder="0" cellspacing="0">'
            + "".join(rows)
            + "</table>>"
        )
        out.write(f'  "{name}" [label={table}];\n')
    for edge in fn.edges:
        out.write(f'  "{edge.src}" -> "{edge.dst}";\n')
    out.write("}\n")
    return out.getvalue()
