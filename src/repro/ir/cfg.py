"""Control-flow analyses: dominators, postdominators, loops, DAG order.

The scheduler works on the *acyclic* block graph (back edges removed,
paper Sec. 4) and consults dominance to classify code motion as
speculative or not, and the loop forest for cyclic code motion
(Sec. 5.2). Dominators are computed with the iterative
Cooper–Harvey–Kennedy algorithm over reverse postorder; natural loops come
from dominance back edges, with DFS back edges as a fallback so that even
irreducible inputs yield an acyclic forward graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_VENTRY = "__entry__"
_VEXIT = "__exit__"


@dataclass(eq=False)
class Loop:
    """A natural loop: header, member blocks, and latch (backedge-source) blocks."""

    header: str
    blocks: set
    latches: set
    parent: "Loop | None" = None
    children: list = field(default_factory=list)

    @property
    def depth(self):
        depth, node = 1, self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self):
        return f"Loop(header={self.header}, blocks={sorted(self.blocks)})"


class CfgInfo:
    """All control-flow facts for one function, computed eagerly."""

    def __init__(self, fn):
        self.fn = fn
        self.block_names = [b.name for b in fn.blocks]
        self._succs = {name: [] for name in self.block_names}
        self._preds = {name: [] for name in self.block_names}
        for edge in fn.edges:
            self._succs[edge.src].append(edge.dst)
            self._preds[edge.dst].append(edge.src)

        self.entries = fn.entry_blocks
        self.exits = fn.exit_blocks

        self.idom = self._dominators(forward=True)
        self.ipdom = self._dominators(forward=False)
        self.back_edges = self._find_back_edges()
        self.forward_succs = {
            name: [s for s in self._succs[name] if (name, s) not in self.back_edges]
            for name in self.block_names
        }
        self.forward_preds = {name: [] for name in self.block_names}
        for src, dsts in self.forward_succs.items():
            for dst in dsts:
                self.forward_preds[dst].append(src)
        self.topo_order = self._topological_order()
        self._topo_index = {name: i for i, name in enumerate(self.topo_order)}
        self._reach = self._reachability()
        self.loops = self._build_loops()
        self._loop_by_block = {}
        for loop in sorted(self.loops, key=lambda l: l.depth):
            for block in loop.blocks:
                self._loop_by_block[block] = loop  # deepest loop wins

    # -- adjacency -------------------------------------------------------------
    def succs(self, name):
        return self._succs[name]

    def preds(self, name):
        return self._preds[name]

    # -- dominance ---------------------------------------------------------------
    def dominates(self, a, b):
        """Does block ``a`` dominate block ``b``? (reflexive)"""
        node = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def postdominates(self, a, b):
        """Does block ``a`` postdominate block ``b``? (reflexive)"""
        node = b
        while node is not None:
            if node == a:
                return True
            node = self.ipdom.get(node)
        return False

    def control_equivalent(self, a, b):
        """a dominates b and b postdominates a (or vice versa)."""
        return (self.dominates(a, b) and self.postdominates(b, a)) or (
            self.dominates(b, a) and self.postdominates(a, b)
        )

    # -- DAG structure -------------------------------------------------------------
    def reaches(self, a, b):
        """Is there a forward (acyclic) path from ``a`` to ``b``? (irreflexive)"""
        return b in self._reach[a]

    def topo_index(self, name):
        return self._topo_index[name]

    def predecessors_in_dag(self, name):
        return self.forward_preds[name]

    def successors_in_dag(self, name):
        return self.forward_succs[name]

    @property
    def dag_sinks(self):
        """Blocks without forward successors: exits plus loop latches.

        Every acyclic program path ends in one of these; they are the
        predecessors of the pseudo exit block Ω in the scheduling model —
        using only the function's return blocks would let instructions in
        latch blocks escape the assignment constraints entirely.
        """
        return [name for name in self.block_names if not self.forward_succs[name]]

    # -- loops ------------------------------------------------------------------
    def innermost_loop(self, block):
        """Deepest loop containing ``block``, or None."""
        return self._loop_by_block.get(block)

    def loop_with_header(self, header):
        for loop in self.loops:
            if loop.header == header:
                return loop
        return None

    # -- internals -----------------------------------------------------------------
    def _dominators(self, forward):
        """Iterative CHK dominators; returns idom map (roots map to None)."""
        if forward:
            roots = list(self.entries)
            succs = self._succs
            preds_of = dict(self._preds)
        else:
            roots = list(self.exits)
            succs = self._preds
            preds_of = dict(self._succs)
        if not roots:
            roots = [self.block_names[0]] if forward else [self.block_names[-1]]

        virtual = _VENTRY if forward else _VEXIT
        preds_of = {k: list(v) for k, v in preds_of.items()}
        succs = dict(succs)
        succs[virtual] = list(roots)
        for root in roots:
            preds_of.setdefault(root, []).append(virtual)
        preds_of[virtual] = []

        order = self._rpo(virtual, succs)
        index = {name: i for i, name in enumerate(order)}
        idom = {virtual: virtual}
        changed = True
        while changed:
            changed = False
            for node in order[1:]:
                processed = [
                    p for p in preds_of.get(node, []) if p in idom and p in index
                ]
                if not processed:
                    continue
                new = processed[0]
                for other in processed[1:]:
                    new = self._intersect(new, other, idom, index)
                if idom.get(node) != new:
                    idom[node] = new
                    changed = True
        result = {}
        for name in self.block_names:
            dom = idom.get(name)
            result[name] = None if dom in (virtual, None, name) else dom
        return result

    @staticmethod
    def _intersect(a, b, idom, index):
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    @staticmethod
    def _rpo(root, succs):
        seen = {root}
        order = []
        stack = [(root, iter(succs.get(root, [])))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter(succs.get(nxt, []))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def _find_back_edges(self):
        """Edges whose target dominates their source, plus DFS leftovers."""
        back = set()
        for src in self.block_names:
            for dst in self._succs[src]:
                if self.dominates(dst, src):
                    back.add((src, dst))
        # Fallback: break any remaining cycles (irreducible graphs) with DFS.
        color = {}
        for root in self.entries or self.block_names[:1]:
            stack = [(root, iter(self._succs[root]))]
            color[root] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if (node, nxt) in back:
                        continue
                    state = color.get(nxt, 0)
                    if state == 0:
                        color[nxt] = 1
                        stack.append((nxt, iter(self._succs[nxt])))
                        advanced = True
                        break
                    if state == 1:
                        back.add((node, nxt))
                if not advanced:
                    color[node] = 2
                    stack.pop()
        return back

    def _topological_order(self):
        indeg = {name: 0 for name in self.block_names}
        for src, dsts in self.forward_succs.items():
            for dst in dsts:
                indeg[dst] += 1
        ready = [name for name in self.block_names if indeg[name] == 0]
        order = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in self.forward_succs[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self.block_names):
            # Unreachable-from-entry blocks with residual cycles: append as-is.
            rest = [n for n in self.block_names if n not in set(order)]
            order.extend(rest)
        return order

    def _reachability(self):
        """reach[a] = set of blocks reachable from a by >=1 forward edge."""
        reach = {name: set() for name in self.block_names}
        for name in reversed(self.topo_order):
            for succ in self.forward_succs[name]:
                reach[name].add(succ)
                reach[name] |= reach[succ]
        return reach

    def _build_loops(self):
        by_header = {}
        for src, dst in self.back_edges:
            if not self.dominates(dst, src):
                continue  # DFS-fallback pseudo backedge: not a natural loop
            loop = by_header.setdefault(dst, Loop(dst, {dst}, set()))
            loop.latches.add(src)
            # Natural loop body: reverse reachability from the latch, stopping
            # at the header.
            work = [src]
            while work:
                node = work.pop()
                if node in loop.blocks:
                    continue
                loop.blocks.add(node)
                work.extend(self._preds[node])
        loops = list(by_header.values())
        # Nest by strict containment.
        for loop in loops:
            candidates = [
                other
                for other in loops
                if other is not loop and loop.blocks < other.blocks
            ]
            if candidates:
                loop.parent = min(candidates, key=lambda l: len(l.blocks))
                loop.parent.children.append(loop)
        return loops
