"""Parser for the TIA textual IA-64 subset.

The format mirrors what the paper's tool reads: compiler-produced assembly
with profile annotations (block execution frequencies, optional edge
probabilities) plus liveness directives describing the routine's boundary
(the paper's tool gets this from the surrounding program; our synthetic
routines declare it).

Grammar (line-oriented, ``//`` and ``#`` start comments)::

    .proc NAME
    .livein  r32, r33, ...
    .liveout r8, ...
    .block NAME freq=FLOAT [succ=B1:0.75,B2:0.25]
        [(pN)] MNEMONIC [dest, ... =] [src | imm | [rB+OFF]] , ... [key=val ...]
    .endp

Examples::

    ld8 r15 = [r14] cls=heap
    add r16 = r15, r33
    cmp.eq p6, p7 = r16, r0
    (p6) br.cond B2
    st8 [r20+8] = r16 cls=stack
    chk.s r15, recover_1
    br.ret b0
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction, MemRef
from repro.ir.registers import reg

_REG_RE = re.compile(r"^[rfpb]\d+$")
_IMM_RE = re.compile(r"^-?\d+$")
_MEM_RE = re.compile(r"^\[([rfpb]\d+)(?:\s*\+\s*(-?\d+))?\]$")
_PRED_RE = re.compile(r"^\((p\d+)\)\s+(.*)$")
_KV_RE = re.compile(r"^(\w+)=(\S+)$")


def parse_function(text):
    """Parse one ``.proc``/``.endp`` routine; returns a validated Function."""
    functions = parse_functions(text)
    if len(functions) != 1:
        raise ParseError(f"expected exactly one routine, found {len(functions)}")
    return functions[0]


def parse_functions(text):
    """Parse all routines in ``text``."""
    functions = []
    state = _ParserState()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//")[0].split("#")[0].strip()
        if not line:
            continue
        try:
            done = state.feed(line)
        except ParseError as exc:
            raise ParseError(str(exc), line=lineno) from None
        if done is not None:
            functions.append(done)
    if state.fn is not None:
        raise ParseError(f"unterminated .proc {state.fn.name}")
    return functions


class _ParserState:
    """Line-by-line parser state machine."""

    def __init__(self):
        self.fn = None
        self.block = None
        self.pending_probs = {}  # block name -> {succ: prob}

    def feed(self, line):
        """Consume one cleaned line; return a Function at ``.endp``."""
        if line.startswith(".proc"):
            return self._start_proc(line)
        if self.fn is None:
            raise ParseError(f"directive outside .proc: {line!r}")
        if line.startswith(".endp"):
            return self._finish_proc()
        if line.startswith(".block"):
            return self._start_block(line)
        if line.startswith(".livein"):
            self.fn.live_in.update(self._parse_reg_list(line[len(".livein") :]))
            return None
        if line.startswith(".liveout"):
            self.fn.live_out.update(self._parse_reg_list(line[len(".liveout") :]))
            return None
        if line.startswith("."):
            raise ParseError(f"unknown directive {line.split()[0]!r}")
        if self.block is None:
            raise ParseError("instruction outside a .block")
        self.block.instructions.append(parse_instruction(line))
        return None

    # -- directives -----------------------------------------------------------
    def _start_proc(self, line):
        if self.fn is not None:
            raise ParseError("nested .proc")
        parts = line.split()
        if len(parts) != 2:
            raise ParseError(".proc needs exactly one name")
        self.fn = Function(name=parts[1])
        self.pending_probs = {}
        return None

    def _start_block(self, line):
        parts = line.split()
        if len(parts) < 2:
            raise ParseError(".block needs a name")
        name = parts[1]
        block = BasicBlock(name=name)
        for part in parts[2:]:
            match = _KV_RE.match(part)
            if not match:
                raise ParseError(f"malformed block annotation {part!r}")
            key, value = match.groups()
            if key == "freq":
                block.freq = float(value)
            elif key == "succ":
                probs = {}
                for item in value.split(","):
                    if ":" in item:
                        succ, prob = item.split(":")
                        probs[succ] = float(prob)
                    else:
                        probs[item] = None
                self.pending_probs[name] = probs
            else:
                raise ParseError(f"unknown block annotation {key!r}")
        self.fn.add_block(block)
        self.block = block
        return None

    def _finish_proc(self):
        fn = self.fn
        self._build_edges(fn)
        fn.validate()
        self.fn = None
        self.block = None
        return fn

    @staticmethod
    def _parse_reg_list(tail):
        names = [t.strip() for t in tail.replace(",", " ").split()]
        return {reg(n) for n in names if n}

    # -- CFG construction -------------------------------------------------------
    def _build_edges(self, fn):
        """Derive edges from branch targets and fall-through layout."""
        for i, block in enumerate(fn.blocks):
            succs = []
            falls_through = True
            for instr in block.instructions:
                if not instr.is_branch:
                    continue
                if instr.op.is_return or instr.op.is_call:
                    if instr.op.is_return:
                        falls_through = False
                    continue
                if instr.target is None:
                    raise ParseError(f"branch without target in {block.name}")
                succs.append(instr.target)
                if instr.pred is None:  # unconditional: no fall-through
                    falls_through = False
            if falls_through and i + 1 < len(fn.blocks):
                succs.append(fn.blocks[i + 1].name)
            probs = self.pending_probs.get(block.name, {})
            seen = set()
            for succ in succs:
                if succ in seen:
                    continue  # parallel edges collapse
                seen.add(succ)
                fn.add_edge(block.name, succ, probs.get(succ))
            unknown = set(probs) - seen
            if unknown:
                raise ParseError(
                    f"succ= annotation on {block.name} names non-successors "
                    f"{sorted(unknown)}"
                )


def parse_instruction(line):
    """Parse one instruction line into an :class:`Instruction`."""
    pred = None
    match = _PRED_RE.match(line)
    if match:
        pred = reg(match.group(1))
        line = match.group(2).strip()

    tokens = line.split(None, 1)
    mnemonic = tokens[0]
    rest = tokens[1].strip() if len(tokens) > 1 else ""

    # Trailing key=value annotations.
    annotations = {}
    while rest:
        parts = rest.rsplit(None, 1)
        if len(parts) < 2:
            break
        match = _KV_RE.match(parts[1])
        if not match:
            break
        key, value = match.groups()
        if key in ("cls", "lat", "miss", "prob", "callee", "recovery"):
            annotations[key] = value
            rest = parts[0].strip()
        else:
            break

    instr = Instruction(
        mnemonic=mnemonic, pred=pred, annotations=annotations
    )
    _parse_operands(instr, rest)

    info = instr.op  # raises MachineError -> surfaced as-is for bad opcodes
    if info.is_branch and not (info.is_return or info.is_call):
        if instr.target is None:
            raise ParseError(f"branch {mnemonic} needs a target block")
    if "cls" in annotations and instr.mem is not None:
        instr.mem = MemRef(
            base=instr.mem.base,
            offset=instr.mem.offset,
            alias_class=annotations["cls"],
            size=instr.mem.size,
        )
    return instr


def _parse_operands(instr, rest):
    """Fill dests/srcs/mem/imms/target from the operand text."""
    if not rest:
        return
    if "=" in rest:
        left, right = rest.split("=", 1)
        dest_tokens = _split_operands(left)
        src_tokens = _split_operands(right)
    else:
        dest_tokens = []
        src_tokens = _split_operands(rest)

    for token in dest_tokens:
        mem = _MEM_RE.match(token)
        if mem:  # store address: a *read*, not a written register
            if instr.mem is not None:
                raise ParseError("more than one memory operand")
            instr.mem = MemRef(reg(mem.group(1)), int(mem.group(2) or 0))
            instr.srcs.append(instr.mem.base)
        elif _REG_RE.match(token):
            instr.dests.append(reg(token))
        else:
            raise ParseError(f"bad destination operand {token!r}")

    for token in src_tokens:
        mem = _MEM_RE.match(token)
        if mem:
            if instr.mem is not None:
                raise ParseError("more than one memory operand")
            instr.mem = MemRef(reg(mem.group(1)), int(mem.group(2) or 0))
            instr.srcs.append(instr.mem.base)
        elif _REG_RE.match(token):
            instr.srcs.append(reg(token))
        elif _IMM_RE.match(token):
            instr.imms.append(int(token))
        elif re.match(r"^\w[\w.$]*$", token):
            if instr.target is not None:
                raise ParseError(f"two symbolic operands on {instr.mnemonic}")
            instr.target = token
        else:
            raise ParseError(f"bad source operand {token!r}")


def _split_operands(text):
    return [t.strip() for t in text.split(",") if t.strip()]
