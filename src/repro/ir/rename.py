"""Register renaming: strip false dependences before scheduling.

The paper's tool "performs register renaming to remove all false
dependences which would otherwise restrict code motion" (Sec. 6.1). We
build du-webs from the reaching-definitions analysis and give every web a
fresh architectural register, except webs pinned to their name because

* one of their uses can also read the routine-live-in value (renaming
  would cut that path),
* one of their definitions reaches a routine exit where the register is
  live-out, or
* the register is a branch register (ABI-visible) — r0/p0 never appear
  as definitions in the first place.

Renaming stops gracefully when a bank's 128/64 registers are exhausted —
remaining webs keep their names (and their false dependences), mirroring
the real machine constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instruction import MemRef
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.ir.registers import RegisterBank, fresh_register_allocator


@dataclass
class RenameStats:
    """What the pass did (exposed for tests and reports)."""

    webs: int = 0
    renamed: int = 0
    pinned: int = 0
    exhausted: int = 0


class _UnionFind:
    def __init__(self):
        self.parent = {}

    def find(self, item):
        parent = self.parent.setdefault(item, item)
        while parent != item:
            self.parent[item] = self.parent.setdefault(parent, parent)
            item = self.parent[item]
            parent = self.parent.setdefault(item, item)
        return item

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def rename_registers(fn, liveness=None):
    """Rename du-webs in place; returns :class:`RenameStats`.

    ``liveness`` may be passed to reuse an existing analysis. All analyses
    (liveness, DDG) are stale after this pass and must be recomputed — the
    scheduler driver does exactly that.
    """
    if liveness is None:
        liveness = compute_liveness(fn)

    uf = _UnionFind()
    all_instructions = list(fn.all_instructions())

    for instr in all_instructions:
        for dst in instr.regs_written():
            uf.find((instr, dst))

    # A use joins all definitions that may reach it into one web.
    use_webs = []  # (instr, reg, concrete defs, saw entry value)
    for instr in all_instructions:
        for regname, defs in liveness.reaching_uses.get(instr, {}).items():
            concrete = [d for d in defs if d is not LivenessInfo.ENTRY_DEF]
            saw_entry = len(concrete) != len(defs)
            for other in concrete[1:]:
                uf.union((concrete[0], regname), (other, regname))
            use_webs.append((instr, regname, concrete, saw_entry))

    webs = {}
    for instr in all_instructions:
        for dst in instr.regs_written():
            root = uf.find((instr, dst))
            web = webs.setdefault(
                root, {"reg": dst, "defs": [], "uses": [], "pinned": False}
            )
            web["defs"].append(instr)
    for instr, regname, concrete, saw_entry in use_webs:
        if not concrete:
            continue
        web = webs[uf.find((concrete[0], regname))]
        web["uses"].append(instr)
        if saw_entry:
            web["pinned"] = True

    for definition, regname in liveness.defs_reaching_exit:
        root = uf.find((definition, regname))
        if root in webs:
            webs[root]["pinned"] = True

    stats = RenameStats(webs=len(webs))
    used = {r for i in all_instructions for r in (i.regs_read() + i.regs_written())}
    used |= fn.live_in | fn.live_out
    allocators = {
        bank: fresh_register_allocator(used, bank)
        for bank in (RegisterBank.GR, RegisterBank.FR, RegisterBank.PR)
    }

    for web in webs.values():
        old = web["reg"]
        if web["pinned"] or old.bank is RegisterBank.BR:
            stats.pinned += 1
            continue
        if len(web["defs"]) == 1 and not _has_false_conflict(fn, old):
            # Unique name already: renaming would be a no-op churn.
            stats.pinned += 1
            continue
        allocator = allocators.get(old.bank)
        if allocator is None:
            stats.pinned += 1
            continue
        try:
            new = next(allocator)
        except StopIteration:
            stats.exhausted += 1
            continue
        for instr in web["defs"]:
            instr.dests = [new if d == old else d for d in instr.dests]
        for instr in web["uses"]:
            _rewrite_use(instr, old, new)
        stats.renamed += 1
    return stats


def _has_false_conflict(fn, regname):
    """Is ``regname`` defined more than once anywhere in the routine?"""
    count = 0
    for instr in fn.all_instructions():
        if regname in instr.regs_written():
            count += 1
            if count > 1:
                return True
    return False


def _rewrite_use(instr, old, new):
    instr.srcs = [new if s == old else s for s in instr.srcs]
    if instr.pred == old:
        instr.pred = new
    if instr.mem is not None and instr.mem.base == old:
        instr.mem = MemRef(
            base=new,
            offset=instr.mem.offset,
            alias_class=instr.mem.alias_class,
            size=instr.mem.size,
        )
