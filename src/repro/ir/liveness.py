"""Liveness and reaching definitions.

Both analyses run at instruction granularity over the full (cyclic) CFG —
correctness here must not depend on the scheduling region being acyclic.
Predicated definitions are treated as *conditional*: they do not kill the
incoming value (the predicate may be false), which is the standard safe
treatment for IA-64 predication.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_ENTRY_DEF = "__livein__"  # pseudo-definition for values live into the routine


@dataclass
class LivenessInfo:
    """Per-block live sets plus instruction-level reaching definitions.

    ``reaching_uses`` maps each instruction to, per source register, the
    set of definitions (Instruction objects or the :data:`ENTRY_DEF`
    sentinel) that may reach that use.
    """

    live_in: dict = field(default_factory=dict)  # block name -> set[Register]
    live_out: dict = field(default_factory=dict)
    reaching_uses: dict = field(default_factory=dict)  # Instruction -> {reg: set}
    defs_reaching_exit: set = field(default_factory=set)  # (Instruction, reg) pairs

    ENTRY_DEF = _ENTRY_DEF


def compute_liveness(fn):
    """Run both analyses; returns a :class:`LivenessInfo`."""
    block_uses, block_defs = {}, {}
    for block in fn.blocks:
        uses, defs = set(), set()
        for instr in block.instructions:
            for src in instr.regs_read():
                if src not in defs:
                    uses.add(src)
            for dst in instr.regs_written():
                if instr.pred is None:  # predicated defs are conditional
                    defs.add(dst)
        block_uses[block.name] = uses
        block_defs[block.name] = defs

    info = LivenessInfo()
    live_in = {b.name: set() for b in fn.blocks}
    live_out = {b.name: set() for b in fn.blocks}
    exit_names = set(fn.exit_blocks)
    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            name = block.name
            out = set()
            for succ in fn.successors(name):
                out |= live_in[succ]
            if name in exit_names:
                out |= fn.live_out
            new_in = block_uses[name] | (out - block_defs[name])
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    info.live_in = live_in
    info.live_out = live_out

    _reaching_definitions(fn, info)
    return info


def _reaching_definitions(fn, info):
    """Instruction-level reaching defs (may-reach, predication-aware)."""
    # Dataflow value: per register, set of candidate defining instructions.
    entry_names = set(fn.entry_blocks)
    exit_names = set(fn.exit_blocks)
    in_sets = {b.name: {} for b in fn.blocks}
    out_sets = {b.name: {} for b in fn.blocks}

    def transfer(block, reach):
        reach = {r: set(s) for r, s in reach.items()}
        for instr in block.instructions:
            for dst in instr.regs_written():
                if instr.pred is None:
                    reach[dst] = {instr}
                else:
                    reach.setdefault(dst, set()).add(instr)
        return reach

    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            name = block.name
            merged = {}
            if name in entry_names:
                for live in fn.live_in:
                    merged.setdefault(live, set()).add(_ENTRY_DEF)
            for pred in fn.predecessors(name):
                for regname, defs in out_sets[pred].items():
                    merged.setdefault(regname, set()).update(defs)
            if merged != in_sets[name]:
                in_sets[name] = merged
                changed = True
            new_out = transfer(block, merged)
            if new_out != out_sets[name]:
                out_sets[name] = new_out
                changed = True

    # Per-use resolution (second forward pass inside each block).
    for block in fn.blocks:
        reach = {r: set(s) for r, s in in_sets[block.name].items()}
        for instr in block.instructions:
            use_map = {}
            for src in instr.regs_read():
                use_map[src] = set(reach.get(src, set()))
            info.reaching_uses[instr] = use_map
            for dst in instr.regs_written():
                if instr.pred is None:
                    reach[dst] = {instr}
                else:
                    reach.setdefault(dst, set()).add(instr)
        if block.name in exit_names:
            for regname in fn.live_out:
                for definition in reach.get(regname, set()):
                    if definition is not _ENTRY_DEF:
                        info.defs_reaching_exit.add((definition, regname))
