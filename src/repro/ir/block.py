"""Basic blocks."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(eq=False)
class BasicBlock:
    """A straight-line instruction sequence with one entry and one exit.

    ``freq`` is the profile execution frequency used by the objective
    function (7); it is read from the ``freq=`` annotation the workload
    generator (standing in for Intel's ``-prof_use`` output) attaches to
    each block.
    """

    name: str
    instructions: list = field(default_factory=list)
    freq: float = 1.0

    @property
    def terminator(self):
        """The final branch, if the block ends in one."""
        if self.instructions and self.instructions[-1].is_branch:
            return self.instructions[-1]
        return None

    @property
    def branches(self):
        return [i for i in self.instructions if i.is_branch]

    @property
    def non_branch_instructions(self):
        return [i for i in self.instructions if not i.is_branch]

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self):
        return len(self.instructions)

    def __repr__(self):
        return f"BasicBlock({self.name}, {len(self.instructions)} instrs, freq={self.freq:g})"

    def __hash__(self):
        return id(self)
