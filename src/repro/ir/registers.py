"""IA-64 register model.

Four architectural banks matter to the scheduler: general registers
``r0-r127``, floating-point ``f0-f127``, predicates ``p0-p63`` and branch
registers ``b0-b7``. Two registers have hardwired semantics the analyses
must know: ``r0`` always reads 0 (writes are illegal) and ``p0`` always
reads true — instructions predicated on ``p0`` are unconditional, and
compares targeting ``p0`` discard that result.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError


class RegisterBank(enum.Enum):
    """Architectural register file."""

    GR = "r"
    FR = "f"
    PR = "p"
    BR = "b"

    @property
    def size(self):
        return {"r": 128, "f": 128, "p": 64, "b": 8}[self.value]

    def __lt__(self, other):
        """Stable bank order so mixed register sets sort deterministically."""
        if not isinstance(other, RegisterBank):
            return NotImplemented
        return self.value < other.value


@dataclass(frozen=True, order=True)
class Register:
    """One architectural register, interned by (bank, index)."""

    bank: RegisterBank
    index: int

    def __post_init__(self):
        if not 0 <= self.index < self.bank.size:
            raise ParseError(
                f"register {self.bank.value}{self.index} out of range "
                f"(bank size {self.bank.size})"
            )

    @property
    def name(self):
        return f"{self.bank.value}{self.index}"

    @property
    def is_zero(self):
        """r0 — reads as constant zero; never a true dependence source."""
        return self.bank is RegisterBank.GR and self.index == 0

    @property
    def is_true_predicate(self):
        """p0 — reads as constant true."""
        return self.bank is RegisterBank.PR and self.index == 0

    @property
    def is_constant(self):
        return self.is_zero or self.is_true_predicate

    def __repr__(self):
        return self.name


_CACHE = {}


def reg(name):
    """Parse ``"r13"``/``"f6"``/``"p7"``/``"b0"`` into a Register (interned)."""
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    if not name or name[0] not in "rfpb" or not name[1:].isdigit():
        raise ParseError(f"malformed register name {name!r}")
    bank = {
        "r": RegisterBank.GR,
        "f": RegisterBank.FR,
        "p": RegisterBank.PR,
        "b": RegisterBank.BR,
    }[name[0]]
    register = Register(bank, int(name[1:]))
    _CACHE[name] = register
    return register


def fresh_register_allocator(used, bank=RegisterBank.GR):
    """Yield unused registers of ``bank``, skipping those in ``used``.

    Used by the renaming pass; raises ``ParseError``-free StopIteration
    exhaustion is translated by the caller into "skip renaming this web"
    (the paper's tool is similarly bounded by the 128-register file).
    """
    taken = {r.index for r in used if r.bank is bank}
    for index in range(1, bank.size):
        if index not in taken:
            yield Register(bank, index)
