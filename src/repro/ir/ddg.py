"""Global data-dependence graph construction (the paper's G_D).

Edge kinds and latencies follow Sec. 4 of the paper:

* true register dependences carry the producer's latency (with the
  Itanium special case compare → dependent branch = 0 cycles, which is
  why a compare and its branch may share an instruction group);
* anti and output register dependences have latency 0 and 1 respectively
  (two writes to one register may not share a group);
* memory ordering edges (st→ld, ld→st, st→st) have latency 0 — IA-64
  allows them *inside* a group, where slot order must be preserved;
* calls order against all memory operations and other calls.

Cross-block edges are added along possible forward (acyclic) paths; the
in-body anti edges this creates are exactly what keeps loop-carried
values correct when blocks of a loop are rescheduled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.alias import data_spec_candidate, must_order
from repro.ir.liveness import LivenessInfo


class DepKind(enum.Enum):
    TRUE = "true"
    ANTI = "anti"
    OUTPUT = "output"
    MEM_TRUE = "mem_true"  # store -> load
    MEM_ANTI = "mem_anti"  # load -> store
    MEM_OUTPUT = "mem_output"  # store -> store
    CALL = "call"  # ordering against calls

    @property
    def is_false_dep(self):
        return self in (DepKind.ANTI, DepKind.OUTPUT)

    @property
    def is_memory(self):
        return self in (DepKind.MEM_TRUE, DepKind.MEM_ANTI, DepKind.MEM_OUTPUT)


@dataclass(frozen=True)
class DepEdge:
    """One dependence: ``src`` must precede ``dst`` by ``latency`` cycles."""

    src: object  # Instruction
    dst: object  # Instruction
    kind: DepKind
    latency: int
    reg: object = None  # Register for register deps
    data_speculable: bool = False  # ANSI-distinct memory pair (ld.a candidate)

    def __repr__(self):
        return (
            f"DepEdge({self.src.uid}->{self.dst.uid}, {self.kind.value}, "
            f"lat={self.latency})"
        )


@dataclass
class DepGraph:
    """Dependence edges plus adjacency indexes."""

    edges: list = field(default_factory=list)
    _out: dict = field(default_factory=dict)
    _in: dict = field(default_factory=dict)

    def add(self, edge):
        key = (edge.src, edge.dst, edge.kind, edge.reg)
        if key in self._seen:
            return
        self._seen.add(key)
        self.edges.append(edge)
        self._out.setdefault(edge.src, []).append(edge)
        self._in.setdefault(edge.dst, []).append(edge)

    def __post_init__(self):
        self._seen = set()

    def succs(self, instr):
        return self._out.get(instr, [])

    def preds(self, instr):
        return self._in.get(instr, [])

    def __len__(self):
        return len(self.edges)

    def has_path(self, src, dst):
        """Transitive dependence test (DFS)."""
        seen = set()
        stack = [src]
        while stack:
            node = stack.pop()
            for edge in self.succs(node):
                if edge.dst is dst:
                    return True
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
        return False


def build_dependence_graph(fn, cfg, liveness):
    """Build the global DDG for the whole function region."""
    graph = DepGraph()
    positions = {}
    for block in fn.blocks:
        for idx, instr in enumerate(block.instructions):
            positions[instr] = (block.name, idx)

    def path_ordered(a, b):
        """Can ``a`` execute before ``b`` on some forward path?"""
        block_a, idx_a = positions[a]
        block_b, idx_b = positions[b]
        if block_a == block_b:
            return idx_a < idx_b
        return cfg.reaches(block_a, block_b)

    _add_true_edges(fn, graph, liveness, positions, path_ordered, cfg)
    _add_false_edges(fn, graph, positions, path_ordered)
    _add_memory_edges(fn, graph, path_ordered)
    _add_call_edges(fn, graph, path_ordered)
    return graph


def _escapes_loop(cfg, def_block, use_block):
    """Is the use outside some loop containing the definition?"""
    loop = cfg.innermost_loop(def_block)
    while loop is not None:
        if use_block not in loop.blocks:
            return True
        loop = loop.parent
    return False


def _true_latency(producer, consumer, regname):
    """Latency of a true dependence, with the cmp→branch special case."""
    if producer.op.is_compare and consumer.is_branch:
        return 0
    return producer.latency


def _add_true_edges(fn, graph, liveness, positions, path_ordered, cfg):
    for block in fn.blocks:
        for instr in block.instructions:
            use_map = liveness.reaching_uses.get(instr, {})
            for regname, defs in use_map.items():
                for definition in defs:
                    if definition is LivenessInfo.ENTRY_DEF:
                        continue
                    if definition is instr:
                        continue  # self-loop via a cyclic path: not in-region
                    if definition not in positions:
                        continue
                    if not path_ordered(definition, instr):
                        # The definition reaches only through a back edge.
                        # Genuinely loop-carried (use inside the same loop):
                        # skip — the same-iteration protection is the anti
                        # dependence use→def added below. But when the use
                        # is *outside* some loop containing the definition,
                        # the value escapes the loop and the ordering is a
                        # real program-order dependence that must survive
                        # (e.g. a post-loop read of the final induction
                        # value must not hoist above the loop).
                        def_block = positions[definition][0]
                        use_block = positions[instr][0]
                        if not _escapes_loop(cfg, def_block, use_block):
                            continue
                    graph.add(
                        DepEdge(
                            definition,
                            instr,
                            DepKind.TRUE,
                            _true_latency(definition, instr, regname),
                            reg=regname,
                        )
                    )


def _add_false_edges(fn, graph, positions, path_ordered):
    defs_by_reg, uses_by_reg = {}, {}
    for block in fn.blocks:
        for instr in block.instructions:
            for dst in instr.regs_written():
                defs_by_reg.setdefault(dst, []).append(instr)
            for src in instr.regs_read():
                uses_by_reg.setdefault(src, []).append(instr)

    for regname, defs in defs_by_reg.items():
        # Output deps: order any two defs that can share a path.
        for i, d1 in enumerate(defs):
            for d2 in defs[i + 1 :]:
                if d1 is d2:
                    continue
                if path_ordered(d1, d2):
                    graph.add(DepEdge(d1, d2, DepKind.OUTPUT, 1, reg=regname))
                elif path_ordered(d2, d1):
                    graph.add(DepEdge(d2, d1, DepKind.OUTPUT, 1, reg=regname))
        # Anti deps: a use must not be overtaken by a later def.
        for use in uses_by_reg.get(regname, []):
            for definition in defs:
                if definition is use:
                    continue
                if path_ordered(use, definition):
                    graph.add(
                        DepEdge(use, definition, DepKind.ANTI, 0, reg=regname)
                    )


def _add_memory_edges(fn, graph, path_ordered):
    memory_ops = [
        i
        for i in fn.all_instructions()
        if (i.is_load or i.is_store) and i.mem is not None
    ]
    for i, op_a in enumerate(memory_ops):
        for op_b in memory_ops[i + 1 :]:
            if not (op_a.is_store or op_b.is_store):
                continue  # two loads never conflict
            first, second = None, None
            if path_ordered(op_a, op_b):
                first, second = op_a, op_b
            elif path_ordered(op_b, op_a):
                first, second = op_b, op_a
            if first is None:
                continue
            if not must_order(first.mem, second.mem):
                continue
            if first.is_store and second.is_store:
                kind = DepKind.MEM_OUTPUT
            elif first.is_store:
                kind = DepKind.MEM_TRUE
            else:
                kind = DepKind.MEM_ANTI
            graph.add(
                DepEdge(
                    first,
                    second,
                    kind,
                    0,
                    data_speculable=(
                        kind is DepKind.MEM_TRUE
                        and data_spec_candidate(first.mem, second.mem)
                    ),
                )
            )


def _add_call_edges(fn, graph, path_ordered):
    calls = [i for i in fn.all_instructions() if i.is_call]
    if not calls:
        return
    barriers = [
        i
        for i in fn.all_instructions()
        if i.is_load or i.is_store or i.is_call
    ]
    for call in calls:
        for other in barriers:
            if other is call:
                continue
            if path_ordered(other, call):
                graph.add(DepEdge(other, call, DepKind.CALL, 0))
            elif path_ordered(call, other):
                graph.add(DepEdge(call, other, DepKind.CALL, 0))
    # Calls also order among themselves via the barriers list above.
