"""Formatting Functions/Instructions back to TIA assembly text.

Round-tripping through :func:`parse_function` is covered by property tests;
the printer is also what the postpass driver uses to emit its optimized
output (paper Sec. 6.1: "a bundler ... generates the final assembly
output").
"""

from __future__ import annotations

from repro.ir.registers import Register


def format_instruction(instr):
    """One-line TIA text for an instruction."""
    parts = []
    if instr.pred is not None:
        parts.append(f"({instr.pred.name})")
    parts.append(instr.mnemonic)

    operand_text = _operands_text(instr)
    if operand_text:
        parts.append(operand_text)
    for key, value in sorted(instr.annotations.items()):
        parts.append(f"{key}={value}")
    return " ".join(parts)


def _operands_text(instr):
    mem_text = None
    if instr.mem is not None:
        off = f"+{instr.mem.offset}" if instr.mem.offset else ""
        mem_text = f"[{instr.mem.base.name}{off}]"

    srcs = []
    mem_base_pending = instr.mem is not None
    for src in instr.srcs:
        if (
            mem_base_pending
            and isinstance(src, Register)
            and src == instr.mem.base
        ):
            # The address base is rendered as the memory operand itself.
            srcs.append(mem_text)
            mem_base_pending = False
        else:
            srcs.append(src.name)
    srcs.extend(str(imm) for imm in instr.imms)
    if instr.target is not None:
        srcs.append(instr.target)

    if instr.is_store:
        # st8 [base] = value : memory operand belongs on the left.
        left = [mem_text]
        right = [s for s in srcs if s != mem_text]
        return f"{', '.join(left)} = {', '.join(right)}" if right else mem_text
    dests = [d.name for d in instr.dests]
    if dests and srcs:
        return f"{', '.join(dests)} = {', '.join(srcs)}"
    if dests:
        return ", ".join(dests)
    return ", ".join(srcs)


def format_function(fn):
    """Full TIA text for a routine."""
    lines = [f".proc {fn.name}"]
    if fn.live_in:
        lines.append(".livein " + ", ".join(r.name for r in sorted(fn.live_in)))
    if fn.live_out:
        lines.append(".liveout " + ", ".join(r.name for r in sorted(fn.live_out)))
    for block in fn.blocks:
        probs = {
            e.dst: e.prob for e in fn.out_edges(block.name) if e.prob is not None
        }
        header = f".block {block.name} freq={block.freq:g}"
        if probs:
            header += " succ=" + ",".join(f"{d}:{p:g}" for d, p in probs.items())
        lines.append(header)
        for instr in block.instructions:
            lines.append("    " + format_instruction(instr))
    lines.append(".endp")
    return "\n".join(lines) + "\n"


def format_schedule(schedule, fn=None):
    """Readable cycle-by-cycle dump of a Schedule (for examples/debugging)."""
    lines = []
    for block_name in schedule.block_order:
        cycles = schedule.cycles_of(block_name)
        freq = f" freq={fn.block(block_name).freq:g}" if fn is not None else ""
        lines.append(f"{block_name}: length {schedule.block_length(block_name)}{freq}")
        for cycle in sorted(cycles):
            text = "; ".join(format_instruction(i) for i in cycles[cycle])
            lines.append(f"  [{cycle}] {text}")
    return "\n".join(lines)
