"""Memory disambiguation.

The postpass setting gives no high-level alias information (paper
Sec. 6.1), so the default answer is "may alias". Two refinements mirror
the paper's policy:

* references whose ``cls=`` annotations differ are *independent by ANSI
  aliasing rules* — the paper admits data speculation into the ILP exactly
  for such pairs;
* references off the same base register with non-overlapping constant
  offsets cannot alias (base unchanged between the two references is the
  caller's responsibility; the dependence builder only asks about pairs
  where that holds or conservatively treats the base as clobbered).
"""

from __future__ import annotations

import enum


class AliasVerdict(enum.Enum):
    """Three-valued disambiguation answer."""

    NO = "no"  # provably disjoint
    MAY = "may"  # unknown: conservative dependence required
    ANSI_DISTINCT = "ansi"  # disjoint under ANSI rules: data-spec candidate


def classify_alias(ref_a, ref_b):
    """Disambiguate two :class:`~repro.ir.instruction.MemRef` operands."""
    if ref_a is None or ref_b is None:
        return AliasVerdict.MAY
    if ref_a.base == ref_b.base:
        # Same base: constant offsets decide exactly.
        lo_a, hi_a = ref_a.offset, ref_a.offset + ref_a.size
        lo_b, hi_b = ref_b.offset, ref_b.offset + ref_b.size
        if hi_a <= lo_b or hi_b <= lo_a:
            return AliasVerdict.NO
        return AliasVerdict.MAY
    if (
        ref_a.alias_class is not None
        and ref_b.alias_class is not None
        and ref_a.alias_class != ref_b.alias_class
    ):
        return AliasVerdict.ANSI_DISTINCT
    return AliasVerdict.MAY


def must_order(ref_a, ref_b):
    """Conservative dependence test: order unless provably disjoint.

    ANSI-distinct pairs still get a dependence edge — the postpass cannot
    *prove* disjointness, it can only justify breaking the edge through
    data speculation (``ld.a``/``chk.a``) where recovery exists. This
    matches the paper's policy exactly.
    """
    return classify_alias(ref_a, ref_b) is not AliasVerdict.NO


def data_spec_candidate(ref_a, ref_b):
    """Pair eligible for an ``ld.a``/``chk.a`` alternative in the ILP."""
    return classify_alias(ref_a, ref_b) is AliasVerdict.ANSI_DISTINCT
