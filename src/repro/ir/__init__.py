"""Program representation and analysis.

The postpass optimizer consumes assembly text in "TIA" form — a textual
IA-64 subset with block/frequency annotations mirroring what Intel's
compiler emits with ``-prof_use`` (paper Sec. 6.1). This package parses it
into :class:`~repro.ir.function.Function` objects and provides the
analyses the scheduler requires:

* control flow: dominators, postdominators, natural loops
  (:mod:`repro.ir.cfg`),
* liveness and def-use webs (:mod:`repro.ir.liveness`),
* the global data-dependence graph with true/anti/output/memory edges
  and IA-64 latency rules (:mod:`repro.ir.ddg`),
* register renaming that strips false dependences before scheduling
  (:mod:`repro.ir.rename`), and
* the conservative alias oracle with ANSI-style class annotations
  (:mod:`repro.ir.alias`).
"""

from repro.ir.registers import Register, RegisterBank, reg
from repro.ir.instruction import Instruction, MemRef
from repro.ir.block import BasicBlock
from repro.ir.function import Function, Edge
from repro.ir.parser import parse_function
from repro.ir.printer import format_function, format_instruction
from repro.ir.cfg import CfgInfo, Loop
from repro.ir.ddg import DepGraph, DepEdge, DepKind, build_dependence_graph
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.ir.rename import rename_registers
from repro.ir.interp import ExecutionResult, Interpreter, initial_registers

__all__ = [
    "Register",
    "RegisterBank",
    "reg",
    "Instruction",
    "MemRef",
    "BasicBlock",
    "Function",
    "Edge",
    "parse_function",
    "format_function",
    "format_instruction",
    "CfgInfo",
    "Loop",
    "DepGraph",
    "DepEdge",
    "DepKind",
    "build_dependence_graph",
    "LivenessInfo",
    "compute_liveness",
    "rename_registers",
    "Interpreter",
    "ExecutionResult",
    "initial_registers",
]
