"""Instructions and memory references."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.machine.opcodes import lookup_opcode
from repro.ir.registers import Register


@dataclass(frozen=True)
class MemRef:
    """A memory operand ``[base + offset]`` with an optional alias class.

    ``alias_class`` carries the ANSI-aliasing annotation (``cls=...`` in the
    assembly): two references with *different* classes are disjoint by
    language rules, which is exactly the situation where the paper admits a
    data-speculation alternative into the ILP (Sec. 6.1). ``None`` means
    "unknown", which aliases everything.
    """

    base: Register
    offset: int = 0
    alias_class: str | None = None
    size: int = 8

    def __repr__(self):
        cls = f" cls={self.alias_class}" if self.alias_class else ""
        off = f"+{self.offset}" if self.offset else ""
        return f"[{self.base}{off}]{cls}"


_instr_ids = itertools.count()


@dataclass(eq=False)
class Instruction:
    """One IA-64 instruction.

    ``dests``/``srcs`` list the *register* operands; loads and stores also
    carry a :class:`MemRef` (whose base register is additionally in
    ``srcs``). ``pred`` is the qualifying predicate or ``None`` for an
    unconditional instruction. ``target`` names the branch-target block.

    Instructions compare by identity: the scheduler may create several
    *copies* (compensation code) of the same original instruction, which
    are distinct objects sharing ``origin``.
    """

    mnemonic: str
    dests: list = field(default_factory=list)
    srcs: list = field(default_factory=list)
    mem: MemRef | None = None
    pred: Register | None = None
    target: str | None = None
    imms: list = field(default_factory=list)
    annotations: dict = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_instr_ids))
    origin: "Instruction | None" = None

    # -- opcode properties ---------------------------------------------------
    @property
    def op(self):
        return lookup_opcode(self.mnemonic)

    @property
    def unit(self):
        return self.op.unit

    @property
    def latency(self):
        override = self.annotations.get("lat")
        return int(override) if override is not None else self.op.latency

    @property
    def is_load(self):
        return self.op.is_load

    @property
    def is_store(self):
        return self.op.is_store

    @property
    def is_branch(self):
        return self.op.is_branch

    @property
    def is_call(self):
        return self.op.is_call

    @property
    def is_nop(self):
        return self.op.is_nop

    @property
    def is_check(self):
        return self.op.is_check

    # -- dataflow ----------------------------------------------------------
    def regs_read(self):
        """Registers read, including the qualifying predicate and address base."""
        read = [s for s in self.srcs if isinstance(s, Register) and not s.is_constant]
        if self.pred is not None and not self.pred.is_constant:
            read.append(self.pred)
        return read

    def regs_written(self):
        """Registers written (p0/r0 writes are architecturally discarded)."""
        return [d for d in self.dests if not d.is_constant]

    # -- semantic predicates used by the scheduler ----------------------------
    @property
    def may_trap(self):
        return self.op.may_trap

    @property
    def multiply_executable(self):
        """Safe to execute repeatedly with unchanged operands (paper 5.2).

        False when a destination register also appears as a source (e.g.
        ``add r1 = r1, r2``) or for post-increment addressing, branches and
        stores.
        """
        if not self.op.multiply_executable:
            return False
        if self.is_store:
            return False
        written = set(self.regs_written())
        return not any(s in written for s in self.regs_read())

    @property
    def root_origin(self):
        node = self
        while node.origin is not None:
            node = node.origin
        return node

    def copy(self, **overrides):
        """A fresh Instruction sharing this one's fields (new uid).

        The copy records this instruction as its ``origin`` unless an
        explicit origin override is given.
        """
        fields = dict(
            mnemonic=self.mnemonic,
            dests=list(self.dests),
            srcs=list(self.srcs),
            mem=self.mem,
            pred=self.pred,
            target=self.target,
            imms=list(self.imms),
            annotations=dict(self.annotations),
            origin=self,
        )
        fields.update(overrides)
        return Instruction(**fields)

    def __repr__(self):
        from repro.ir.printer import format_instruction

        return f"<{self.uid}: {format_instruction(self)}>"

    def __hash__(self):
        return id(self)
