"""Concrete interpreter for TIA programs and schedules.

The path-based verifier proves structural properties; this interpreter
proves *semantic* ones: it executes a routine (or a scheduled version of
it, including speculative and compensation copies) over concrete 64-bit
values and a byte-addressed memory, so the test suite can check that the
optimizer preserved input/output behaviour — differential testing of
every transformation at once.

Two deliberate design choices make this both simple and rigorous:

* **Uninterpreted-function semantics.** Opcodes whose exact IA-64
  semantics do not matter for scheduling correctness (shifts, extracts,
  multimedia ops, ...) compute a *deterministic hash* of their mnemonic
  family and source values. Both the original program and any correct
  reschedule then compute bit-identical results — while any dependence
  violation (wrong value arriving at an operand) changes the hash chain
  and is caught. Arithmetic that drives control flow (``add``/``adds``/
  ``sub``/``cmp``/``tbit``/``mov``) is interpreted for real so loops
  terminate the same way they would on hardware.
* **Speculation-aware execution.** ``ld.s``/``ld.a`` read memory like
  plain loads (interpreted execution never faults, matching the paper's
  observation that checks fire in <0.001 % of cases); ``chk``s are
  no-ops; predicated instructions are skipped when their guard is false.

Executions are bounded by a block-transition budget so both sides of a
differential comparison see the same number of iterations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.ir.registers import Register, RegisterBank, reg

_MASK = (1 << 64) - 1


class InterpreterError(ReproError):
    """Executable semantics violated (missing block, step overrun...)."""


@dataclass
class ExecutionResult:
    """Final machine state plus the taken block trace."""

    registers: dict
    memory: dict
    block_trace: list
    instructions_executed: int
    returned: bool
    store_log: list = field(default_factory=list)

    def register(self, name):
        return self.registers.get(reg(name), 0)

    def live_out_state(self, fn):
        return {r: self.registers.get(r, 0) for r in sorted(fn.live_out)}

    def store_sequences(self):
        """Per-address sequences of stored values, in execution order.

        Only populated when the interpreter ran with
        ``record_stores=True``. Grouping by address makes the comparison
        reordering-tolerant: a legal schedule may interleave independent
        stores differently, but the value history *at each address* must
        match — a strictly stronger check than comparing final memory,
        which cannot see an overwritten wrong value.
        """
        sequences = {}
        for address, value in self.store_log:
            sequences.setdefault(address, []).append(value)
        return sequences


def _hash64(*parts):
    digest = hashlib.blake2s(
        "\x1f".join(str(p) for p in parts).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def initial_registers(fn, seed=0):
    """Deterministic input values for the routine's live-in registers."""
    registers = {}
    for register in sorted(fn.live_in):
        if register.bank is RegisterBank.PR:
            registers[register] = _hash64("in", seed, register.name) & 1
        else:
            registers[register] = _hash64("in", seed, register.name)
    return registers


class _Memory:
    """Sparse 8-byte-granular memory with deterministic cold contents.

    Only *written* cells are recorded: loads of untouched addresses
    return a deterministic cold value without materializing state, so a
    speculative extra load (ld.s on a path that originally skipped it)
    leaves the observable memory image unchanged — as on hardware.
    """

    def __init__(self, seed=0, record_stores=False):
        self.seed = seed
        self.cells = {}
        self.log = [] if record_stores else None

    def load(self, address):
        address &= _MASK & ~0x7
        if address in self.cells:
            return self.cells[address]
        return _hash64("mem", self.seed, address)

    def store(self, address, value):
        address &= _MASK & ~0x7
        value &= _MASK
        self.cells[address] = value
        if self.log is not None:
            self.log.append((address, value))


class Interpreter:
    """Executes Functions and Schedules over concrete state."""

    def __init__(self, max_blocks=4000, max_instructions=400000,
                 record_stores=False):
        self.max_blocks = max_blocks
        self.max_instructions = max_instructions
        self.record_stores = record_stores

    # -- entry points ---------------------------------------------------------
    def run_function(self, fn, registers=None, seed=0):
        """Execute the routine's original instruction lists."""
        streams = {
            b.name: [i for i in b.instructions if not i.is_nop]
            for b in fn.blocks
        }
        return self._run(fn, streams, registers, seed, empty_follow={})

    def run_schedule(self, schedule, fn, registers=None, seed=0):
        """Execute a Schedule: cycle order, slot order within groups.

        Collapsed blocks (length 0) follow their original unconditional
        branch target — the retargeting the paper's Sec. 5.4 collapse
        implies.
        """
        streams = {}
        empty_follow = {}
        for block in fn.blocks:
            stream = [
                i
                for i in schedule.instructions_in(block.name)
                if not i.is_nop
            ]
            streams[block.name] = stream
            if schedule.block_length(block.name) == 0:
                term = block.terminator
                if term is not None and term.pred is None and term.target:
                    empty_follow[block.name] = term.target
        return self._run(fn, streams, registers, seed, empty_follow)

    # -- core -------------------------------------------------------------------
    def _run(self, fn, streams, registers, seed, empty_follow):
        registers = dict(registers or initial_registers(fn, seed))
        registers.setdefault(reg("r0"), 0)
        registers.setdefault(reg("p0"), 1)
        memory = _Memory(seed, record_stores=self.record_stores)
        layout = [b.name for b in fn.blocks]
        trace = []
        executed = 0
        block = fn.entry_blocks[0]
        returned = False

        while len(trace) < self.max_blocks:
            trace.append(block)
            branch_target = None
            is_return = False
            for instr in streams.get(block, ()):
                executed += 1
                if executed > self.max_instructions:
                    raise InterpreterError("instruction budget exceeded")
                outcome = self._execute(instr, registers, memory)
                if outcome == "return":
                    is_return = True
                    break
                if outcome is not None:
                    branch_target = outcome
                    break
            if is_return:
                returned = True
                break
            if branch_target is None and block in empty_follow:
                branch_target = empty_follow[block]
            if branch_target is not None:
                block = branch_target
            else:
                at = layout.index(block)
                if at + 1 >= len(layout):
                    break
                block = layout[at + 1]
            if block not in streams:
                raise InterpreterError(f"fell into unknown block {block!r}")
        return ExecutionResult(
            registers=registers,
            memory=memory.cells,
            block_trace=trace,
            instructions_executed=executed,
            returned=returned,
            store_log=memory.log if memory.log is not None else [],
        )

    # -- instruction semantics -----------------------------------------------------
    def _execute(self, instr, registers, memory):
        """Returns a branch target name, "return", or None."""
        if instr.pred is not None and not instr.pred.is_true_predicate:
            if not (registers.get(instr.pred, 0) & 1):
                return None

        def value(operand):
            if isinstance(operand, Register):
                if operand.is_zero:
                    return 0
                if operand.is_true_predicate:
                    return 1
                return registers.get(operand, 0)
            return operand & _MASK

        op = instr.op
        mnemonic = instr.mnemonic
        family = mnemonic.split(".")[0]

        if op.is_branch:
            if op.is_return:
                return "return"
            if op.is_call:
                # Calls are opaque: clobber nothing (pure model).
                return None
            return instr.target

        if op.is_check:
            return None  # interpreted loads never defer faults

        srcs = [value(s) for s in instr.srcs]
        imms = list(instr.imms)

        if op.is_load:
            address = (value(instr.mem.base) + instr.mem.offset) & _MASK
            result = memory.load(address)
            if instr.dests:
                registers[instr.dests[0]] = result
            return None
        if op.is_store:
            address = (value(instr.mem.base) + instr.mem.offset) & _MASK
            data = [
                value(s)
                for s in instr.srcs
                if not (isinstance(s, Register) and s == instr.mem.base)
            ]
            memory.store(address, data[0] if data else 0)
            return None
        if op.is_compare:
            self._compare(instr, srcs, imms, registers)
            return None

        result = self._alu(family, mnemonic, srcs, imms)
        for dst in instr.regs_written():
            registers[dst] = result
        return None

    @staticmethod
    def _compare(instr, srcs, imms, registers):
        operands = (srcs + imms + [0, 0])[:2]
        a, b = operands[0], operands[1]
        relation = instr.mnemonic.split(".")[1] if "." in instr.mnemonic else "eq"
        if relation == "eq":
            truth = a == b
        elif relation == "ne":
            truth = a != b
        elif relation in ("lt", "ltu"):
            truth = a < b
        elif relation in ("gt", "gtu"):
            truth = a > b
        elif relation in ("le", "leu"):
            truth = a <= b
        elif relation in ("ge", "geu"):
            truth = a >= b
        else:  # tbit and exotic compares: deterministic pseudo-relation
            truth = bool(_hash64(instr.mnemonic, a, b) & 1)
        if instr.dests:
            registers[instr.dests[0]] = int(truth)
        if len(instr.dests) > 1:
            registers[instr.dests[1]] = int(not truth)

    @staticmethod
    def _alu(family, mnemonic, srcs, imms):
        operands = srcs + imms
        if family == "add":
            return sum(operands) & _MASK
        if family == "adds" or family == "addl":
            return sum(operands) & _MASK
        if family == "sub":
            first = operands[0] if operands else 0
            rest = sum(operands[1:])
            return (first - rest) & _MASK
        if family == "mov" or family == "movl":
            return (operands[0] if operands else 0) & _MASK
        # Everything else: an uninterpreted function of its inputs.
        return _hash64(family, *operands)
