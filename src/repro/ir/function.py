"""Functions: the basic-block graph G_B of the paper (Sec. 4)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.ir.block import BasicBlock


@dataclass(frozen=True)
class Edge:
    """A control-flow edge with an optional traversal probability.

    ``prob`` is the probability of taking this edge out of ``src`` (the
    workload files annotate it; when absent, probabilities are derived from
    destination block frequencies). ``backedge`` marks loop back edges —
    they are excluded from the acyclic scheduling graph but drive the
    cyclic-code-motion extension (paper Sec. 5.2).
    """

    src: str
    dst: str
    prob: float | None = None


@dataclass(eq=False)
class Function:
    """A routine: ordered blocks, control-flow edges, profile data.

    Blocks keep their textual order (which defines fall-through layout).
    Entry blocks are those without predecessors plus the first block;
    exit blocks are those ending in a return or without successors
    (matching B_entry / B_exit of the paper).
    """

    name: str
    blocks: list = field(default_factory=list)
    edges: list = field(default_factory=list)
    live_out: set = field(default_factory=set)
    live_in: set = field(default_factory=set)
    annotations: dict = field(default_factory=dict)

    def __post_init__(self):
        self._by_name = {b.name: b for b in self.blocks}
        if len(self._by_name) != len(self.blocks):
            raise ParseError(f"duplicate block names in function {self.name}")

    # -- construction ---------------------------------------------------------
    def add_block(self, block):
        if block.name in self._by_name:
            raise ParseError(f"duplicate block name {block.name}")
        self.blocks.append(block)
        self._by_name[block.name] = block
        return block

    def add_edge(self, src, dst, prob=None):
        if src not in self._by_name or dst not in self._by_name:
            raise ParseError(f"edge {src}->{dst} references unknown block")
        self.edges.append(Edge(src, dst, prob))

    # -- lookup ----------------------------------------------------------------
    def block(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise ParseError(f"no block named {name!r} in {self.name}") from None

    def __contains__(self, name):
        return name in self._by_name

    def successors(self, name):
        return [e.dst for e in self.edges if e.src == name]

    def predecessors(self, name):
        return [e.src for e in self.edges if e.dst == name]

    def out_edges(self, name):
        return [e for e in self.edges if e.src == name]

    @property
    def entry_blocks(self):
        entries = [b.name for b in self.blocks if not self.predecessors(b.name)]
        first = self.blocks[0].name if self.blocks else None
        if first is not None and first not in entries:
            entries.insert(0, first)
        return entries

    @property
    def exit_blocks(self):
        exits = []
        for block in self.blocks:
            term = block.terminator
            if term is not None and term.op.is_return:
                exits.append(block.name)
            elif not self.successors(block.name):
                exits.append(block.name)
        return exits

    # -- derived data ------------------------------------------------------------
    def all_instructions(self):
        for block in self.blocks:
            yield from block.instructions

    @property
    def instruction_count(self):
        return sum(len(b) for b in self.blocks)

    def edge_probability(self, edge):
        """Probability of ``edge``; derived from frequencies if unannotated."""
        if edge.prob is not None:
            return edge.prob
        out = self.out_edges(edge.src)
        if len(out) == 1:
            return 1.0
        total = sum(self.block(e.dst).freq for e in out)
        if total <= 0:
            return 1.0 / len(out)
        return self.block(edge.dst).freq / total

    def validate(self):
        """Structural sanity checks; raises ParseError on violations."""
        for edge in self.edges:
            if edge.src not in self._by_name or edge.dst not in self._by_name:
                raise ParseError(f"dangling edge {edge.src}->{edge.dst}")
        for block in self.blocks:
            for i, instr in enumerate(block.instructions):
                if instr.is_branch and not instr.is_call and instr.target is not None:
                    if instr.target not in self._by_name:
                        raise ParseError(
                            f"branch in {block.name} targets unknown block "
                            f"{instr.target!r}"
                        )
                if (
                    instr.is_branch
                    and not instr.is_call  # calls return: execution continues
                    and i < len(block.instructions) - 1
                ):
                    follow = block.instructions[i + 1]
                    if not follow.is_branch:
                        raise ParseError(
                            f"non-branch after branch in block {block.name}"
                        )
        if not self.blocks:
            raise ParseError(f"function {self.name} has no blocks")
        return self

    def __repr__(self):
        return (
            f"Function({self.name!r}, blocks={len(self.blocks)}, "
            f"instructions={self.instruction_count})"
        )
