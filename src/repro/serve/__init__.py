"""``repro.serve``: content-addressed schedule cache + scheduling service.

The paper's postpass spends minutes of CPLEX time per routine to buy
seconds of runtime (Sec. 6), which only amortizes when solved schedules
are *reused*.  This package turns the one-shot
:meth:`repro.sched.scheduler.IlpScheduler.optimize` pipeline into a
cacheable, high-throughput service:

:mod:`repro.serve.fingerprint`
    rename/order-invariant canonical hashing of (routine IR, features,
    machine, code version) so structurally identical requests share one
    cache key, plus a coarser *family* fingerprint for near-miss lookup;
:mod:`repro.serve.store`
    a crash-safe on-disk content-addressed store (sharded dirs, atomic
    writes, checksummed entries, LRU eviction) fronted by an in-process
    LRU;
:mod:`repro.serve.service`
    the :class:`ScheduleService` facade — single-flight request
    coalescing, exact hits served byte-identically, family near-misses
    seeding warm starts, admission control and deadline-aware queueing;
:mod:`repro.serve.protocol`
    the length-prefixed framed wire protocol (structured request
    headers with ids/deadlines/feature overrides; typed
    ok/busy/error/health/stats replies);
:mod:`repro.serve.fleet`
    the overload-safe socket daemon — bounded queue, watermark load
    shedding, per-request deadlines, health/stats probes, graceful
    SIGTERM drain;
:mod:`repro.serve.client`
    ``tia-client`` — connect/read timeouts, capped exponential backoff
    with jitter, busy-hint honoring, ordered failover across replicas;
:mod:`repro.serve.daemon`
    the ``tia-serve`` batch/socket front-end and the ``tia-cache``
    inspect/gc/warm tool.
"""

from repro.serve.client import ClientError, FleetClient, RetryPolicy
from repro.serve.fingerprint import (
    CODE_VERSION,
    family_fingerprint,
    fingerprint,
)
from repro.serve.fleet import DaemonError, FleetDaemon
from repro.serve.service import ScheduleService, ServeOutcome
from repro.serve.store import ScheduleStore

__all__ = [
    "CODE_VERSION",
    "ClientError",
    "DaemonError",
    "FleetClient",
    "FleetDaemon",
    "RetryPolicy",
    "ScheduleService",
    "ScheduleStore",
    "ServeOutcome",
    "family_fingerprint",
    "fingerprint",
]
