"""``ScheduleService``: the request-coalescing serving facade.

One request = (routine IR, :class:`ScheduleFeatures`, machine).  The
service resolves it through four layers, cheapest first:

1. **Exact hit** — the request fingerprint
   (:func:`repro.serve.fingerprint.fingerprint`) finds a stored entry;
   the cached :class:`OptimizeResult` is deserialized, optionally
   re-verified against the path verifier, and returned byte-identically
   to the cold solve that produced it.
2. **Single-flight coalescing** — concurrent duplicate requests for one
   key share a single solve: the first caller becomes the *leader*, the
   rest block on its flight and receive the same result
   (``coalesced_requests_total`` counts the followers).
3. **Family warm start** — on a miss, the coarse family fingerprint
   finds near-miss siblings; the freshest sibling's achieved block
   lengths seed the cycle ranges of the cold solve
   (``length_hint`` on :meth:`IlpScheduler.optimize`), shrinking the
   ILP without ever widening it.
4. **Cold solve** — admission-controlled by a semaphore sized against
   the machine (the same budget reasoning as the
   :mod:`repro.tools.parallel` process pool: more concurrent solves
   than cores just thrash).  Queue wait is charged against the
   request's wall-clock budget, so a request that queued too long
   degrades along the optimizer's fallback ladder instead of blowing
   its deadline inside the solver.

Failure containment mirrors the scheduler's graceful-degradation
contract: **a request never fails because of the cache**.  Store I/O
errors and corrupt/version-mismatched entries (including the
``serve.store_io`` / ``serve.corrupt_entry`` fault-injection sites) are
counted, logged as events, and absorbed by falling through to a cold
solve.  Results below the ``phase1`` quality tier are never cached, so
a degraded answer cannot be replayed forever.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass, field, replace

from repro.machine.itanium2 import ITANIUM2
from repro.obs import core as obs
from repro.sched.scheduler import IlpScheduler, ScheduleFeatures
from repro.sched.verifier import verify_schedule
from repro.serve.fingerprint import CODE_VERSION, family_fingerprint, fingerprint
from repro.serve.store import ScheduleStore

# Quality tiers worth replaying. "fallback_input" is the input schedule
# — caching it would freeze a transient failure into a permanent one.
CACHEABLE_QUALITIES = frozenset({"optimal", "incumbent", "phase1"})

HIT_KINDS = ("exact", "family", "miss")


@dataclass
class ServeOutcome:
    """Envelope around an :class:`OptimizeResult` served by the service."""

    result: object
    kind: str  # "exact" | "family" | "miss"
    key: str
    family: str
    elapsed: float
    coalesced: bool = False  # answered by another request's flight
    stored: bool = False  # this request filled the cache
    notes: list = field(default_factory=list)

    def summary(self):
        out = {
            "routine": self.result.fn.name,
            "kind": self.kind,
            "key": self.key,
            "elapsed": self.elapsed,
            "quality": self.result.quality,
            "coalesced": self.coalesced,
            "stored": self.stored,
        }
        if self.notes:
            out["notes"] = list(self.notes)
        return out


class _Flight:
    """State shared between a leader and its coalesced followers."""

    def __init__(self):
        self.done = threading.Event()
        self.outcome = None
        self.error = None


class ScheduleService:
    """Thread-safe serving facade over a :class:`ScheduleStore`.

    ``max_concurrent`` bounds simultaneous cold solves (default: CPU
    count, min 1); ``revalidate`` re-runs the path verifier on every
    deserialized hit before serving it (belt and braces on top of the
    store checksum — a verifier rejection quarantines the entry).
    ``default_features`` seeds requests that do not carry their own.
    """

    def __init__(
        self,
        store,
        machine=ITANIUM2,
        default_features=None,
        max_concurrent=None,
        revalidate=True,
    ):
        if isinstance(store, (str, os.PathLike)):
            store = ScheduleStore(store)
        self.store = store
        self.machine = machine
        self.default_features = default_features or ScheduleFeatures()
        self.revalidate = revalidate
        if max_concurrent is None:
            max_concurrent = max(1, os.cpu_count() or 1)
        self.max_concurrent = max_concurrent
        self._solve_slots = threading.Semaphore(max_concurrent)
        self._flights = {}  # key -> _Flight
        self._flights_lock = threading.Lock()
        self._queued = 0
        self.solves = 0  # cold solves actually executed (tests/metrics)

    # -- public --------------------------------------------------------------
    def request(self, fn, features=None):
        """Serve one routine; returns a :class:`ServeOutcome`.

        Never raises for cache or pipeline failures — the worst case is
        a cold solve that itself degrades along the optimizer's fallback
        ladder.
        """
        features = features or self.default_features
        started = time.perf_counter()
        with obs.span("serve.request", routine=fn.name) as span:
            key = fingerprint(fn, features, self.machine)
            family = family_fingerprint(fn, features, self.machine)

            with self._flights_lock:
                flight = self._flights.get(key)
                leader = flight is None
                if leader:
                    flight = self._flights[key] = _Flight()
            if not leader:
                flight.done.wait()
                if obs.ENABLED:
                    obs.counter("coalesced_requests_total")
                if flight.outcome is not None:
                    elapsed = time.perf_counter() - started
                    base = flight.outcome
                    self._observe(base.kind, elapsed)
                    span.set_attr("kind", base.kind)
                    span.set_attr("coalesced", True)
                    return ServeOutcome(
                        result=base.result,
                        kind=base.kind,
                        key=key,
                        family=family,
                        elapsed=elapsed,
                        coalesced=True,
                        notes=["coalesced onto an in-flight request"],
                    )
                # The leader crashed before producing an outcome: fall
                # through and solve it ourselves (becoming a new leader).
                with self._flights_lock:
                    if self._flights.get(key) is flight:
                        del self._flights[key]
                return self.request(fn, features)

            try:
                outcome = self._resolve(fn, features, key, family, started)
                flight.outcome = outcome
                span.set_attr("kind", outcome.kind)
                return outcome
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._flights_lock:
                    if self._flights.get(key) is flight:
                        del self._flights[key]
                flight.done.set()

    def request_many(self, fns, features=None, workers=None):
        """Serve a batch concurrently; returns outcomes in input order.

        Threads (not processes): hits are I/O-bound and cold solves
        spend their time inside numpy/HiGHS calls that release the GIL
        — and a shared in-process flight table is what makes
        coalescing work at all.
        """
        fns = list(fns)
        if not fns:
            return []
        if workers is None:
            workers = min(len(fns), self.max_concurrent * 2)
        if workers <= 1 or len(fns) == 1:
            return [self.request(fn, features) for fn in fns]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda fn: self.request(fn, features), fns)
            )

    # -- resolution ----------------------------------------------------------
    def _resolve(self, fn, features, key, family, started):
        notes = []
        hit = self._lookup(key, notes)
        if hit is not None:
            result = self._deserialize(key, hit, notes)
            if result is not None:
                elapsed = time.perf_counter() - started
                self._observe("exact", elapsed)
                return ServeOutcome(
                    result=result,
                    kind="exact",
                    key=key,
                    family=family,
                    elapsed=elapsed,
                    notes=notes,
                )

        hint = self._family_hint(key, family, notes)
        kind = "family" if hint else "miss"
        result, solved_features = self._cold_solve(fn, features, hint, started)
        stored = self._maybe_store(
            key, family, result, solved_features, notes
        )
        elapsed = time.perf_counter() - started
        self._observe(kind, elapsed)
        return ServeOutcome(
            result=result,
            kind=kind,
            key=key,
            family=family,
            elapsed=elapsed,
            stored=stored,
            notes=notes,
        )

    def _lookup(self, key, notes):
        """(header, payload) on exact hit, else None; store failures are
        absorbed (counted + noted) as misses."""
        with obs.span("serve.lookup") as span:
            lookup_started = time.perf_counter()
            try:
                hit = self.store.get(key)
            except OSError as exc:
                if obs.ENABLED:
                    obs.counter("cache_store_errors_total", op="get")
                    obs.event("serve.store_io", op="get", error=str(exc))
                notes.append(f"store read failed: {exc}")
                hit = None
            if obs.ENABLED:
                obs.histogram(
                    "serve_lookup_seconds",
                    time.perf_counter() - lookup_started,
                )
            span.set_attr("hit", hit is not None)
        return hit

    def _deserialize(self, key, hit, notes):
        """Unpickle + optionally re-verify a hit; on any failure the
        entry is quarantined and ``None`` (cold solve) returned."""
        header, payload = hit
        if header.get("code_version") != CODE_VERSION:
            notes.append("entry from another code version; ignoring")
            return None
        try:
            result = pickle.loads(payload)
        except Exception as exc:
            notes.append(f"entry failed to deserialize: {exc}")
            self.store._quarantine(
                key, self.store._entry_path(key), f"unpicklable: {exc}"
            )
            return None
        verify_edges = getattr(result, "verify_edges", None)
        if (
            self.revalidate
            and result.reconstruction is not None
            and verify_edges is not None
        ):
            # Replay verification with the exact edge set/scopes the
            # scheduler proved the schedule against — a bare call over
            # the full DDG would falsely reject cyclic code motion.
            with obs.span("serve.revalidate"):
                try:
                    report = verify_schedule(
                        result.output_schedule,
                        result.region,
                        result.reconstruction,
                        machine=self.machine,
                        dep_edges=verify_edges,
                        edge_scopes=getattr(result, "verify_scopes", None) or {},
                    )
                except Exception as exc:
                    report = None
                    notes.append(f"revalidation errored: {exc}")
            if report is None or not report.ok:
                notes.append("cached schedule failed re-verification")
                self.store._quarantine(
                    key,
                    self.store._entry_path(key),
                    "failed re-verification on load",
                )
                return None
        return result

    def _family_hint(self, key, family, notes):
        """Achieved block lengths of the freshest family sibling."""
        try:
            members = self.store.family_members(family)
        except OSError:
            return None
        best = None
        for member in members:
            if member == key:
                continue
            header = self.store.load_header(member)
            if not header or header.get("code_version") != CODE_VERSION:
                continue
            lengths = header.get("block_lengths")
            if not isinstance(lengths, dict) or not lengths:
                continue
            if best is None or header.get("created", 0) > best[0]:
                best = (header.get("created", 0), lengths)
        if best is None:
            return None
        notes.append("cycle ranges seeded from a family near miss")
        return best[1]

    def _cold_solve(self, fn, features, hint, started):
        """Admission-controlled solve; queue wait burns request budget."""
        with obs.span("serve.solve", routine=fn.name):
            budget = features.time_limit
            self._queued += 1
            if obs.ENABLED:
                obs.gauge("serve_queue_depth", float(self._queued))
            try:
                if budget is None:
                    self._solve_slots.acquire()
                else:
                    remaining = budget - (time.perf_counter() - started)
                    acquired = self._solve_slots.acquire(
                        timeout=max(0.0, remaining)
                    )
                    if not acquired:
                        # Over-budget in the queue: run with a token
                        # budget so the optimizer immediately degrades
                        # to its input schedule — the request still
                        # succeeds, truthfully marked fallback_input.
                        if obs.ENABLED:
                            obs.counter("serve_admission_timeouts_total")
                        features = replace(features, time_limit=1e-6)
                        self._solve_slots.acquire()
            finally:
                self._queued -= 1
            try:
                if budget is not None and features.time_limit > 1e-6:
                    remaining = max(
                        1e-6, budget - (time.perf_counter() - started)
                    )
                    features = replace(features, time_limit=remaining)
                self.solves += 1
                scheduler = IlpScheduler(
                    machine=self.machine, features=features,
                    partition_store=self.store,
                )
                return scheduler.optimize(fn, length_hint=hint), features
            finally:
                self._solve_slots.release()

    def _maybe_store(self, key, family, result, features, notes):
        """Cache a cold result when it is worth replaying."""
        if result.quality not in CACHEABLE_QUALITIES:
            notes.append(f"not cached (quality {result.quality})")
            return False
        if result.verification is not None and not result.verification.ok:
            notes.append("not cached (verification failed)")
            return False
        try:
            payload = pickle.dumps(result)
        except Exception as exc:
            notes.append(f"not cached (unpicklable result: {exc})")
            return False
        schedule = result.output_schedule
        meta = {
            "code_version": CODE_VERSION,
            "routine": result.fn.name,
            "quality": result.quality,
            "block_lengths": {
                name: schedule.block_length(name)
                for name in schedule.block_order
            },
            "solve_seconds": result.ilp_size.get("time"),
            "time_limit": features.time_limit,
        }
        with obs.span("serve.store"):
            try:
                self.store.put(key, family, payload, meta)
            except OSError as exc:
                if obs.ENABLED:
                    obs.counter("cache_store_errors_total", op="put")
                    obs.event("serve.store_io", op="put", error=str(exc))
                notes.append(f"store write failed: {exc}")
                return False
        return True

    # -- metrics -------------------------------------------------------------
    @staticmethod
    def _observe(kind, elapsed):
        if obs.ENABLED:
            obs.counter("cache_hits_total", kind=kind)
            obs.histogram("serve_request_seconds", elapsed, kind=kind)


def cached_optimize(fn, features=None, cache_dir=None, machine=ITANIUM2):
    """Drop-in for :func:`optimize_function` with a shared disk cache.

    Builds (and memoizes per process) one :class:`ScheduleService` per
    cache directory — this is what :mod:`repro.tools.experiments` and
    the pool workers in :mod:`repro.tools.parallel` call when a sweep
    runs with ``cache_dir`` set.  Returns the :class:`ServeOutcome`.
    """
    service = _service_for(cache_dir, machine)
    return service.request(fn, features)


_services = {}
_services_lock = threading.Lock()


def _service_for(cache_dir, machine=ITANIUM2):
    key = (os.path.abspath(cache_dir), id(machine))
    with _services_lock:
        service = _services.get(key)
        if service is None:
            service = _services[key] = ScheduleService(
                ScheduleStore(cache_dir), machine=machine
            )
        return service
