"""``tia-serve`` / ``tia-cache``: batch + socket front-ends for the cache.

``tia-serve`` drains scheduling requests through a
:class:`~repro.serve.service.ScheduleService` backed by an on-disk
store.  Two ingestion modes:

* **batch** — one or more TIA assembly files (each may hold several
  routines); every routine becomes a request, fanned out over a thread
  pool so duplicate routines coalesce.  ``--rounds N`` replays the
  request list N times (round 2+ should be all exact hits).
* **socket** — ``--listen PATH`` binds a Unix stream socket served by
  the overload-safe fleet front-end (:mod:`repro.serve.fleet`): a
  multi-threaded worker pool behind a bounded queue with load
  shedding, per-request deadlines, health/stats probes and graceful
  SIGTERM/SIGINT drain.  Connections speak the length-prefixed framed
  protocol (:mod:`repro.serve.protocol`); ``tia-client``
  (:mod:`repro.serve.client`) is the matching retrying/failover
  client.  ``--max-requests`` bounds the loop for scripted runs and
  tests — only *completed* solve requests count; shed or errored
  connections are tallied separately as ``rejected``.  ``--journal
  DIR`` attaches a persistent telemetry journal
  (:mod:`repro.obs.journal`): one record per request exit path, read
  back by ``tia-telemetry``.

``tia-cache`` inspects and maintains a store directory::

    tia-cache stats DIR [--json]     entry/byte/family counts + hit mix
    tia-cache ls DIR                 entries with routine/quality/age
    tia-cache gc DIR --budget BYTES  LRU-evict down to a size budget
    tia-cache verify DIR             re-checksum everything, drop corrupt
    tia-cache warm DIR INPUT...      populate the cache from TIA files

Both tools honor the observability switches: ``--metrics FILE`` writes
the metrics dump (JSON or ``.prom``), ``REPRO_OBS=1`` records without
writing.  A malformed ``REPRO_FAULTS`` fails fast here, exactly like
the parallel driver.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.ir.parser import parse_functions
from repro.obs import core as obs
from repro.sched.scheduler import ScheduleFeatures
from repro.serve.service import ScheduleService
from repro.serve.store import ScheduleStore
from repro.tools import faults


def _features_from_args(args):
    return ScheduleFeatures(
        speculation=not args.no_speculation,
        cyclic=not args.no_cyclic,
        partial_ready=not args.no_partial_ready,
        time_limit=args.time_limit,
        backend=args.backend,
    )


def _read_functions(paths):
    fns = []
    for path in paths:
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        fns.extend(parse_functions(text))
    return fns


def _serve_stats(outcomes):
    kinds = {"exact": 0, "family": 0, "miss": 0}
    latency = {k: [] for k in kinds}
    coalesced = 0
    tiers = {}
    for outcome in outcomes:
        # setdefault on *both* maps: an outcome kind outside the three
        # standard ones must extend the stats, not KeyError on latency.
        kinds.setdefault(outcome.kind, 0)
        kinds[outcome.kind] += 1
        latency.setdefault(outcome.kind, []).append(outcome.elapsed)
        coalesced += outcome.coalesced
        tiers[outcome.result.quality] = tiers.get(outcome.result.quality, 0) + 1
    total = len(outcomes)

    def _lat(values):
        if not values:
            return None
        ordered = sorted(values)
        return {
            "count": len(values),
            "mean_seconds": sum(values) / len(values),
            "p50_seconds": ordered[len(ordered) // 2],
            "p99_seconds": ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))],
            "max_seconds": ordered[-1],
        }

    return {
        "requests": total,
        "hits": kinds,
        "hit_rate": (kinds["exact"] + kinds["family"]) / total if total else 0.0,
        "coalesced": coalesced,
        "quality_tiers": tiers,
        "latency": {k: _lat(v) for k, v in latency.items() if v},
    }


# -- tia-serve ----------------------------------------------------------------
def serve_main(argv=None):
    parser = argparse.ArgumentParser(prog="tia-serve", description=__doc__)
    parser.add_argument("inputs", nargs="*", help="TIA files ('-' = stdin)")
    parser.add_argument("--cache", required=True, metavar="DIR")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=1)
    parser.add_argument("--time-limit", type=float, default=120.0)
    parser.add_argument(
        "--backend", choices=["highs", "bb", "portfolio"], default="highs"
    )
    parser.add_argument("--no-speculation", action="store_true")
    parser.add_argument("--no-cyclic", action="store_true")
    parser.add_argument("--no-partial-ready", action="store_true")
    parser.add_argument("--no-revalidate", action="store_true")
    parser.add_argument(
        "--size-budget", type=int, default=None,
        help="store size budget in bytes (LRU-evicted after writes)",
    )
    parser.add_argument("--stats-out", metavar="FILE", default=None)
    parser.add_argument("--metrics", metavar="FILE", default=None)
    parser.add_argument(
        "-o", "--output", default=None,
        help="write optimized assembly of the last round here",
    )
    parser.add_argument("--listen", metavar="SOCKET", default=None)
    parser.add_argument(
        "--max-requests", type=int, default=None,
        help="socket mode: exit after N *completed* solve requests "
             "(shed/errored connections count separately)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=None,
        help="socket mode: bounded request queue size (default 2x workers)",
    )
    parser.add_argument(
        "--shed-watermark", type=int, default=None,
        help="socket mode: queue depth at which new connections are "
             "shed with a busy reply (default: queue capacity)",
    )
    parser.add_argument(
        "--io-timeout", type=float, default=30.0,
        help="socket mode: per-socket-operation timeout in seconds",
    )
    parser.add_argument(
        "--drain-budget", type=float, default=10.0,
        help="socket mode: seconds granted to in-flight and queued "
             "work after SIGTERM/SIGINT before the rest is flushed",
    )
    parser.add_argument(
        "--default-deadline-ms", type=int, default=None,
        help="socket mode: deadline applied to requests without one",
    )
    parser.add_argument(
        "--journal", metavar="DIR", default=None,
        help="socket mode: append one telemetry-journal record per "
             "request exit path under DIR (read back by tia-telemetry)",
    )
    args = parser.parse_args(argv)

    faults.validate_env()
    if args.metrics or os.environ.get("REPRO_OBS"):
        obs.enable()

    store = ScheduleStore(args.cache, size_budget=args.size_budget)
    service = ScheduleService(
        store,
        default_features=_features_from_args(args),
        revalidate=not args.no_revalidate,
    )

    if args.listen:
        counters = _serve_socket(service, args)
        print(
            f"served {counters['completed']} request(s), "
            f"rejected {counters['rejected']} "
            f"(shed {counters['shed']}, drained {counters['drained']})",
            file=sys.stderr,
        )
    else:
        if not args.inputs:
            parser.error("no inputs (give TIA files or --listen SOCKET)")
        _serve_batch(service, args)

    if args.metrics:
        from repro.obs import export as obs_export

        obs_export.write_metrics(args.metrics)
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    return 0


def _serve_batch(service, args):
    fns = _read_functions(args.inputs)
    if not fns:
        print("no routines found in inputs", file=sys.stderr)
        return
    all_outcomes = []
    last_round = []
    for round_no in range(max(1, args.rounds)):
        started = time.perf_counter()
        outcomes = service.request_many(fns, workers=args.workers)
        elapsed = time.perf_counter() - started
        for outcome in outcomes:
            summary = outcome.summary()
            print(
                f"round {round_no}: {summary['routine']:20s} "
                f"{summary['kind']:6s} quality={summary['quality']:14s} "
                f"{summary['elapsed']:8.3f}s"
                + (" (coalesced)" if summary["coalesced"] else ""),
                file=sys.stderr,
            )
        print(
            f"round {round_no}: {len(outcomes)} request(s) in {elapsed:.3f}s",
            file=sys.stderr,
        )
        all_outcomes.extend(outcomes)
        last_round = outcomes
    stats = _serve_stats(all_outcomes)
    stats["store"] = service.store.stats()
    print(json.dumps(stats, indent=2, sort_keys=True), file=sys.stderr)
    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.output:
        from repro.tools.optimize import _emit_function

        text = "\n".join(_emit_function(o.result) for o in last_round)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)


def _serve_socket(service, args):
    """Run the overload-safe fleet front-end until drained.

    Returns the daemon's final counters dict.  SIGTERM/SIGINT initiate
    a graceful drain when this is the main thread (tests driving the
    daemon from a worker thread call ``initiate_drain`` directly).
    """
    import signal
    import threading

    from repro.serve.fleet import FleetDaemon

    daemon = FleetDaemon(
        service,
        args.listen,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        shed_watermark=args.shed_watermark,
        io_timeout=args.io_timeout,
        drain_budget=args.drain_budget,
        max_requests=args.max_requests,
        default_deadline_ms=args.default_deadline_ms,
        journal=args.journal,
    )
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(
                signum,
                lambda num, _frame: daemon.initiate_drain(
                    signal.Signals(num).name
                ),
            )
    return daemon.serve_forever()


# -- tia-cache ----------------------------------------------------------------
def cache_main(argv=None):
    parser = argparse.ArgumentParser(prog="tia-cache", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="entry/byte/family counts")
    p_stats.add_argument("dir")
    p_stats.add_argument("--json", action="store_true")

    p_ls = sub.add_parser("ls", help="list entries")
    p_ls.add_argument("dir")

    p_gc = sub.add_parser("gc", help="LRU-evict down to a byte budget")
    p_gc.add_argument("dir")
    p_gc.add_argument("--budget", type=int, required=True)

    p_verify = sub.add_parser("verify", help="re-checksum all entries")
    p_verify.add_argument("dir")

    p_warm = sub.add_parser("warm", help="populate from TIA files")
    p_warm.add_argument("dir")
    p_warm.add_argument("inputs", nargs="+")
    p_warm.add_argument("--time-limit", type=float, default=120.0)
    p_warm.add_argument(
        "--backend", choices=["highs", "bb", "portfolio"], default="highs"
    )
    p_warm.add_argument("--no-speculation", action="store_true")
    p_warm.add_argument("--no-cyclic", action="store_true")
    p_warm.add_argument("--no-partial-ready", action="store_true")
    p_warm.add_argument("--workers", type=int, default=None)

    args = parser.parse_args(argv)
    faults.validate_env()
    store = ScheduleStore(args.dir)

    if args.command == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(
                f"{stats['entries']} entries, {stats['bytes']} bytes, "
                f"{stats['families']} families"
            )
        return 0

    if args.command == "ls":
        now = time.time()
        for key, _path, size, mtime in sorted(store.entries()):
            header = store.load_header(key) or {}
            print(
                f"{key[:16]}  {header.get('routine', '?'):20s} "
                f"{header.get('quality', '?'):14s} {size:8d}B  "
                f"age {now - mtime:7.0f}s"
            )
        return 0

    if args.command == "gc":
        evicted = store.gc(args.budget)
        stats = store.stats()
        print(
            f"evicted {len(evicted)} entr{'y' if len(evicted) == 1 else 'ies'}; "
            f"{stats['entries']} left, {stats['bytes']} bytes"
        )
        return 0

    if args.command == "verify":
        ok, dropped = store.verify_all()
        print(f"{ok} entries ok, {len(dropped)} corrupt dropped")
        return 0 if not dropped else 1

    if args.command == "warm":
        features = _features_from_args(args)
        service = ScheduleService(store, default_features=features)
        fns = _read_functions(args.inputs)
        outcomes = service.request_many(fns, workers=args.workers)
        stats = _serve_stats(outcomes)
        stats["store"] = store.stats()
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0

    parser.error(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(serve_main())
