"""``tia-client``: retrying, failing-over client for the serve fleet.

One :class:`FleetClient` fronts N replica sockets of the framed
``tia-serve`` protocol (:mod:`repro.serve.protocol`) and gives callers
the property the daemon alone cannot: **a request succeeds as long as
any replica is healthy**.

Retry policy, in order of what it protects against:

* **Connect/read timeouts** — a dead or wedged replica costs a bounded
  slice of the budget, never a hang.
* **Ordered failover** — replicas are tried in the order given
  (primary first); a connection failure, timeout, protocol error or
  ``error`` reply moves to the next replica immediately.
* **Busy hints** — a ``busy`` reply (load shed or draining) is not a
  failure: the client sleeps the server's ``retry_after_ms`` hint
  (capped by its own backoff ceiling and remaining budget) before the
  next attempt, so a shedding fleet sees a self-pacing client instead
  of a retry storm.
* **Capped exponential backoff with jitter** — after a full pass over
  all replicas the per-round delay doubles from ``base_delay`` up to
  ``max_delay``, with multiplicative jitter drawn from a seedable RNG
  (tests and benchmarks pass ``random.Random(seed)`` for deterministic
  schedules); jitter prevents synchronized client herds re-arriving in
  lockstep after a shed wave.
* **A wall-clock budget** — ``deadline_ms`` bounds the whole attempt
  tree; when it expires the client raises :class:`ClientError` with
  the per-replica failure trail.

The CLI::

    tia-client routine.tia --socket /run/tia-a.sock --socket /run/tia-b.sock
    tia-client --health --socket /run/tia-a.sock
    tia-client --stats  --socket /run/tia-a.sock --json

Exit status 0 when every input routine was served, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import socket
import sys
import time
import uuid
from dataclasses import dataclass, field

from repro.obs import core as obs
from repro.serve import protocol


class ClientError(Exception):
    """All replicas exhausted (or the deadline expired) for a request."""


def _reply_tag(reply):
    """Echoed request/trace ids of a busy/error reply, for the trail."""
    request_id = reply.get("id")
    trace_id = reply.get("trace_id")
    if request_id is None and trace_id is None:
        return ""
    return f" [req={request_id or '-'} trace={(trace_id or '-')[:8]}]"


@dataclass
class RetryPolicy:
    """Backoff/retry knobs; defaults suit a local fleet."""

    max_rounds: int = 5  # full passes over the replica list
    base_delay: float = 0.05  # seconds, doubled per round
    max_delay: float = 2.0  # backoff + busy-hint ceiling
    connect_timeout: float = 1.0
    read_timeout: float = 120.0  # a solve can legitimately take this long

    def delay_for_round(self, round_no, rng):
        """Capped exponential backoff with multiplicative jitter."""
        delay = min(self.max_delay, self.base_delay * (2.0 ** round_no))
        return delay * (0.5 + rng.random())


@dataclass
class ClientReply:
    """A successful ``ok`` reply: emitted assembly + per-routine meta."""

    text: str
    results: list
    replica: str
    attempts: int
    elapsed: float
    request_id: str = None
    trace_id: str = None  # distributed-trace id the request carried


@dataclass
class ClientStats:
    """Telemetry a load generator (``bench_serve``) reads back."""

    attempts: int = 0
    busy: int = 0
    errors: int = 0
    connect_failures: int = 0
    failovers: int = 0
    trail: list = field(default_factory=list)  # last request's failures


class FleetClient:
    """Retrying client over an ordered list of replica socket paths."""

    def __init__(self, socket_paths, policy=None, rng=None):
        if isinstance(socket_paths, (str, os.PathLike)):
            socket_paths = [socket_paths]
        self.socket_paths = [str(p) for p in socket_paths]
        if not self.socket_paths:
            raise ValueError("no replica socket paths given")
        self.policy = policy or RetryPolicy()
        self.rng = rng or random.Random()
        self.stats = ClientStats()

    # -- public --------------------------------------------------------------
    def solve(self, text, deadline_ms=None, features=None, request_id=None,
              trace_id=None):
        """Serve ``text`` (TIA assembly); returns a :class:`ClientReply`.

        Raises :class:`ClientError` only when every replica failed in
        every round or ``deadline_ms`` expired — a single live replica
        is enough to succeed.

        The request carries a distributed-trace context: ``trace_id``
        (else the ambient :func:`repro.obs.core.current_trace`, else a
        fresh id) plus the client span's ref, so the daemon's spans and
        journal records attribute back to this call.
        """
        request_id = request_id or uuid.uuid4().hex[:12]
        trace_id = trace_id or obs.current_trace()[0] or obs.new_trace_id()
        with obs.trace_scope(trace_id):
            with obs.span(
                "client.solve", request=str(request_id)
            ) as span:
                header, payload = protocol.solve_request(
                    text, request_id=request_id,
                    deadline_ms=deadline_ms, features=features,
                    trace=protocol.trace_header(trace_id, span.ref),
                )
                reply = self._with_retries(
                    "solve", header, payload, deadline_ms=deadline_ms,
                    tag=f"req={request_id} trace={trace_id[:8]}",
                )
        reply.request_id = request_id
        reply.trace_id = trace_id
        return reply

    def health(self, deadline_ms=2000):
        """First healthy replica's health header (dict)."""
        trace_id, _parent = obs.current_trace()
        header, payload = protocol.probe_request(
            "health",
            trace=protocol.trace_header(trace_id, obs.current_span_ref()),
        )
        return self._with_retries(
            "health", header, payload, deadline_ms=deadline_ms
        )

    def fleet_stats(self, deadline_ms=2000):
        """Per-replica stats headers: ``{path: dict | None}``."""
        out = {}
        for path in self.socket_paths:
            try:
                reply, _payload = self._roundtrip(
                    path, *protocol.probe_request("stats")
                )
                out[path] = reply
            except (OSError, protocol.ProtocolError):
                out[path] = None
        return out

    # -- retry engine --------------------------------------------------------
    def _with_retries(self, op, header, payload, deadline_ms=None, tag=None):
        started = time.monotonic()
        deadline = (
            None if deadline_ms is None
            else started + float(deadline_ms) / 1000.0
        )
        suffix = f" [{tag}]" if tag else ""
        trail = []
        attempts = 0
        for round_no in range(self.policy.max_rounds):
            busy_hint = None
            for path in self.socket_paths:
                if deadline is not None and time.monotonic() >= deadline:
                    self.stats.trail = trail
                    raise ClientError(
                        f"deadline expired after {attempts} attempt(s)"
                        f"{suffix}: " + "; ".join(trail[-4:])
                    )
                attempts += 1
                self.stats.attempts += 1
                try:
                    reply, reply_payload = self._roundtrip(
                        path, header, payload, deadline
                    )
                except (ConnectionRefusedError, FileNotFoundError) as exc:
                    self.stats.connect_failures += 1
                    self.stats.failovers += 1
                    trail.append(f"{path}: {type(exc).__name__}")
                    continue
                except (TimeoutError, socket.timeout):
                    self.stats.connect_failures += 1
                    self.stats.failovers += 1
                    trail.append(f"{path}: timeout")
                    continue
                except (OSError, protocol.ProtocolError) as exc:
                    self.stats.failovers += 1
                    trail.append(f"{path}: {type(exc).__name__}: {exc}")
                    continue
                status = reply.get("status")
                if status == "busy":
                    self.stats.busy += 1
                    hint = reply.get("retry_after_ms")
                    if hint is not None:
                        hint_s = max(0.0, float(hint) / 1000.0)
                        busy_hint = (
                            hint_s if busy_hint is None
                            else min(busy_hint, hint_s)
                        )
                    trail.append(
                        f"{path}: busy ({reply.get('reason', '?')})"
                        + _reply_tag(reply)
                    )
                    continue  # failover: another replica may have room
                if status == "error":
                    self.stats.errors += 1
                    trail.append(
                        f"{path}: error: {reply.get('error')}"
                        + _reply_tag(reply)
                    )
                    continue
                if op == "solve" and status == "ok":
                    return ClientReply(
                        text=reply_payload.decode("utf-8"),
                        results=reply.get("results", []),
                        replica=path,
                        attempts=attempts,
                        elapsed=time.monotonic() - started,
                    )
                if op == "health" and status == "health":
                    return reply
                trail.append(f"{path}: unexpected status {status!r}")
            delay = self.policy.delay_for_round(round_no, self.rng)
            if busy_hint is not None:
                # Honor the server's hint, but never beyond our own
                # backoff ceiling — a confused server must not park us.
                delay = min(max(delay, busy_hint), self.policy.max_delay)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            if delay > 0:
                time.sleep(delay)
        self.stats.trail = trail
        raise ClientError(
            f"all replicas failed after {attempts} attempt(s){suffix}: "
            + "; ".join(trail[-6:])
        )

    def _roundtrip(self, path, header, payload, deadline=None):
        connect_timeout = self.policy.connect_timeout
        read_timeout = self.policy.read_timeout
        if deadline is not None:
            remaining = max(1e-3, deadline - time.monotonic())
            connect_timeout = min(connect_timeout, remaining)
            read_timeout = min(read_timeout, remaining)
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            conn.settimeout(connect_timeout)
            conn.connect(path)
            conn.settimeout(read_timeout)
            try:
                protocol.send_frame(conn, header, payload)
            except (BrokenPipeError, ConnectionResetError):
                # The daemon may shed/drain a connection before reading
                # the request; its typed busy reply can already be in
                # our receive buffer, so fall through to the read.
                pass
            frame = protocol.recv_frame(conn)
            if frame is None:
                raise protocol.ProtocolError("peer closed without a reply")
            return frame
        finally:
            try:
                conn.close()
            except OSError:
                pass


# -- CLI ----------------------------------------------------------------------
def client_main(argv=None):
    parser = argparse.ArgumentParser(prog="tia-client", description=__doc__)
    parser.add_argument("inputs", nargs="*", help="TIA files ('-' = stdin)")
    parser.add_argument(
        "--socket", dest="sockets", action="append", metavar="PATH",
        help="replica socket path (repeat for failover order)", default=[],
    )
    parser.add_argument("--deadline-ms", type=int, default=None)
    parser.add_argument("--retries", type=int, default=5,
                        help="full passes over the replica list")
    parser.add_argument("--connect-timeout", type=float, default=1.0)
    parser.add_argument("--read-timeout", type=float, default=120.0)
    parser.add_argument("--time-limit", type=float, default=None,
                        help="per-request solver budget override")
    parser.add_argument("--backend", choices=["highs", "bb"], default=None)
    parser.add_argument("--seed", type=int, default=None,
                        help="jitter RNG seed (deterministic backoff)")
    parser.add_argument("-o", "--output", default=None)
    parser.add_argument("--health", action="store_true",
                        help="probe the fleet and print the reply")
    parser.add_argument("--stats", action="store_true",
                        help="print per-replica serving stats")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(argv)

    if not args.sockets:
        parser.error("at least one --socket PATH is required")
    policy = RetryPolicy(
        max_rounds=max(1, args.retries),
        connect_timeout=args.connect_timeout,
        read_timeout=args.read_timeout,
    )
    rng = random.Random(args.seed) if args.seed is not None else None
    client = FleetClient(args.sockets, policy=policy, rng=rng)

    if args.health:
        try:
            reply = client.health()
        except ClientError as exc:
            print(f"unhealthy: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    if args.stats:
        print(json.dumps(client.fleet_stats(), indent=2, sort_keys=True))
        return 0

    if not args.inputs:
        parser.error("no inputs (give TIA files, '-', or --health/--stats)")
    features = {}
    if args.time_limit is not None:
        features["time_limit"] = args.time_limit
    if args.backend is not None:
        features["backend"] = args.backend

    texts = []
    for path in args.inputs:
        if path == "-":
            texts.append(sys.stdin.read())
        else:
            with open(path, encoding="utf-8") as handle:
                texts.append(handle.read())

    emitted = []
    failures = 0
    for path, text in zip(args.inputs, texts):
        try:
            reply = client.solve(
                text, deadline_ms=args.deadline_ms,
                features=features or None,
            )
        except ClientError as exc:
            failures += 1
            print(f"{path}: FAILED: {exc}", file=sys.stderr)
            continue
        emitted.append(reply.text)
        for result in reply.results:
            print(
                f"{result['routine']:20s} {result['kind']:6s} "
                f"quality={result['quality']:14s} via {reply.replica} "
                f"({reply.attempts} attempt(s), {reply.elapsed:.3f}s)"
                + (" (coalesced)" if result.get("coalesced") else ""),
                file=sys.stderr,
            )

    if args.json:
        print(json.dumps({
            "served": len(emitted),
            "failed": failures,
            "attempts": client.stats.attempts,
            "busy": client.stats.busy,
            "connect_failures": client.stats.connect_failures,
            "failovers": client.stats.failovers,
        }, indent=2, sort_keys=True))
    if args.output:
        # Join exactly like tia-opt -o does, so an exact-hit reply is
        # byte-comparable (cmp) against the tia-opt output.
        text = "\n".join(emitted)
        if args.output == "-":
            sys.stdout.write(text)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(client_main())
