"""Framed wire protocol for the ``tia-serve`` fleet daemon.

The original socket mode delimited a request by the client half-closing
its write side and a reply by the server closing the connection — no
request metadata, no typed errors, no way to say *busy, come back in
40 ms* without inventing sentinel strings.  This module replaces that
with explicit **length-prefixed frames** carrying a structured JSON
header and an opaque payload::

    +--------+------------+-------------+---------------+----------+
    | magic  | header_len | payload_len | header (JSON) | payload  |
    | 4 B    | u32 BE     | u32 BE      | header_len B  | len B    |
    +--------+------------+-------------+---------------+----------+

Both directions use the same frame.  Request headers carry::

    {"op": "solve" | "health" | "stats",
     "id": "<client-chosen request id>",
     "deadline_ms": <total budget in ms, or null>,
     "features": {<ScheduleFeatures overrides, wire-safe subset>},
     "trace": {"id": "<32-hex trace id>", "parent": "<pid.span_id>"}}

with the TIA assembly text as the payload of a ``solve``.  The
``trace`` member is W3C-traceparent-shaped distributed-trace context
(:mod:`repro.obs.core`): the client generates the trace id, the daemon
adopts it for every span it records on the request's behalf, and every
reply — including ``busy`` and ``error`` — echoes ``id`` and
``trace_id`` so a shed or failed hop is attributable from the client
side alone.  Reply headers carry a ``status``::

    ok      the solve finished; payload = emitted assembly, header
            lists per-routine {routine, kind, quality, coalesced}
    busy    the daemon shed the request (queue full, or draining);
            ``retry_after_ms`` hints when to retry, ``reason`` says why
    error   the request was malformed or failed; ``error`` names it
    health  liveness probe reply (uptime, in-flight, queue depth)
    stats   serving counters + store stats as JSON in the header

Design rules:

* **Bounded everything.** Header and payload lengths are checked
  against hard caps *before* allocation, so a garbage or hostile peer
  cannot make the daemon buffer unbounded data; reads honor the socket
  timeout the daemon sets, so a stalled peer cannot wedge a worker.
* **Fail typed.** Anything malformed raises :class:`ProtocolError`
  (magic mismatch, truncated frame, oversize declaration, bad JSON);
  socket timeouts surface as the stdlib ``TimeoutError`` for the
  caller to map onto its own policy.
* **Versioned.** The magic (``TIAF``) plus :data:`PROTOCOL_VERSION` in
  every header lets either side refuse a frame from a future protocol
  instead of misparsing it.

The client side lives in :mod:`repro.serve.client`; the daemon side in
:mod:`repro.serve.daemon`.
"""

from __future__ import annotations

import json
import struct
from dataclasses import replace

MAGIC = b"TIAF"
PROTOCOL_VERSION = 1

# Hard caps, checked before any allocation. Headers are small JSON
# dicts; payloads are TIA assembly text (requests) or emitted assembly
# (replies) — 32 MiB is orders of magnitude above the largest generated
# corpus routine.
MAX_HEADER_BYTES = 64 * 1024
MAX_PAYLOAD_BYTES = 32 * 1024 * 1024

_PREFIX = struct.Struct(">4sII")  # magic, header_len, payload_len

# ScheduleFeatures fields a client may override per request. Everything
# else (formulation switches that change schedule semantics) stays the
# daemon's choice so one replica serves one coherent cache keyspace.
WIRE_FEATURES = (
    "time_limit",
    "backend",
    "speculation",
    "cyclic",
    "partial_ready",
    "heuristic_effort",
    "max_hops",
    "portfolio_backends",
    "portfolio_seed",
    "portfolio_threads",
)

REQUEST_OPS = ("solve", "health", "stats")
REPLY_STATUSES = ("ok", "busy", "error", "health", "stats")


class ProtocolError(Exception):
    """A malformed, truncated or oversize frame."""


# -- framing ------------------------------------------------------------------
def pack_frame(header, payload=b""):
    """Serialize ``(header dict, payload bytes)`` into one frame."""
    header = dict(header)
    header.setdefault("v", PROTOCOL_VERSION)
    raw_header = json.dumps(header, sort_keys=True).encode("utf-8")
    if len(raw_header) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header too large ({len(raw_header)} bytes)")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload too large ({len(payload)} bytes)")
    return _PREFIX.pack(MAGIC, len(raw_header), len(payload)) + raw_header + payload


def send_frame(sock, header, payload=b""):
    """Pack and ``sendall`` one frame."""
    sock.sendall(pack_frame(header, payload))


def _recv_exact(sock, want):
    """Read exactly ``want`` bytes; honors the socket timeout.

    Raises :class:`ProtocolError` on a mid-frame EOF, ``TimeoutError``
    when the socket timeout expires (the daemon's stalled-client bound).
    Returns ``None`` on a clean EOF before the first byte.
    """
    chunks = []
    got = 0
    while got < want:
        chunk = sock.recv(min(65536, want - got))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(f"truncated frame: EOF after {got}/{want} bytes")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock, max_payload=MAX_PAYLOAD_BYTES):
    """Read one frame; ``(header dict, payload bytes)``.

    Returns ``None`` on a clean EOF before any byte (peer closed
    between frames).  Raises :class:`ProtocolError` for anything that
    is not a well-formed frame and ``TimeoutError`` if the socket
    timeout trips mid-read.
    """
    prefix = _recv_exact(sock, _PREFIX.size)
    if prefix is None:
        return None
    magic, header_len, payload_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (not a tia-serve peer?)")
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"declared header length {header_len} over cap")
    if payload_len > max_payload:
        raise ProtocolError(f"declared payload length {payload_len} over cap")
    raw_header = _recv_exact(sock, header_len)
    if raw_header is None or len(raw_header) != header_len:
        raise ProtocolError("truncated header")
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"unparsable header: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError("header is not a JSON object")
    version = header.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"protocol version {version!r} != {PROTOCOL_VERSION}")
    payload = b""
    if payload_len:
        payload = _recv_exact(sock, payload_len)
        if payload is None or len(payload) != payload_len:
            raise ProtocolError("truncated payload")
    return header, payload


# -- request/reply constructors ----------------------------------------------
def trace_header(trace_id, parent_ref=None):
    """The ``trace`` request-header member, or ``None`` for no context."""
    if not trace_id:
        return None
    member = {"id": str(trace_id)}
    if parent_ref is not None:
        member["parent"] = str(parent_ref)
    return member


def trace_from_header(header):
    """``(trace_id, parent_ref)`` carried by a request header."""
    trace = header.get("trace")
    if not isinstance(trace, dict):
        return (None, None)
    trace_id = trace.get("id")
    parent = trace.get("parent")
    return (
        None if trace_id is None else str(trace_id),
        None if parent is None else str(parent),
    )


def solve_request(text, request_id=None, deadline_ms=None, features=None,
                  trace=None):
    """``(header, payload)`` for a solve of ``text`` (TIA assembly).

    ``trace`` is a :func:`trace_header` dict (or ``None``) propagating
    the client's distributed-trace context to the daemon.
    """
    header = {"op": "solve"}
    if request_id is not None:
        header["id"] = str(request_id)
    if deadline_ms is not None:
        header["deadline_ms"] = int(deadline_ms)
    if trace:
        header["trace"] = dict(trace)
    if features:
        unknown = set(features) - set(WIRE_FEATURES)
        if unknown:
            raise ProtocolError(
                f"non-wire feature override(s): {sorted(unknown)} "
                f"(allowed: {', '.join(WIRE_FEATURES)})"
            )
        header["features"] = dict(features)
    return header, text.encode("utf-8")


def probe_request(op, request_id=None, trace=None):
    """Header for a ``health``/``stats`` probe (no payload)."""
    if op not in ("health", "stats"):
        raise ProtocolError(f"not a probe op: {op!r}")
    header = {"op": op}
    if request_id is not None:
        header["id"] = str(request_id)
    if trace:
        header["trace"] = dict(trace)
    return header, b""


def _stamp_trace(header, trace_id):
    if trace_id is not None:
        header["trace_id"] = str(trace_id)
    return header


def ok_reply(request_id, results, payload, trace_id=None):
    """``status=ok``: payload is the emitted assembly, ``results`` the
    per-routine ``{routine, kind, quality, coalesced}`` summaries."""
    return _stamp_trace({
        "status": "ok",
        "id": request_id,
        "results": list(results),
    }, trace_id), payload


def busy_reply(request_id, retry_after_ms, reason, queue_depth=None,
               trace_id=None):
    header = _stamp_trace({
        "status": "busy",
        "id": request_id,
        "retry_after_ms": int(retry_after_ms),
        "reason": reason,
    }, trace_id)
    if queue_depth is not None:
        header["queue_depth"] = int(queue_depth)
    return header, b""


def error_reply(request_id, error, trace_id=None):
    return _stamp_trace(
        {"status": "error", "id": request_id, "error": str(error)}, trace_id
    ), b""


def features_from_wire(base, overrides, deadline_budget=None):
    """Apply a wire ``features`` dict (and a deadline) onto ``base``.

    Only :data:`WIRE_FEATURES` keys are honored; unknown keys raise
    :class:`ProtocolError` so a typo'd client knob fails loudly instead
    of silently serving defaults.  ``deadline_budget`` (seconds, the
    request's remaining deadline at dispatch) tightens ``time_limit``
    but never widens it — the daemon's own limit is a ceiling.
    """
    overrides = overrides or {}
    unknown = set(overrides) - set(WIRE_FEATURES)
    if unknown:
        raise ProtocolError(f"unknown feature override(s): {sorted(unknown)}")
    try:
        features = replace(base, **overrides) if overrides else base
    except ValueError as exc:
        # ScheduleFeatures validates eagerly (unknown backend / bad
        # roster); a bad client knob is a protocol error, not a crash.
        raise ProtocolError(f"invalid feature override: {exc}") from exc
    if deadline_budget is not None:
        budget = max(1e-6, float(deadline_budget))
        if features.time_limit is None or budget < features.time_limit:
            features = replace(features, time_limit=budget)
    return features
