"""Crash-safe on-disk content-addressed store for solved schedules.

Layout under the store root::

    objects/ab/cd/abcdef....entry     one cache entry per exact key
    families/ab/abcdef....json        family key -> member exact keys
    tmp/                              staging area for atomic writes
    locks/                            advisory fcntl locks (gc, family
                                      index) for multi-replica sharing

An entry file is a one-line JSON **header** followed by an opaque binary
payload (the pickled :class:`~repro.sched.scheduler.OptimizeResult`).
The header carries a magic string, the store format version, the code
version the entry was produced under, the payload's sha256 and length,
and serving metadata (routine name, quality tier, achieved block
lengths for family warm starts, solve cost).

Durability and integrity rules:

* **Atomic writes** — entries and family indexes are staged in
  ``tmp/`` and published with ``os.replace``; a crash mid-write leaves
  at worst a stale temp file (swept by :meth:`ScheduleStore.gc`),
  never a truncated entry.
* **Verified reads** — every load re-checks magic, store version, code
  version and the payload checksum.  Anything that fails — including a
  short read from a torn write or bit rot — is *quarantined* (the file
  is removed, ``cache_corrupt_entries_total`` counted) and reported as
  a miss, so corruption can never propagate a wrong schedule; the
  service re-solves cold.
* **LRU eviction** — entry files' mtime is touched on every hit;
  :meth:`gc` (and the post-``put`` budget check) drops the
  least-recently-used entries until the store fits ``size_budget``.

An in-process LRU (raw payload bytes + header) fronts the disk so a hot
serving loop touches the filesystem only for misses and periodic mtime
bumps.  The ``serve.store_io`` and ``serve.corrupt_entry`` fault sites
(:mod:`repro.tools.faults`) let the chaos harness inject I/O failures
and checksum-breaking corruption on this exact path.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import OrderedDict
from contextlib import contextmanager

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.obs import core as obs
from repro.tools import faults

ENTRY_MAGIC = "tia-schedule-cache"
STORE_VERSION = 1
_ENTRY_SUFFIX = ".entry"


class CorruptEntryError(Exception):
    """An entry failed magic/version/checksum validation on load."""


def _payload_sha(payload):
    return hashlib.sha256(payload).hexdigest()


class ScheduleStore:
    """Content-addressed schedule store with an in-process LRU front.

    ``size_budget`` (bytes, ``None`` = unbounded) triggers LRU eviction
    after writes; ``mem_entries`` bounds the in-process front.  All
    mutating operations are safe under concurrent use from multiple
    processes sharing the directory (N daemon replicas on one cache):
    entry writes are atomic renames, and the read-modify-write
    operations — gc/LRU eviction and family-index compaction — are
    serialized by advisory ``fcntl`` locks under ``locks/``.
    """

    def __init__(self, root, size_budget=None, mem_entries=64):
        self.root = str(root)
        self.size_budget = size_budget
        self.mem_entries = mem_entries
        self._mem = OrderedDict()  # key -> (header dict, payload bytes)
        for sub in ("objects", "families", "tmp", "locks"):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)

    # -- cross-process advisory locking --------------------------------------
    @contextmanager
    def _locked(self, name):
        """Exclusive advisory ``flock`` on ``locks/<name>.lock``.

        N daemon replicas share one cache directory: entry *writes*
        are already safe (atomic rename), but read-modify-write
        operations — LRU eviction / gc and family-index compaction —
        would race between processes (double-unlink accounting, lost
        index appends).  The lock serializes exactly those.  Lock
        files are tiny and never deleted, so there is no unlink race
        on the lock itself.  On platforms without ``fcntl`` this is a
        no-op: single-replica behaviour is unchanged, and the races it
        guards are cross-process only.
        """
        if fcntl is None:
            yield
            return
        path = os.path.join(self.root, "locks", name + ".lock")
        with open(path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- paths ---------------------------------------------------------------
    def _entry_path(self, key):
        return os.path.join(
            self.root, "objects", key[:2], key[2:4], key + _ENTRY_SUFFIX
        )

    def _family_path(self, family):
        return os.path.join(self.root, "families", family[:2], family + ".json")

    def _tmp_path(self, name):
        return os.path.join(
            self.root, "tmp", f"{name}.{os.getpid()}.{time.monotonic_ns()}"
        )

    # -- writes --------------------------------------------------------------
    def put(self, key, family, payload, meta=None):
        """Publish ``payload`` under ``key``; returns the header dict.

        ``meta`` is extra JSON-able serving metadata folded into the
        header (routine, quality, block_lengths, solve_seconds...).  An
        injected ``serve.store_io`` fault (or a real I/O error) raises
        ``OSError`` — callers treat a failed put as a skipped cache
        fill, never as a request failure.
        """
        if faults.fire("serve.store_io") is not None:
            raise OSError("injected store I/O fault (put)")
        header = {
            "magic": ENTRY_MAGIC,
            "version": STORE_VERSION,
            "key": key,
            "family": family,
            "payload_sha256": _payload_sha(payload),
            "payload_len": len(payload),
            "created": time.time(),
        }
        header.update(meta or {})
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = self._tmp_path(key[:16])
        with open(tmp, "wb") as handle:
            handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
            handle.write(b"\n")
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        if family:
            self._index_family(family, key)
        self._mem_put(key, header, payload)
        if obs.ENABLED:
            obs.counter("cache_store_writes_total")
        if self.size_budget is not None:
            self.gc(self.size_budget)
        return header

    def _index_family(self, family, key):
        """Append ``key`` to the family index (atomic rewrite).

        The read-modify-write is serialized across processes by an
        advisory lock: two replicas indexing siblings concurrently
        must not lose each other's append (a lost append only costs a
        warm-start opportunity, but with N daemons on one directory it
        would be a *steady* leak, not a rare blip).
        """
        path = self._family_path(family)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with self._locked("family-" + family[:16]):
            keys = self.family_members(family)
            if key in keys:
                return
            keys.append(key)
            tmp = self._tmp_path("fam-" + family[:16])
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"keys": keys}, handle)
            os.replace(tmp, path)

    # -- reads ---------------------------------------------------------------
    def get(self, key, touch=True):
        """``(header, payload)`` for ``key``, or ``None`` on miss.

        Corrupt or version-mismatched entries are quarantined and
        reported as misses.  I/O faults propagate as ``OSError`` for the
        service to degrade on.
        """
        cached = self._mem.get(key)
        if cached is not None:
            self._mem.move_to_end(key)
            if touch:
                try:
                    os.utime(self._entry_path(key))
                except OSError:
                    pass
            return cached
        path = self._entry_path(key)
        if faults.fire("serve.store_io") is not None:
            raise OSError("injected store I/O fault (get)")
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        try:
            header, payload = self._validate(key, raw)
        except CorruptEntryError as exc:
            self._quarantine(key, path, str(exc))
            return None
        if touch:
            try:
                os.utime(path)
            except OSError:
                pass
        self._mem_put(key, header, payload)
        return header, payload

    def _validate(self, key, raw):
        newline = raw.find(b"\n")
        if newline < 0:
            raise CorruptEntryError("no header line")
        try:
            header = json.loads(raw[:newline].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptEntryError(f"unparsable header: {exc}") from None
        payload = raw[newline + 1:]
        if faults.fire("serve.corrupt_entry") is not None and payload:
            # Injected bit rot: flip the first payload byte so the
            # checksum check below must catch it.
            payload = bytes([payload[0] ^ 0xFF]) + payload[1:]
        if header.get("magic") != ENTRY_MAGIC:
            raise CorruptEntryError("bad magic")
        if header.get("version") != STORE_VERSION:
            raise CorruptEntryError(
                f"store version {header.get('version')!r} != {STORE_VERSION}"
            )
        if header.get("key") not in (None, key):
            raise CorruptEntryError("key mismatch (misplaced entry)")
        if len(payload) != header.get("payload_len"):
            raise CorruptEntryError(
                f"payload length {len(payload)} != header "
                f"{header.get('payload_len')}"
            )
        if _payload_sha(payload) != header.get("payload_sha256"):
            raise CorruptEntryError("payload checksum mismatch")
        return header, payload

    def _quarantine(self, key, path, problem):
        self._mem.pop(key, None)
        try:
            os.unlink(path)
        except OSError:
            pass
        if obs.ENABLED:
            obs.counter("cache_corrupt_entries_total")
            obs.event("serve.corrupt_entry", key=key, problem=problem)

    def load_header(self, key):
        """Header dict only (no payload checksum walk); ``None`` on miss
        or any validation failure.  Used for family warm-start metadata,
        where a bad sibling simply means no hint."""
        cached = self._mem.get(key)
        if cached is not None:
            return cached[0]
        path = self._entry_path(key)
        try:
            with open(path, "rb") as handle:
                line = handle.readline()
            header = json.loads(line.decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if (
            header.get("magic") != ENTRY_MAGIC
            or header.get("version") != STORE_VERSION
        ):
            return None
        return header

    def family_members(self, family):
        """Exact keys indexed under ``family`` (existing entries only)."""
        try:
            with open(self._family_path(family), encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            return []
        keys = [k for k in doc.get("keys", []) if isinstance(k, str)]
        return [k for k in keys if os.path.exists(self._entry_path(k))]

    def __contains__(self, key):
        return key in self._mem or os.path.exists(self._entry_path(key))

    # -- in-process LRU ------------------------------------------------------
    def _mem_put(self, key, header, payload):
        self._mem[key] = (header, payload)
        self._mem.move_to_end(key)
        while len(self._mem) > self.mem_entries:
            self._mem.popitem(last=False)

    def drop_mem(self):
        """Forget the in-process front (tests; cross-process refresh)."""
        self._mem.clear()

    # -- maintenance ---------------------------------------------------------
    def entries(self):
        """``[(key, path, size, mtime)]`` for every entry on disk."""
        out = []
        objects = os.path.join(self.root, "objects")
        for dirpath, _dirnames, filenames in os.walk(objects):
            for name in filenames:
                if not name.endswith(_ENTRY_SUFFIX):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                out.append(
                    (name[: -len(_ENTRY_SUFFIX)], path,
                     stat.st_size, stat.st_mtime)
                )
        return out

    def stats(self):
        """``{"entries", "bytes", "families"}`` for dashboards/CLIs."""
        rows = self.entries()
        families = 0
        fam_root = os.path.join(self.root, "families")
        for _dirpath, _dirnames, filenames in os.walk(fam_root):
            families += sum(1 for n in filenames if n.endswith(".json"))
        return {
            "entries": len(rows),
            "bytes": sum(size for _k, _p, size, _m in rows),
            "families": families,
        }

    def gc(self, max_bytes):
        """Evict least-recently-used entries until ≤ ``max_bytes``.

        Also sweeps stale temp files older than an hour (crash litter).
        Returns the list of evicted keys.  The whole sweep runs under
        the cross-process ``gc`` lock so N replicas sharing the
        directory do not scan + unlink the same victim set concurrently
        (each would charge the same bytes and over-evict far below the
        budget).
        """
        with self._locked("gc"):
            tmp_root = os.path.join(self.root, "tmp")
            horizon = time.time() - 3600.0
            for name in os.listdir(tmp_root):
                path = os.path.join(tmp_root, name)
                try:
                    if os.stat(path).st_mtime < horizon:
                        os.unlink(path)
                except OSError:
                    pass
            rows = sorted(self.entries(), key=lambda r: r[3])  # oldest first
            total = sum(size for _k, _p, size, _m in rows)
            evicted = []
            for key, path, size, _mtime in rows:
                if total <= max_bytes:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                evicted.append(key)
                self._mem.pop(key, None)
        if evicted and obs.ENABLED:
            obs.counter("cache_evictions_total", len(evicted))
        if obs.ENABLED:
            obs.gauge("cache_size_bytes", float(total))
        return evicted

    def verify_all(self):
        """Re-validate every entry; quarantine failures.

        Returns ``(ok_count, dropped_keys)`` — the ``tia-cache verify``
        subcommand and the CI serve-smoke job run this after chaos.
        """
        ok = 0
        dropped = []
        for key, path, _size, _mtime in self.entries():
            try:
                with open(path, "rb") as handle:
                    raw = handle.read()
                self._validate(key, raw)
            except CorruptEntryError as exc:
                self._quarantine(key, path, str(exc))
                dropped.append(key)
            except OSError:
                continue
            else:
                ok += 1
        return ok, dropped
