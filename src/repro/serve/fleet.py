"""Overload-safe multi-threaded socket daemon for ``tia-serve``.

The original socket mode was a single-threaded accept loop: no
timeouts, no backpressure, no safe shutdown — one stalled client
wedged the whole tier and a SIGTERM mid-solve dropped in-flight work on
the floor.  :class:`FleetDaemon` is the robustness substrate the fleet
needs:

* **Bounded admission.**  The accept loop feeds a bounded queue drained
  by a fixed worker pool.  At or above the shed watermark the daemon
  *sheds*: the client gets a typed ``busy`` reply carrying a
  ``retry_after_ms`` hint (EWMA of recent service time × queue depth)
  instead of an unbounded queue growing latency for everyone.
* **Deadlines end to end.**  A request's ``deadline_ms`` starts burning
  at accept; queue wait is charged against it, and what remains at
  dispatch tightens ``ScheduleFeatures.time_limit`` — so an over-queued
  request degrades along the optimizer's fallback ladder (the
  :class:`~repro.tools.deadline.Deadline` machinery) instead of blowing
  its budget inside the solver.  Requests still never raise.
* **Stalled clients cannot wedge workers.**  Every accepted socket gets
  ``settimeout``; the framed protocol (:mod:`repro.serve.protocol`)
  reads are bounded in both bytes and time.
* **Graceful drain.**  SIGTERM/SIGINT (or reaching ``--max-requests``)
  stops accepting, closes and unlinks the socket (new clients fail
  over instantly), lets in-flight and already-queued work finish up to
  a drain budget, then flushes whatever is left with ``busy
  (draining)`` replies and exits cleanly — rc 0, store intact.
* **Stale-socket takeover.**  On startup a leftover socket path is
  probed: a live listener is an error (never steal a serving replica's
  socket); a dead one (connection refused) is unlinked and rebound.
* **Probes.**  ``health`` and ``stats`` ops are answered inline from
  the accept thread's worker pool without competing with solves for
  queue slots beyond their (tiny) service time.

* **Attributable exits.**  Every request adopts the client's
  distributed-trace context (the ``trace`` header member) for the
  spans the daemon records on its behalf and echoes ``id`` +
  ``trace_id`` on every reply — busy and error included, via a
  best-effort read of the queued frame on the shed/drain paths.  When
  a telemetry journal is attached, exactly one
  :mod:`repro.obs.journal` record is appended per request exit path
  (``ok``/``busy``/``error``/``drained``/``fault``/``probe``), and a
  drain-time ``portfolio_summary`` record persists the per-family
  solver-race win tallies.

Chaos hooks: fault sites ``serve.accept`` (the accepted connection
fails before queueing), ``serve.queue`` (forced shed), ``serve.drain``
(failure inside the drain sweep) and ``obs.journal`` (journal append
I/O failure, which must never surface into the request path) let
:mod:`repro.tools.faults` prove each of those paths degrades instead of
crashing.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time

from repro.ir.parser import parse_functions
from repro.obs import core as obs
from repro.obs import journal as journal_mod
from repro.serve import protocol
from repro.tools import faults


class DaemonError(Exception):
    """Fatal daemon startup/teardown failure (e.g. live socket path)."""


def _emit(result):
    from repro.tools.optimize import _emit_function

    return _emit_function(result)


def _wire_features(features):
    """JSON-able view of the wire-overridable knobs actually in effect."""
    view = {}
    for name in protocol.WIRE_FEATURES:
        value = getattr(features, name, None)
        if isinstance(value, tuple):
            value = list(value)
        view[name] = value
    return view


class FleetDaemon:
    """One serving replica: accept loop + bounded queue + worker pool.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.ScheduleService` answering
        requests (shared store, coalescing, admission control).
    path:
        Unix socket path to bind.
    workers:
        Worker threads draining the queue (default ``min(4, cpus)``).
    queue_capacity:
        Bounded queue size (default ``2 × workers``).
    shed_watermark:
        Queue depth at/above which new connections are shed (default:
        ``queue_capacity``; set lower to shed before the queue is hard
        full).
    io_timeout:
        Per-socket-operation timeout in seconds; a silent client can
        hold a worker for at most this long.
    drain_budget:
        Seconds granted to in-flight + queued work after drain starts.
    max_requests:
        Exit after this many *completed* solve requests (scripted runs
        and tests); rejected/shed connections do not count.
    default_deadline_ms:
        Applied to requests that carry no ``deadline_ms`` of their own
        (``None`` = the service's feature time limit alone governs).
    journal:
        A :class:`repro.obs.journal.TelemetryJournal` — or a directory
        path, in which case one is built with default budgets —
        receiving one record per request exit path.  ``None`` disables
        journaling.
    """

    def __init__(
        self,
        service,
        path,
        *,
        workers=None,
        queue_capacity=None,
        shed_watermark=None,
        io_timeout=30.0,
        drain_budget=10.0,
        max_requests=None,
        default_deadline_ms=None,
        backlog=64,
        journal=None,
    ):
        self.service = service
        self.path = str(path)
        if workers is None:
            workers = min(4, max(1, os.cpu_count() or 1))
        self.workers = max(1, int(workers))
        if queue_capacity is None:
            queue_capacity = 2 * self.workers
        self.queue_capacity = max(1, int(queue_capacity))
        if shed_watermark is None:
            shed_watermark = self.queue_capacity
        self.shed_watermark = max(1, min(int(shed_watermark), self.queue_capacity))
        self.io_timeout = float(io_timeout)
        self.drain_budget = float(drain_budget)
        self.max_requests = max_requests
        self.default_deadline_ms = default_deadline_ms
        self.backlog = backlog
        if journal is not None and not hasattr(journal, "append"):
            journal = journal_mod.TelemetryJournal(journal)
        self.journal = journal
        self.replica = f"{os.path.basename(self.path)}:{os.getpid()}"
        self._portfolio_families = {}  # family -> {backend spec: race wins}

        self._queue = queue.Queue(maxsize=self.queue_capacity)
        self._stop = threading.Event()  # stop accepting
        self._ready = threading.Event()  # socket bound + listening
        self._reject_queued = False  # drain flush: workers busy-reply
        self._drain_reason = None
        self._lock = threading.Lock()
        self._inflight = 0
        self._started = None
        self._server = None
        # EWMA of per-request service seconds, seeding the busy
        # retry-after hint; starts pessimistic so the first sheds do
        # not tell clients to hammer a cold daemon.
        self._ewma_service = 0.05
        self.counters = {
            "completed": 0,
            "rejected": 0,
            "shed": 0,
            "drained": 0,
            "probes": 0,
            "accept_errors": 0,
        }

    # -- lifecycle -----------------------------------------------------------
    def bind(self):
        """Bind and listen (with stale-socket takeover); idempotent."""
        if self._server is not None:
            return
        if os.path.exists(self.path):
            self._takeover_stale_socket()
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            server.bind(self.path)
        except OSError:
            server.close()
            raise
        server.listen(self.backlog)
        server.settimeout(0.1)  # poll the stop event between accepts
        self._server = server
        self._started = time.monotonic()
        self._ready.set()

    def _takeover_stale_socket(self):
        """Unlink a dead leftover socket; refuse to steal a live one."""
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(0.25)
        try:
            probe.connect(self.path)
        except (ConnectionRefusedError, FileNotFoundError):
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass
        except OSError:
            # ENOTSOCK and friends: the path is not a live listener.
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass
        else:
            raise DaemonError(
                f"socket {self.path} has a live listener "
                "(another replica is serving; refusing to steal it)"
            )
        finally:
            probe.close()

    def wait_ready(self, timeout=10.0):
        """Block until the socket is bound (tests/background starts)."""
        return self._ready.wait(timeout)

    def initiate_drain(self, reason="signal"):
        """Stop accepting; in-flight + queued work gets the drain budget.

        Safe from any thread and from signal handlers; idempotent.
        """
        if not self._stop.is_set():
            self._drain_reason = reason
            self._stop.set()

    @property
    def draining(self):
        return self._stop.is_set()

    def serve_forever(self):
        """Run until drained; returns the final counters dict."""
        self.bind()
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"serve-worker-{i}",
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        try:
            self._accept_loop()
        finally:
            self._close_listener()
            self._drain(threads)
            self._flush_journal()
        return dict(self.counters)

    def _close_listener(self):
        """Close + unlink so new clients fail over immediately."""
        server, self._server = self._server, None
        if server is not None:
            try:
                server.close()
            except OSError:
                pass
        try:
            os.unlink(self.path)
        except OSError:
            pass

    # -- accept path ---------------------------------------------------------
    def _accept_loop(self):
        while not self._stop.is_set():
            with self._lock:
                completed = self.counters["completed"]
            if self.max_requests is not None and completed >= self.max_requests:
                self.initiate_drain("max-requests")
                break
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                if self._stop.is_set():
                    break
                self._count("accept_errors")
                if obs.ENABLED:
                    obs.counter("serve_accept_errors_total")
                continue
            self._admit(conn)

    def _admit(self, conn):
        accepted_at = time.monotonic()
        if faults.fire("serve.accept") is not None:
            # Injected accept-path failure: the connection dies before
            # it is queued; the loop must keep serving.
            self._count("accept_errors")
            self._count("rejected")
            if obs.ENABLED:
                obs.counter("serve_accept_errors_total")
            request_id, trace_id = self._peek_ids(conn)
            self._journal_request(
                "fault",
                trace_id=trace_id,
                request_id=request_id,
                fault="serve.accept",
                timings={"total": time.monotonic() - accepted_at},
            )
            self._best_effort_reply(
                conn,
                *protocol.error_reply(
                    request_id, "injected accept fault", trace_id=trace_id
                ),
            )
            self._close(conn)
            return
        depth = self._queue.qsize()
        forced_shed = faults.fire("serve.queue") is not None
        if forced_shed or depth >= self.shed_watermark:
            self._shed(
                conn, depth, "injected" if forced_shed else "overload",
                accepted_at,
            )
            return
        try:
            self._queue.put_nowait((conn, accepted_at))
        except queue.Full:
            self._shed(conn, self._queue.qsize(), "overload", accepted_at)
            return
        if obs.ENABLED:
            obs.gauge("serve_conn_queue_depth", float(self._queue.qsize()))

    def _shed(self, conn, depth, reason, accepted_at=None):
        self._count("shed")
        self._count("rejected")
        if obs.ENABLED:
            obs.counter("serve_shed_total", reason=reason)
        request_id, trace_id = self._peek_ids(conn)
        timings = None
        if accepted_at is not None:
            timings = {"total": time.monotonic() - accepted_at}
        self._journal_request(
            "busy",
            trace_id=trace_id,
            request_id=request_id,
            shed_reason=reason,
            timings=timings,
        )
        header, payload = protocol.busy_reply(
            request_id, self._retry_after_ms(depth), reason,
            queue_depth=depth, trace_id=trace_id,
        )
        self._best_effort_reply(conn, header, payload)
        self._close(conn)

    def _peek_ids(self, conn, timeout=0.1):
        """Best-effort ``(request_id, trace_id)`` off a doomed connection.

        A shed/drained/faulted connection never reaches a worker's
        normal frame read, but by the time the daemon decides to reject
        it the client has almost always written its single request
        frame — so a short bounded read usually recovers the request id
        and trace context, making the typed reply and the journal
        record attributable from the client side.  Any failure (slow
        client, garbage frame) just yields anonymous ids; the rejection
        itself is never at risk.
        """
        try:
            conn.settimeout(timeout)
            frame = protocol.recv_frame(conn)
        except Exception:
            return (None, None)
        if frame is None:
            return (None, None)
        header, _payload = frame
        trace_id, _parent = protocol.trace_from_header(header)
        request_id = header.get("id")
        return (
            None if request_id is None else str(request_id),
            trace_id,
        )

    def _retry_after_ms(self, depth):
        """How long a shed client should wait: the backlog's expected
        service time, clamped to something a client can act on."""
        hint = self._ewma_service * (depth + 1) * 1000.0
        return int(min(5000.0, max(25.0, hint)))

    def _best_effort_reply(self, conn, header, payload):
        try:
            conn.settimeout(min(1.0, self.io_timeout))
            protocol.send_frame(conn, header, payload)
        except OSError:
            pass

    @staticmethod
    def _close(conn):
        try:
            conn.close()
        except OSError:
            pass

    def _count(self, name, n=1):
        with self._lock:
            self.counters[name] += n

    # -- telemetry journal ---------------------------------------------------
    def _journal_request(self, outcome, **fields):
        """Append one request-exit record; a no-op without a journal.

        :meth:`TelemetryJournal.append` never raises, so this is safe
        on every exit path including the drain sweep.
        """
        journal = self.journal
        if journal is None:
            return
        journal.append(
            journal_mod.request_record(
                outcome, replica=self.replica, **fields
            )
        )

    def _portfolio_note(self, outcomes):
        """Race digest for one request + fold per-family win tallies.

        Returns ``{races, winner, seed_transfers}`` when at least one
        portfolio race ran for the request, else ``None``; as a side
        effect the winning backend's tally for the routine's cache
        family is bumped (persisted at drain as the
        ``portfolio_summary`` journal record).
        """
        races = 0
        transfers = 0
        winner = None
        with self._lock:
            for outcome in outcomes:
                trace = getattr(outcome.result, "trace", None)
                for solve in getattr(trace, "solves", None) or ():
                    detail = (
                        solve.get("portfolio")
                        if isinstance(solve, dict)
                        else None
                    )
                    if not detail:
                        continue
                    races += 1
                    transfers += int(detail.get("seed_transfers") or 0)
                    spec = detail.get("winner")
                    if spec:
                        winner = spec
                        tallies = self._portfolio_families.setdefault(
                            outcome.family, {}
                        )
                        tallies[spec] = tallies.get(spec, 0) + 1
        if not races:
            return None
        return {
            "races": races,
            "winner": winner,
            "seed_transfers": transfers,
        }

    def _flush_journal(self):
        """Drain-time persistence: per-family race tallies + counters."""
        journal = self.journal
        if journal is None:
            return
        with self._lock:
            families = {
                family: dict(tallies)
                for family, tallies in self._portfolio_families.items()
            }
            counters = dict(self.counters)
        journal.append(
            journal_mod.seal_record(
                {
                    "kind": "portfolio_summary",
                    "ts": time.time(),
                    "replica": self.replica,
                    "families": families,
                    "counters": counters,
                    "drain_reason": self._drain_reason,
                    "write_errors": journal.write_errors,
                }
            )
        )
        journal.close()

    # -- worker path ---------------------------------------------------------
    def _worker_loop(self, index=0):
        if obs.ENABLED:
            obs.name_thread(f"fleet worker {index}")
        while True:
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set() and self._reject_queued:
                    return
                continue
            if item is None:  # shutdown sentinel
                return
            conn, accepted_at = item
            if self._reject_queued:
                # Drain budget expired with this connection still
                # queued: flush it with a typed busy instead of
                # starting work we cannot finish.
                self._flush_queued(conn, accepted_at)
                continue
            self._handle(conn, accepted_at)

    def _flush_queued(self, conn, accepted_at):
        """Busy-reply a queued connection the drain gave up on."""
        self._count("drained")
        self._count("rejected")
        if obs.ENABLED:
            obs.counter("serve_drained_total")
        request_id, trace_id = self._peek_ids(conn)
        self._journal_request(
            "drained",
            trace_id=trace_id,
            request_id=request_id,
            shed_reason="draining",
            timings={"total": time.monotonic() - accepted_at},
        )
        self._best_effort_reply(
            conn,
            *protocol.busy_reply(request_id, 250, "draining", trace_id=trace_id),
        )
        self._close(conn)

    def _handle(self, conn, accepted_at):
        with self._lock:
            self._inflight += 1
            inflight = self._inflight
        if obs.ENABLED:
            obs.gauge("serve_inflight", float(inflight))
            obs.gauge("serve_conn_queue_depth", float(self._queue.qsize()))
        started = time.monotonic()
        # Populated by _handle_framed as soon as the header parses, so
        # the error exits below can echo ids and journal attributably.
        ctx = {"id": None, "trace": None}
        try:
            conn.settimeout(self.io_timeout)
            self._handle_framed(conn, accepted_at, ctx)
        except (TimeoutError, socket.timeout):
            self._reject(conn, accepted_at, ctx, "request timed out")
        except protocol.ProtocolError as exc:
            self._reject(conn, accepted_at, ctx, str(exc))
        except Exception as exc:  # a bad request must not kill the worker
            self._reject(
                conn, accepted_at, ctx, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._close(conn)
            with self._lock:
                self._inflight -= 1
                inflight = self._inflight
            self._ewma_service = (
                0.8 * self._ewma_service + 0.2 * (time.monotonic() - started)
            )
            if obs.ENABLED:
                obs.gauge("serve_inflight", float(inflight))

    def _reject(self, conn, accepted_at, ctx, error):
        """Typed error exit: count, journal once, best-effort reply."""
        self._count("rejected")
        self._journal_request(
            "error",
            trace_id=ctx["trace"],
            request_id=ctx["id"],
            error=error,
            timings={"total": time.monotonic() - accepted_at},
        )
        self._best_effort_reply(
            conn,
            *protocol.error_reply(ctx["id"], error, trace_id=ctx["trace"]),
        )

    def _handle_framed(self, conn, accepted_at, ctx):
        frame = protocol.recv_frame(conn)
        if frame is None:  # connected and left without a frame
            return
        header, payload = frame
        request_id = header.get("id")
        trace_id, parent_ref = protocol.trace_from_header(header)
        ctx["id"] = request_id
        ctx["trace"] = trace_id
        # Adopt the client's trace for everything recorded on this
        # request's behalf — the fleet.request span becomes the local
        # root that the Chrome-trace exporter stitches to the client's
        # span via its remote parent ref.
        with obs.trace_scope(trace_id, parent_ref):
            with obs.span(
                "fleet.request",
                op=str(header.get("op")),
                request=str(request_id),
            ):
                self._serve_framed(
                    conn, accepted_at, header, payload, trace_id
                )

    def _serve_framed(self, conn, accepted_at, header, payload, trace_id):
        op = header.get("op")
        request_id = header.get("id")
        if op in ("health", "stats"):
            self._count("probes")
            probe = (
                self._health_header(request_id)
                if op == "health"
                else self._stats_header(request_id)
            )
            if trace_id is not None:
                probe["trace_id"] = str(trace_id)
            protocol.send_frame(conn, probe)
            self._journal_request(
                "probe",
                trace_id=trace_id,
                request_id=request_id,
                timings={"total": time.monotonic() - accepted_at},
            )
            return
        if op != "solve":
            raise protocol.ProtocolError(f"unknown op {op!r}")

        waited = time.monotonic() - accepted_at
        if obs.ENABLED:
            # Retroactive span covering accept -> dispatch, so the
            # Chrome trace shows queue wait as a first-class phase of
            # the request instead of a silent gap before the solve.
            obs.complete_span("fleet.queue_wait", waited)
        text = payload.decode("utf-8")
        fns = parse_functions(text)
        if not fns:
            protocol.send_frame(
                conn,
                *protocol.error_reply(
                    request_id, "no routines in payload", trace_id=trace_id
                ),
            )
            self._count("rejected")
            self._journal_request(
                "error",
                trace_id=trace_id,
                request_id=request_id,
                error="no routines in payload",
                timings={
                    "queue_wait": waited,
                    "total": time.monotonic() - accepted_at,
                },
            )
            return

        deadline_ms = header.get("deadline_ms", self.default_deadline_ms)
        budget = None
        if deadline_ms is not None:
            # Queue wait already burned part of the client's budget;
            # what is left bounds the solve, so an over-queued request
            # degrades along the fallback ladder instead of overshooting.
            budget = max(1e-6, float(deadline_ms) / 1000.0 - waited)
        features = protocol.features_from_wire(
            self.service.default_features,
            header.get("features"),
            deadline_budget=budget,
        )

        results = []
        emitted = []
        outcomes = []
        for fn in fns:
            outcome = self.service.request(fn, features)
            outcomes.append(outcome)
            results.append(
                {
                    "routine": outcome.result.fn.name,
                    "kind": outcome.kind,
                    "quality": outcome.result.quality,
                    "coalesced": bool(outcome.coalesced),
                }
            )
            emitted.append(_emit(outcome.result))
        reply_header, reply_payload = protocol.ok_reply(
            request_id, results, "\n".join(emitted).encode("utf-8"),
            trace_id=trace_id,
        )
        protocol.send_frame(conn, reply_header, reply_payload)
        self._count("completed")
        if obs.ENABLED:
            obs.counter("serve_completed_total")
        cache_kinds = {}
        for outcome in outcomes:
            cache_kinds[outcome.kind] = cache_kinds.get(outcome.kind, 0) + 1
        self._journal_request(
            "ok",
            trace_id=trace_id,
            request_id=request_id,
            family=outcomes[0].family,
            routines=results,
            features=_wire_features(features),
            timings={
                "queue_wait": waited,
                "solve": sum(o.elapsed for o in outcomes),
                "total": time.monotonic() - accepted_at,
            },
            cache_kinds=cache_kinds,
            portfolio=self._portfolio_note(outcomes),
        )

    def _health_header(self, request_id):
        with self._lock:
            counters = dict(self.counters)
            inflight = self._inflight
        return {
            "status": "health",
            "id": request_id,
            "ok": True,
            "uptime_seconds": time.monotonic() - (self._started or time.monotonic()),
            "inflight": inflight,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.queue_capacity,
            "workers": self.workers,
            "draining": self.draining,
            "completed": counters["completed"],
            "shed": counters["shed"],
        }

    def _stats_header(self, request_id):
        with self._lock:
            counters = dict(self.counters)
        try:
            store_stats = self.service.store.stats()
        except OSError as exc:
            store_stats = {"error": str(exc)}
        return {
            "status": "stats",
            "id": request_id,
            "counters": counters,
            "store": store_stats,
            "queue_capacity": self.queue_capacity,
            "shed_watermark": self.shed_watermark,
            "workers": self.workers,
        }

    # -- drain ---------------------------------------------------------------
    def _drain(self, threads):
        """Finish in-flight + queued work within the budget, then flush."""
        deadline = time.monotonic() + self.drain_budget
        try:
            if faults.fire("serve.drain") is not None:
                raise OSError("injected drain fault")
            while time.monotonic() < deadline:
                with self._lock:
                    inflight = self._inflight
                if inflight == 0 and self._queue.empty():
                    break
                time.sleep(0.02)
        except Exception:
            # An injected (or real) drain failure must not leave the
            # process hanging or exiting dirty: fall through to the
            # flush, which busy-replies whatever is left.
            if obs.ENABLED:
                obs.counter("serve_drain_errors_total")
        # Budget spent (or queue clear): anything still queued gets a
        # typed busy instead of silence.
        self._reject_queued = True
        while True:
            try:
                conn, accepted_at = self._queue.get_nowait()
            except queue.Empty:
                break
            self._flush_queued(conn, accepted_at)
        for _thread in threads:
            try:
                self._queue.put_nowait(None)
            except queue.Full:
                break
        remaining = max(0.5, deadline - time.monotonic())
        for thread in threads:
            thread.join(timeout=remaining)
        if obs.ENABLED:
            obs.gauge("serve_conn_queue_depth", 0.0)
