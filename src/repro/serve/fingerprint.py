"""Canonical request fingerprints for the schedule cache.

Two requests must share a cache entry exactly when the optimizer would
produce the same schedule for both.  The optimizer's output depends on
the routine's *structure* — opcodes, operands as a dataflow pattern,
memory shape, CFG, profile — but not on which virtual register numbers
the compiler happened to pick, nor on the textual order blocks were
emitted in (the pipeline renames registers and works over the CFG).
The **exact** fingerprint therefore hashes a canonical form that is
invariant under:

* consistent virtual-register renaming (registers are numbered by first
  appearance in a canonical traversal, per bank; the hardwired
  constants ``r0``/``p0`` keep their identity), and
* permutation of the textual block order (blocks are traversed in
  sorted-name order; block *names* are part of CFG identity).

while distinguishing any change that can alter the schedule: a
different opcode, a latency override, an immediate, an alias class, a
block frequency or edge probability, any :class:`ScheduleFeatures`
field, the machine description, and ``CODE_VERSION`` (bumped whenever
the formulation/solver semantics change, which invalidates every
existing entry wholesale without touching the store).

The **family** fingerprint is deliberately coarser: it drops latency
overrides, immediates, and profile numbers, and ignores solver-only
feature knobs (time limits, backend, heuristic effort, retry budgets).
Requests in one family are *near misses* of each other — close enough
that a cached sibling's achieved block lengths seed the cycle ranges of
a fresh solve (:mod:`repro.serve.service`), but not interchangeable as
answers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.ir.registers import Register

# Bump when the scheduler/formulation changes in a way that can change
# emitted schedules: every cached entry keyed under the old version
# becomes unreachable (and is eventually LRU-evicted).
# serve-3: software-pipelining subsystem (repro.sched.modulo) — new
# ScheduleFeatures knobs and the kind="loop" entries.
CODE_VERSION = "serve-3"

# ScheduleFeatures fields that steer the *solver*, not the model: two
# requests differing only here want the same schedule, so they share a
# family (but never an exact key — the solver config can change which
# answer is actually reached, e.g. optimal vs incumbent).
SOLVER_ONLY_FEATURES = frozenset({
    "time_limit",
    "heuristic_effort",
    "backend",
    "portfolio_backends",
    "portfolio_seed",
    "portfolio_threads",
    "verify",
    "incremental_cuts",
    "max_resize_attempts",
    "max_bundle_retries",
    "rollback_on_verify_failure",
    # Decomposition partitions the *search*, aiming at the same schedule:
    # family hints (achieved block lengths) transfer across the switch.
    # Exact keys still differ — features_dict(family=False) keeps every
    # field — so decomposed and whole-function answers never alias.
    "decompose",
    "decompose_min_instructions",
    # The SWP ladder budget steers how far the II search gets, not which
    # kernel a given II admits; the structural knobs (swp, swp_max_ii,
    # swp_max_stages) stay in the family key because they change which
    # pipelined loop is even attempted.
    "swp_time_limit",
})


# -- canonical function form --------------------------------------------------
class _RegisterCanon:
    """Bank-local first-appearance numbering of registers.

    Hardwired constants (``r0``, ``p0``) canonicalize to themselves:
    they read as constants, so their identity is architectural, not a
    naming choice.
    """

    def __init__(self):
        self._ids = {}

    def __call__(self, register):
        if register is None:
            return None
        if not isinstance(register, Register):
            return str(register)
        if register.is_constant:
            return f"{register.bank.value}const"
        key = register
        assigned = self._ids.get(key)
        if assigned is None:
            bank = register.bank.value
            count = sum(1 for r in self._ids if r.bank is register.bank)
            assigned = self._ids[key] = f"{bank}#{count}"
        return assigned


def _canonical_instruction(instr, canon):
    mem = None
    if instr.mem is not None:
        mem = [
            canon(instr.mem.base),
            instr.mem.offset,
            instr.mem.alias_class,
            instr.mem.size,
        ]
    return [
        instr.mnemonic,
        [canon(d) for d in instr.dests],
        [canon(s) for s in instr.srcs],
        mem,
        canon(instr.pred),
        instr.target,
        [str(i) for i in instr.imms],
        sorted((str(k), str(v)) for k, v in instr.annotations.items()),
    ]


def canonical_function(fn, coarse=False):
    """Plain-data canonical form of a routine.

    Blocks are visited in sorted-name order (so any textual permutation
    of the same CFG canonicalizes identically) and registers are
    numbered by first appearance within that traversal (so consistent
    renamings canonicalize identically).  With ``coarse=True`` the
    schedule-affecting details that *family* members may differ in are
    dropped: latency overrides and other annotations, immediates,
    memory offsets, block frequencies and edge probabilities.
    """
    canon = _RegisterCanon()
    blocks = []
    for block in sorted(fn.blocks, key=lambda b: b.name):
        instrs = []
        for instr in block.instructions:
            row = _canonical_instruction(instr, canon)
            if coarse:
                row[6] = len(row[6])  # immediate count, not values
                row[7] = []  # annotations (lat overrides) dropped
                if row[3] is not None:
                    row[3] = [row[3][0], None, row[3][2], row[3][3]]
            instrs.append(row)
        edges = sorted(
            (e.dst, None if coarse or e.prob is None else round(e.prob, 9))
            for e in fn.out_edges(block.name)
        )
        blocks.append([
            block.name,
            None if coarse else round(block.freq, 9),
            instrs,
            edges,
        ])
    # Live sets: registers already seen in the stream use their canonical
    # ids; stream-absent ones are numbered afterwards in architectural
    # order (deterministic, though not rename-invariant for registers
    # that appear *nowhere* in the code — an acceptable corner).
    live = {
        label: sorted(canon(r) for r in sorted(regs))
        for label, regs in (("in", fn.live_in), ("out", fn.live_out))
    }
    return {"blocks": blocks, "live": live}


# -- feature / machine digests ------------------------------------------------
def features_dict(features, family=False):
    """JSON-able view of a ScheduleFeatures; ``family=True`` drops the
    solver-only knobs (see :data:`SOLVER_ONLY_FEATURES`)."""
    out = {}
    for f in dataclasses.fields(features):
        if family and f.name in SOLVER_ONLY_FEATURES:
            continue
        value = getattr(features, f.name)
        out[f.name] = value if isinstance(
            value, (int, float, str, bool, type(None))
        ) else str(value)
    return out


def machine_dict(machine):
    """JSON-able identity of a machine description.

    Ports and simulator penalties are enumerated field-by-field; the
    shared opcode/template tables are code, covered by CODE_VERSION.
    """
    ports = {
        f.name: getattr(machine.ports, f.name)
        for f in dataclasses.fields(machine.ports)
    }
    out = {
        f.name: getattr(machine, f.name)
        for f in dataclasses.fields(machine)
        if isinstance(getattr(machine, f.name), (int, float, str, bool))
    }
    out["name"] = machine.name
    out["ports"] = ports
    out["templates"] = len(machine.templates)
    return out


def _digest(payload):
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fingerprint(fn, features, machine):
    """Exact cache key: hex sha256 over the full canonical request."""
    return _digest({
        "code": CODE_VERSION,
        "fn": canonical_function(fn),
        "features": features_dict(features),
        "machine": machine_dict(machine),
    })


def family_fingerprint(fn, features, machine):
    """Coarse near-miss key: structure + model-shaping features only."""
    return _digest({
        "code": CODE_VERSION,
        "fn": canonical_function(fn, coarse=True),
        "features": features_dict(features, family=True),
        "machine": machine_dict(machine),
    })


def partition_fingerprint(fn, features, machine):
    """Exact cache key for one decomposition partition.

    Keyed over the partition's *sub-function* (blocks, exit stub, pinned
    boundary live sets), so editing one block of a large routine leaves
    every other partition's key — and its cached lengths — intact.
    Register names canonicalize to first-appearance numbering, making
    the key invariant under virtual-register renaming, like
    :func:`fingerprint`. The ``kind`` tag keeps partition entries from
    ever aliasing a whole-routine entry.
    """
    return _digest({
        "code": CODE_VERSION,
        "kind": "partition",
        "fn": canonical_function(fn),
        "features": features_dict(features),
        "machine": machine_dict(machine),
    })


def loop_fingerprint(fn, loop_header, features, machine):
    """Exact cache key for one modulo-scheduled loop (``kind="loop"``).

    Keyed over the whole routine's canonical form plus the loop header
    name: the loop body's modulo schedule depends on the body
    instructions and their loop-carried dependences, both of which the
    routine canonical form captures, and the header pins *which* loop of
    a multi-loop routine the entry describes.  The ``kind`` tag keeps
    loop entries from aliasing whole-routine or partition entries.
    """
    return _digest({
        "code": CODE_VERSION,
        "kind": "loop",
        "loop": str(loop_header),
        "fn": canonical_function(fn),
        "features": features_dict(features),
        "machine": machine_dict(machine),
    })
