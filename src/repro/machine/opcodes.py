"""The IA-64 instruction subset known to the tools.

Mnemonics follow the IA-64 assembly syntax used by the paper's examples
(``ld8``, ``ld8.s``, ``chk.s``, ``cmp.eq``, ``br.cond`` ...). Completers
that do not change scheduling behaviour (``.eq``/``.lt``/... on ``cmp``,
size suffixes beyond the base family) are folded onto one table entry by
:func:`lookup_opcode`.

Latencies are *scheduling* latencies on Itanium 2 in cycles between a
producer's issue and the earliest dependent issue. They come from the
Itanium 2 (McKinley) micro-architecture documentation the paper cites
[15]; the two special cases the dependence builder knows about are

* ``cmp``/``tbit`` feeding a branch: 0 cycles (compare and dependent
  branch may share an instruction group),
* stores: latency applies to memory ordering edges, not register results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.machine.units import UnitKind


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one opcode family."""

    name: str
    unit: UnitKind
    latency: int = 1
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_call: bool = False
    is_return: bool = False
    is_compare: bool = False  # writes predicate registers
    is_spec_load: bool = False  # ld.s  (control speculative)
    is_adv_load: bool = False  # ld.a  (data speculative)
    is_check: bool = False  # chk.s / chk.a
    is_nop: bool = False
    may_trap: bool = False  # can raise an exception if executed
    multiply_executable: bool = True  # safe to re-execute with same operands

    @property
    def touches_memory(self):
        return self.is_load or self.is_store


def _op(name, unit, latency=1, **flags):
    return name, OpcodeInfo(name=name, unit=unit, latency=latency, **flags)


_LOAD = dict(is_load=True, may_trap=True, multiply_executable=True)
_STORE = dict(is_store=True, may_trap=True)

OPCODES = dict(
    [
        # --- A-type ALU (disperse to M or I), 1-cycle -----------------------
        _op("add", UnitKind.A),
        _op("adds", UnitKind.A),
        _op("addl", UnitKind.A),
        _op("sub", UnitKind.A),
        _op("and", UnitKind.A),
        _op("andcm", UnitKind.A),
        _op("or", UnitKind.A),
        _op("xor", UnitKind.A),
        _op("shladd", UnitKind.A),
        _op("mov", UnitKind.A),  # register move / move immediate
        _op("cmp", UnitKind.A, is_compare=True),
        _op("cmp4", UnitKind.A, is_compare=True),
        # --- M-type memory --------------------------------------------------
        _op("ld1", UnitKind.M, latency=2, **_LOAD),
        _op("ld2", UnitKind.M, latency=2, **_LOAD),
        _op("ld4", UnitKind.M, latency=2, **_LOAD),
        _op("ld8", UnitKind.M, latency=2, **_LOAD),
        _op("ld1.s", UnitKind.M, latency=2, is_load=True, is_spec_load=True),
        _op("ld2.s", UnitKind.M, latency=2, is_load=True, is_spec_load=True),
        _op("ld4.s", UnitKind.M, latency=2, is_load=True, is_spec_load=True),
        _op("ld8.s", UnitKind.M, latency=2, is_load=True, is_spec_load=True),
        _op("ld1.a", UnitKind.M, latency=2, is_load=True, is_adv_load=True),
        _op("ld2.a", UnitKind.M, latency=2, is_load=True, is_adv_load=True),
        _op("ld4.a", UnitKind.M, latency=2, is_load=True, is_adv_load=True),
        _op("ld8.a", UnitKind.M, latency=2, is_load=True, is_adv_load=True),
        _op("st1", UnitKind.M, latency=0, **_STORE),
        _op("st2", UnitKind.M, latency=0, **_STORE),
        _op("st4", UnitKind.M, latency=0, **_STORE),
        _op("st8", UnitKind.M, latency=0, **_STORE),
        _op("chk.s", UnitKind.M, latency=0, is_check=True, may_trap=True),
        _op("chk.a", UnitKind.M, latency=0, is_check=True, may_trap=True),
        _op("lfetch", UnitKind.M, latency=0),
        _op("setf", UnitKind.M, latency=5),
        _op("getf", UnitKind.M, latency=5),
        # --- I-type integer/shift --------------------------------------------
        _op("shl", UnitKind.I),
        _op("shr", UnitKind.I),
        _op("shr.u", UnitKind.I),
        _op("extr", UnitKind.I),
        _op("extr.u", UnitKind.I),
        _op("dep", UnitKind.I),
        _op("dep.z", UnitKind.I),
        _op("zxt1", UnitKind.I),
        _op("zxt2", UnitKind.I),
        _op("zxt4", UnitKind.I),
        _op("sxt1", UnitKind.I),
        _op("sxt2", UnitKind.I),
        _op("sxt4", UnitKind.I),
        _op("tbit", UnitKind.I, is_compare=True),
        _op("popcnt", UnitKind.I, latency=2),
        _op("mux1", UnitKind.I),
        _op("mux2", UnitKind.I),
        # --- F-type floating point -------------------------------------------
        _op("fma", UnitKind.F, latency=4),
        _op("fnma", UnitKind.F, latency=4),
        _op("fmpy", UnitKind.F, latency=4),
        _op("fadd", UnitKind.F, latency=4),
        _op("fsub", UnitKind.F, latency=4),
        _op("fcmp", UnitKind.F, latency=2, is_compare=True),
        _op("fcvt.fx", UnitKind.F, latency=4),
        _op("fcvt.xf", UnitKind.F, latency=4),
        _op("ldf", UnitKind.M, latency=6, **_LOAD),  # fp loads bypass L1D
        _op("stf", UnitKind.M, latency=0, **_STORE),
        # --- B-type branches --------------------------------------------------
        _op("br", UnitKind.B, latency=0, is_branch=True, multiply_executable=False),
        _op(
            "br.cond",
            UnitKind.B,
            latency=0,
            is_branch=True,
            multiply_executable=False,
        ),
        _op(
            "br.call",
            UnitKind.B,
            latency=0,
            is_branch=True,
            is_call=True,
            may_trap=True,
            multiply_executable=False,
        ),
        _op(
            "br.ret",
            UnitKind.B,
            latency=0,
            is_branch=True,
            is_return=True,
            multiply_executable=False,
        ),
        # --- long immediate ----------------------------------------------------
        _op("movl", UnitKind.L),
        # --- nops (bundler fillers) ---------------------------------------------
        _op("nop.m", UnitKind.M, latency=0, is_nop=True),
        _op("nop.i", UnitKind.I, latency=0, is_nop=True),
        _op("nop.f", UnitKind.F, latency=0, is_nop=True),
        _op("nop.b", UnitKind.B, latency=0, is_nop=True),
    ]
)

# Completers that may be appended to a family mnemonic without changing the
# scheduling model (condition codes, hints, orderings).
_STRIPPABLE_FAMILIES = (
    "cmp4",
    "cmp",
    "fcmp",
    "tbit",
    "br.call",
    "br.ret",
    "br.cond",
    "br",
    "ld8.s",
    "ld4.s",
    "ld2.s",
    "ld1.s",
    "ld8.a",
    "ld4.a",
    "ld2.a",
    "ld1.a",
    "ld8",
    "ld4",
    "ld2",
    "ld1",
    "ldf",
    "st8",
    "st4",
    "st2",
    "st1",
    "stf",
    "chk.s",
    "chk.a",
    "shr.u",
    "shr",
    "fcvt.fx",
    "fcvt.xf",
    "setf",
    "getf",
    "mov",
)


def lookup_opcode(mnemonic):
    """Resolve a full mnemonic (with completers) to its :class:`OpcodeInfo`.

    ``cmp.eq.unc`` → ``cmp``; ``br.cond.dptk.few`` → ``br.cond``;
    ``ld8.s`` stays its own entry because speculation changes scheduling.
    Raises :class:`~repro.errors.MachineError` for unknown mnemonics.
    """
    info = OPCODES.get(mnemonic)
    if info is not None:
        return info
    for family in _STRIPPABLE_FAMILIES:
        if mnemonic == family or mnemonic.startswith(family + "."):
            return OPCODES[family]
    raise MachineError(f"unknown opcode: {mnemonic!r}")
