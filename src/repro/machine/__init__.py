"""Itanium 2 machine model.

The scheduler, bundler and pipeline simulator all consult this package:

``repro.machine.units``
    Execution-unit kinds (M/I/F/B, A-type ALU that disperses to M or I,
    L+X long-immediate) and the Itanium 2 port counts.
``repro.machine.opcodes``
    The IA-64 instruction subset: mnemonics, unit requirements, latencies
    and semantic attributes (loads, stores, speculation variants, checks).
``repro.machine.templates``
    The 128-bit bundle templates with their slot-type strings and stop
    positions, as documented for the Itanium 2.
``repro.machine.itanium2``
    Ties it together into a :class:`MachineDescription` (``ITANIUM2``),
    including the per-cycle dispersal feasibility test used by the ILP
    resource constraints (eq. (6) of the paper).
"""

from repro.machine.units import UnitKind, Itanium2Ports
from repro.machine.opcodes import OpcodeInfo, lookup_opcode, OPCODES
from repro.machine.templates import Template, TEMPLATES, slot_accepts
from repro.machine.itanium2 import MachineDescription, ITANIUM2

__all__ = [
    "UnitKind",
    "Itanium2Ports",
    "OpcodeInfo",
    "lookup_opcode",
    "OPCODES",
    "Template",
    "TEMPLATES",
    "slot_accepts",
    "MachineDescription",
    "ITANIUM2",
]
