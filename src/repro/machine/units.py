"""Execution-unit kinds and Itanium 2 port counts.

IA-64 instructions are typed by the functional-unit class they need:

* ``M`` — memory (loads, stores, some moves, ``chk``),
* ``I`` — integer/shift/multimedia,
* ``F`` — floating point,
* ``B`` — branch,
* ``A`` — "ALU" instructions encodable as either M or I (add, logical,
  compare, ...); the dispersal hardware routes them to whichever M or I
  port is free,
* ``L`` — long-immediate (``movl``), occupying the L+X slot pair of an
  MLX bundle (counted as two issue slots).

The Itanium 2 (McKinley) can disperse two bundles — six instructions — per
cycle to 4 M ports, 2 I ports, 2 F ports and 3 B ports [Intel, 2002; paper
Sec. 1 and 4.2].
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class UnitKind(enum.Enum):
    """Functional-unit class required by an instruction."""

    M = "M"
    I = "I"  # noqa: E741 - the architectural name
    F = "F"
    B = "B"
    A = "A"  # ALU: dispersable to M or I
    L = "L"  # movl: L+X slot pair


@dataclass(frozen=True)
class Itanium2Ports:
    """Issue-port inventory of one Itanium 2 core."""

    issue_width: int = 6
    bundles_per_cycle: int = 2
    m_ports: int = 4
    i_ports: int = 2
    f_ports: int = 2
    b_ports: int = 3

    def feasible(self, counts):
        """Dispersal feasibility of one cycle's instruction group.

        ``counts`` maps :class:`UnitKind` to the number of instructions of
        that kind issued this cycle. A-type instructions may use any M or I
        port; L-type occupies two issue slots and one I port (the X slot is
        executed by the I unit on Itanium 2).
        """
        m_only = counts.get(UnitKind.M, 0)
        i_only = counts.get(UnitKind.I, 0)
        f_cnt = counts.get(UnitKind.F, 0)
        b_cnt = counts.get(UnitKind.B, 0)
        a_cnt = counts.get(UnitKind.A, 0)
        l_cnt = counts.get(UnitKind.L, 0)
        slots = m_only + i_only + f_cnt + b_cnt + a_cnt + 2 * l_cnt
        if slots > self.issue_width:
            return False
        if m_only > self.m_ports:
            return False
        if i_only + l_cnt > self.i_ports:
            return False
        if f_cnt > self.f_ports:
            return False
        if b_cnt > self.b_ports:
            return False
        # A-type overflow into the remaining M/I ports.
        spare = (self.m_ports - m_only) + (self.i_ports - i_only - l_cnt)
        return a_cnt <= spare
