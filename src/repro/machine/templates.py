"""IA-64 bundle templates.

A bundle packs three 41-bit instruction slots plus a 5-bit template code.
The template determines the functional-unit type of each slot and where
*stops* (instruction-group boundaries, written ``;;``) may fall. The
Itanium 2 supports the templates below; the missing codes (MI;I variants
of others, etc.) do not exist architecturally.

The bundler uses two properties per template:

* ``slots`` — the unit-type string, e.g. ``("M", "I", "I")``;
* ``stop_options`` — where a stop may be placed: ``2`` after the last
  slot (the ``;;`` variant), ``0``/``1`` inside the bundle (only ``M;MI``
  and ``MI;I`` exist), or ``None`` for no stop, in which case the
  instruction group continues into the next bundle.

The L+X pair of ``MLX`` is modeled as one logical slot of type ``L``
occupying slot indices 1 and 2 (a ``movl`` consumes both).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.units import UnitKind


@dataclass(frozen=True)
class Template:
    """One architectural bundle template."""

    name: str
    slots: tuple
    stop_options: tuple  # entries: None (no stop), or int position (stop after slot i)

    @property
    def has_mid_stop(self):
        return any(pos is not None and pos < 2 for pos in self.stop_options)


TEMPLATES = (
    Template("MII", ("M", "I", "I"), (None, 1, 2)),
    Template("MLX", ("M", "L", "X"), (None, 2)),
    Template("MMI", ("M", "M", "I"), (None, 0, 2)),
    Template("MFI", ("M", "F", "I"), (None, 2)),
    Template("MMF", ("M", "M", "F"), (None, 2)),
    Template("MIB", ("M", "I", "B"), (None, 2)),
    Template("MBB", ("M", "B", "B"), (None, 2)),
    Template("BBB", ("B", "B", "B"), (None, 2)),
    Template("MMB", ("M", "M", "B"), (None, 2)),
    Template("MFB", ("M", "F", "B"), (None, 2)),
)

TEMPLATES_BY_NAME = {t.name: t for t in TEMPLATES}


def slot_accepts(slot_type, unit):
    """Can an instruction needing ``unit`` occupy a slot of ``slot_type``?

    A-type ALU instructions fit both M and I slots; ``movl`` (L) needs the
    architectural L slot (the X half is implied and must stay empty); nothing
    else may sit in an L or X slot.
    """
    if slot_type == "M":
        return unit in (UnitKind.M, UnitKind.A)
    if slot_type == "I":
        return unit in (UnitKind.I, UnitKind.A)
    if slot_type == "F":
        return unit is UnitKind.F
    if slot_type == "B":
        return unit is UnitKind.B
    if slot_type == "L":
        return unit is UnitKind.L
    if slot_type == "X":
        return False  # consumed by the L slot's movl
    raise ValueError(f"unknown slot type {slot_type!r}")


def nop_for_slot(slot_type):
    """Mnemonic of the nop that fills an empty slot of ``slot_type``."""
    return {
        "M": "nop.m",
        "I": "nop.i",
        "F": "nop.f",
        "B": "nop.b",
        "L": "nop.i",  # an empty L slot is encoded as a long nop
        "X": "nop.i",
    }[slot_type]
