"""The Itanium 2 machine description used across the tool stack."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.machine.opcodes import lookup_opcode
from repro.machine.templates import TEMPLATES
from repro.machine.units import Itanium2Ports, UnitKind


@dataclass(frozen=True)
class MachineDescription:
    """Everything the scheduler/bundler/simulator need to know.

    Instances are immutable; experiment variants (e.g. a hypothetical
    8-wide EPIC core for the "research tool" use case of paper Sec. 7)
    are made with :meth:`with_ports`.
    """

    name: str = "itanium2"
    ports: Itanium2Ports = field(default_factory=Itanium2Ports)
    templates: tuple = TEMPLATES
    # Pipeline-simulator parameters (perf substrate; see DESIGN.md):
    l1d_hit_cycles: int = 1  # charged inside the scheduling latency
    l1d_miss_penalty: int = 7  # additional cycles to L2 on a miss
    l2_miss_penalty: int = 100  # additional cycles to memory
    branch_misp_penalty: int = 6
    taken_branch_bubble: int = 2  # front-end bubble on taken branches
    spec_check_failure_penalty: int = 120  # branch to recovery code

    # -- queries -------------------------------------------------------------
    def unit_of(self, mnemonic):
        """Unit kind required by a mnemonic."""
        return lookup_opcode(mnemonic).unit

    def latency_of(self, mnemonic):
        return lookup_opcode(mnemonic).latency

    @property
    def issue_width(self):
        return self.ports.issue_width

    def unit_capacity(self, kind):
        """Port count for a unit kind (A shares M+I, reported as their sum)."""
        ports = self.ports
        return {
            UnitKind.M: ports.m_ports,
            UnitKind.I: ports.i_ports,
            UnitKind.F: ports.f_ports,
            UnitKind.B: ports.b_ports,
            UnitKind.A: ports.m_ports + ports.i_ports,
            UnitKind.L: ports.i_ports,
        }[kind]

    def group_feasible(self, units):
        """Dispersal feasibility of a group given its unit-kind list."""
        counts = {}
        for unit in units:
            counts[unit] = counts.get(unit, 0) + 1
        return self.ports.feasible(counts)

    # -- variants -------------------------------------------------------------
    def with_ports(self, **kwargs):
        """A copy with modified port counts (micro-architecture studies)."""
        return replace(self, ports=replace(self.ports, **kwargs))


ITANIUM2 = MachineDescription()
