"""``tia-bench-diff``: noise-aware diff of two benchmark/metric snapshots.

Usage::

    tia-bench-diff BASE.json NEW.json [NEW2.json ...] [--gate] [--json]
                   [--rel R] [--section NAME=R] [--abs-seconds S]

Compares the committed baseline (``BENCH_solver.json``,
``BENCH_chaos.json`` or a ``--metrics`` JSON dump from :mod:`repro.obs`)
against one or more fresh snapshots of the same shape.  With several NEW
files the *median* value per series is compared (median-of-k: re-running
the suite k times and diffing the medians suppresses scheduler noise
without hiding a real regression).

The verdict is **noise-aware** instead of the old hardcoded "2x on one
wall-time number" CI gate:

* only the *intersection* of numeric leaves is compared — adding or
  removing a section never fails the gate;
* a leaf regresses only when it worsens by more than its section's
  **relative** threshold *and* by more than the metric's **absolute**
  floor (a 3x jump from 2 ms to 6 ms is timer jitter, not a regression;
  a 5% jump from 40 s to 42 s is within run-to-run variance);
* direction comes from the key's suffix — ``*_seconds``/``*seconds``/
  ``time``/``elapsed`` lower-is-better, ``*_per_sec``/``*speedup``
  higher-is-better, ``*ratio`` lower-is-better, ``failures``/``retried``
  lower-is-better; booleans gate on true→false (``objectives_match``
  must not decay); configuration echoes (``scale``, ``workers``, ...)
  and untyped counts are reported as informational, never gated.

Exit status with ``--gate``: 0 when no leaf regressed, 1 otherwise.
Default output is a markdown table; ``--json`` emits the machine form.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

# Keys that echo configuration, identity or environment rather than
# measure performance; never gated, never listed as changes.
CONFIG_KEYS = {
    "scale", "time_limit", "workers", "repeats", "models", "routines",
    "rows", "cols", "model", "routine", "seed_commit", "status",
    "faults", "fault_mix", "rounds", "invocations", "input_set",
}

# Per-section default relative thresholds. ``sweep`` keeps the old CI
# gate's 2x headroom (the nine-routine wall time is dominated by solver
# search-order luck); micro-sections with sub-second timings get even
# more because their absolute floors do the real work.
SECTION_REL = {
    "root_lp": 1.0,
    "bb_throughput": 0.75,
    "cut_resolve": 1.0,
    "sweep": 1.0,
    "obs_overhead": 0.10,
    # Serving benchmarks (BENCH_serve.json): the gated signals are the
    # speedup/ratio/boolean leaves and the hit latencies (whose 0.25 s
    # abs floor only trips when the cache stops serving); the raw
    # cold-solve wall times are sub-second context numbers dominated by
    # search-order luck and host contention, so they get wide headroom.
    "cold_vs_hit": 3.0,
    "family_warm": 3.0,
    "hit_rate_sweep": 3.0,
    # Concurrent overload run: latency percentiles under deliberate
    # saturation are scheduler-timing noise; the hard signals are the
    # no_request_raised boolean and the shed accounting invariants.
    "overload": 3.0,
    # Region decomposition vs whole-function ILP: the whole-function
    # baseline is pinned at the time limit on the full-scale routines,
    # so wall times are stable there; the decomposed side is small-MIP
    # search-order luck, hence sweep-sized headroom. The hard quality
    # signals are the booleans (bundles_no_worse, verified).
    "decompose": 1.0,
    # Journaling overhead on the overload burst: the headline is the
    # journal_overhead_ratio (plain/journaled throughput, ~1.0 when
    # journaling is free) — held tight like obs_overhead so a >5%-ish
    # regression past the ratio's 0.03 absolute floor gates.  The raw
    # throughput leaves are named *_rps precisely so they stay info
    # context (overload-style noise); the ratio carries the gate.
    "journal_overhead": 0.05,
    # Portfolio racing: wall-clock depends on how many lanes run
    # concurrently (lane_threads is recorded in the section, and the
    # committed baseline came from a single-core host), so the raw
    # seconds get the serving-style headroom. The hard gates are the
    # quality_no_worse / schedules_match_winner booleans and the
    # portfolio_vs_best_ratio leaf with its tight absolute floor.
    "portfolio": 3.0,
    # Software pipelining: per-loop ILP solves are sub-second and
    # search-order dependent, so wall-clock leaves get wide headroom.
    # The hard gates are the mii_achieved_80pct / oracle_all_passed /
    # chaos_degraded booleans and the mean_overlap_speedup leaf.
    "swp": 3.0,
}
DEFAULT_REL = 0.5

# Absolute worsening floors by metric kind: below these the relative
# test is meaningless noise.
ABS_FLOORS = {
    "seconds": 0.25,    # wall-clock seconds
    "per_sec": 50.0,    # throughput
    "speedup": 0.20,    # dimensionless speedup factors
    "ratio": 0.03,      # overhead ratios near 1.0
    "count": 0.5,       # integral counts (failures, retried)
}


def classify(path):
    """``(direction, kind)`` for one dotted leaf path.

    direction: ``"lower"`` / ``"higher"`` is better, ``"bool"`` gates on
    true→false, ``"info"`` is never gated.
    """
    leaf = path.split(".")[-1]
    if leaf in CONFIG_KEYS:
        return "skip", None
    if leaf.endswith("_per_sec"):
        return "higher", "per_sec"
    if leaf.endswith("speedup"):
        return "higher", "speedup"
    if leaf.endswith("ratio"):
        return "lower", "ratio"
    if "seconds" in leaf or leaf in ("time", "elapsed"):
        return "lower", "seconds"
    if leaf in ("failures", "retried"):
        return "lower", "count"
    return "info", None


def section_of(path):
    """The benchmark section a path belongs to (for its rel threshold)."""
    for part in path.split("."):
        if part in SECTION_REL:
            return part
    return None


def flatten(doc, prefix=""):
    """Numeric/bool leaves of a nested snapshot as ``{path: value}``.

    Lists of scalars collapse to their length (``failures`` and friends);
    lists of objects (per-round detail) are skipped — they are records,
    not series.
    """
    out = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value, path))
    elif isinstance(doc, list):
        if prefix and not any(isinstance(item, (dict, list)) for item in doc):
            out[prefix] = float(len(doc))
    elif isinstance(doc, bool):
        out[prefix] = doc
    elif isinstance(doc, (int, float)):
        out[prefix] = float(doc)
    return out


def median_snapshot(snapshots):
    """Per-path median across k flattened snapshots (median-of-k)."""
    if len(snapshots) == 1:
        return snapshots[0]
    merged = {}
    for path in set().union(*snapshots):
        values = [snap[path] for snap in snapshots if path in snap]
        if any(isinstance(v, bool) for v in values):
            # A bool series is healthy only if every run agrees on true.
            merged[path] = all(values)
        else:
            merged[path] = statistics.median(values)
    return merged


def diff_snapshots(base, new, rel_overrides=None, default_rel=None,
                   abs_floors=None):
    """Compare flattened snapshots; returns the machine-form verdict."""
    rel_overrides = rel_overrides or {}
    abs_floors = dict(ABS_FLOORS, **(abs_floors or {}))
    findings = []
    shared = sorted(set(base) & set(new))
    for path in shared:
        direction, kind = classify(path)
        if direction == "skip":
            continue
        b, n = base[path], new[path]
        if isinstance(b, bool) or isinstance(n, bool):
            if bool(b) and not bool(n):
                findings.append({
                    "path": path, "base": b, "new": n,
                    "verdict": "regression",
                    "why": "boolean invariant decayed (true -> false)",
                })
            elif bool(n) and not bool(b):
                findings.append({
                    "path": path, "base": b, "new": n,
                    "verdict": "improvement", "why": "false -> true",
                })
            continue
        delta = n - b
        if direction == "info":
            if b != n:
                findings.append({
                    "path": path, "base": b, "new": n, "delta": delta,
                    "verdict": "info", "why": "untyped metric changed",
                })
            continue
        worsening = delta if direction == "lower" else -delta
        if worsening <= 0:
            if worsening < 0:
                findings.append({
                    "path": path, "base": b, "new": n, "delta": delta,
                    "verdict": "improvement",
                    "why": f"{direction}-is-better moved the right way",
                })
            continue
        section = section_of(path)
        rel_limit = rel_overrides.get(
            section,
            SECTION_REL.get(section, default_rel or DEFAULT_REL)
            if default_rel is None
            else default_rel,
        )
        abs_floor = abs_floors.get(kind, 0.0)
        rel = worsening / abs(b) if b else float("inf")
        verdict = {
            "path": path, "base": b, "new": n, "delta": delta,
            "relative": rel, "rel_limit": rel_limit,
            "abs_floor": abs_floor, "section": section,
        }
        if rel > rel_limit and worsening > abs_floor:
            verdict["verdict"] = "regression"
            verdict["why"] = (
                f"worsened {rel:.0%} (> {rel_limit:.0%}) and "
                f"{worsening:.4g} (> floor {abs_floor:g})"
            )
            findings.append(verdict)
        elif rel > rel_limit or worsening > abs_floor:
            verdict["verdict"] = "noise"
            verdict["why"] = (
                "within noise: only one of the relative/absolute "
                "thresholds exceeded"
            )
            findings.append(verdict)
    regressions = [f for f in findings if f["verdict"] == "regression"]
    return {
        "compared": len(shared),
        "base_only": sorted(set(base) - set(new)),
        "new_only": sorted(set(new) - set(base)),
        "findings": findings,
        "regressions": len(regressions),
        "verdict": "fail" if regressions else "pass",
    }


def render_markdown(report, base_label, new_label):
    lines = [
        f"## bench diff: `{base_label}` vs `{new_label}`",
        "",
        f"- series compared: **{report['compared']}**",
        f"- regressions: **{report['regressions']}**",
        f"- verdict: **{report['verdict'].upper()}**",
        "",
    ]
    if report["findings"]:
        lines += [
            "| series | base | new | verdict | why |",
            "|---|---:|---:|---|---|",
        ]
        order = {"regression": 0, "noise": 1, "improvement": 2, "info": 3}
        for f in sorted(report["findings"],
                        key=lambda f: (order[f["verdict"]], f["path"])):
            lines.append(
                f"| `{f['path']}` | {_cell(f['base'])} | {_cell(f['new'])} "
                f"| {f['verdict']} | {f['why']} |"
            )
    else:
        lines.append("no measurable differences.")
    dropped = report["base_only"]
    added = report["new_only"]
    if dropped:
        lines += ["", f"- series only in base (ignored): {len(dropped)}"]
    if added:
        lines += [f"- series only in new (ignored): {len(added)}"]
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def load_flat(path):
    with open(path) as handle:
        return flatten(json.load(handle))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="tia-bench-diff", description=__doc__.splitlines()[0]
    )
    parser.add_argument("base", help="committed baseline snapshot (JSON)")
    parser.add_argument(
        "new", nargs="+",
        help="fresh snapshot(s); several are reduced to the median",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 when any series regressed",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-form verdict"
    )
    parser.add_argument(
        "--rel", type=float, default=None,
        help="override the relative threshold for every section",
    )
    parser.add_argument(
        "--section", action="append", default=[], metavar="NAME=R",
        help="per-section relative threshold override (repeatable)",
    )
    parser.add_argument(
        "--abs-seconds", type=float, default=None,
        help="absolute worsening floor for wall-clock series (seconds)",
    )
    args = parser.parse_args(argv)

    overrides = {}
    for spec in args.section:
        name, _, value = spec.partition("=")
        try:
            overrides[name] = float(value)
        except ValueError:
            parser.error(f"bad --section spec {spec!r} (want NAME=R)")
    floors = {}
    if args.abs_seconds is not None:
        floors["seconds"] = args.abs_seconds

    base = load_flat(args.base)
    new = median_snapshot([load_flat(path) for path in args.new])
    report = diff_snapshots(
        base, new, rel_overrides=overrides, default_rel=args.rel,
        abs_floors=floors,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        new_label = (
            args.new[0] if len(args.new) == 1
            else f"median of {len(args.new)} runs"
        )
        print(render_markdown(report, args.base, new_label))
    if args.gate and report["verdict"] == "fail":
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
