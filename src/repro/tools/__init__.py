"""Command-line tools and experiment drivers.

* :mod:`repro.tools.experiments` — runs the paper's experiments (one
  routine or the full Table 1/2 and Figure 7 sweeps) and computes every
  reported column;
* :mod:`repro.tools.report` — ``tia-report`` CLI rendering those tables
  next to the paper's published values;
* :mod:`repro.tools.optimize` — ``tia-opt`` CLI: the postpass optimizer
  over a TIA assembly file (parse → optimize → emit).
"""
