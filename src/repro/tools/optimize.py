"""``tia-opt``: the postpass optimizer as a command-line filter.

Reads a TIA assembly file (see :mod:`repro.ir.parser` for the format),
runs the ILP scheduler and writes the optimized routine — the workflow
of paper Sec. 6.1 ("The assembly files are directly input to our
optimizer ... a bundler generates the final assembly output").

Usage::

    tia-opt INPUT.tia [-o OUTPUT.tia] [--no-speculation] [--no-cyclic]
            [--no-partial-ready] [--time-limit S]
            [--backend highs|bb|portfolio]
            [--portfolio-backends R1,R2,...] [--portfolio-seed N]
            [--portfolio-threads N]
            [--cache DIR] [--schedule] [--bundles]
            [--trace TRACE.json] [--metrics METRICS.json|.prom]
            [--events EVENTS.jsonl] [--html DASHBOARD.html]

Observability (:mod:`repro.obs`): any of ``--trace`` (Chrome
``trace_event`` JSON, loadable in Perfetto / ``chrome://tracing``),
``--metrics`` (flat JSON, or Prometheus text when the path ends in
``.prom``), ``--events`` (raw JSONL event log) or ``--html`` (the
self-contained dashboard page, :mod:`repro.obs.dashboard`) turns
recording on for the run; ``REPRO_OBS=1`` does the same without
writing files.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.ir.parser import parse_functions
from repro.ir.printer import format_function, format_schedule
from repro.sched.scheduler import ScheduleFeatures, optimize_function


def _emit_function(result):
    """Render the optimized schedule back to TIA text.

    Recovery code for used speculation groups is materialized as real
    blocks at the end of the routine (the paper added these by hand,
    Sec. 6.1): each re-executes the faulting load (non-speculatively)
    plus the uses that were scheduled before the check, then branches
    back to the check's block.
    """
    from repro.ir.block import BasicBlock
    from repro.ir.function import Function

    fn = result.fn
    schedule = result.output_schedule
    out = Function(name=fn.name, live_in=set(fn.live_in), live_out=set(fn.live_out))
    for name in schedule.block_order:
        block = BasicBlock(name=name, freq=fn.block(name).freq)
        for instr in schedule.instructions_in(name):
            block.instructions.append(instr)
        out.add_block(block)

    check_blocks = {
        p.instr.root_origin: p.block
        for p in schedule.placements()
        if p.instr.is_check
    }
    # A degraded result (quality "fallback_input") carries the untouched
    # input schedule and no reconstruction — there are no speculation
    # groups and hence no recovery blocks to materialize.
    recon = result.reconstruction
    for stub, group in zip(
        recon.recovery_stubs if recon is not None else (),
        recon.selected_groups if recon is not None else (),
    ):
        block = BasicBlock(name=stub.label, freq=0.0)
        reload_ = group.original.copy(
            dests=list(group.spec_load.dests), pred=None, origin=None
        )
        block.instructions.append(reload_)
        for use in stub.reexecuted_uses:
            block.instructions.append(use.copy(origin=None))
        resume = check_blocks.get(group.check)
        if resume is not None:
            from repro.ir.parser import parse_instruction

            block.instructions.append(parse_instruction(f"br {resume}"))
        out.add_block(block)

    for edge in fn.edges:
        out.add_edge(edge.src, edge.dst, edge.prob)
    return format_function(out)


def main(argv=None):
    parser = argparse.ArgumentParser(prog="tia-opt", description=__doc__)
    parser.add_argument("input", help="TIA assembly file ('-' for stdin)")
    parser.add_argument("-o", "--output", default=None)
    parser.add_argument("--no-speculation", action="store_true")
    parser.add_argument("--no-data-speculation", action="store_true")
    parser.add_argument("--no-cyclic", action="store_true")
    parser.add_argument("--no-partial-ready", action="store_true")
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument(
        "--no-decompose",
        action="store_true",
        help="disable region decomposition (repro.sched.decompose)",
    )
    parser.add_argument(
        "--decompose-min",
        type=int,
        default=None,
        metavar="N",
        help="decompose only routines with at least N instructions "
        "(default: ScheduleFeatures.decompose_min_instructions)",
    )
    parser.add_argument(
        "--swp",
        action="store_true",
        help="software-pipeline counted inner loops after scheduling "
        "(repro.sched.modulo; per-loop summaries land in the report)",
    )
    parser.add_argument(
        "--swp-max-ii",
        type=int,
        default=None,
        metavar="N",
        help="II ladder ceiling (default: ScheduleFeatures.swp_max_ii)",
    )
    parser.add_argument(
        "--swp-max-stages",
        type=int,
        default=None,
        metavar="N",
        help="stage-count bound for the modulo ILP "
        "(default: ScheduleFeatures.swp_max_stages)",
    )
    parser.add_argument(
        "--swp-time-limit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-loop II ladder budget "
        "(default: ScheduleFeatures.swp_time_limit)",
    )
    parser.add_argument(
        "--max-hops",
        type=int,
        default=None,
        metavar="N",
        help="bound code motion to N blocks of topological distance "
        "(also required for region decomposition to find legal cuts "
        "when speculation is enabled)",
    )
    parser.add_argument("--time-limit", type=float, default=120.0)
    parser.add_argument(
        "--backend", choices=["highs", "bb", "portfolio"], default="highs"
    )
    parser.add_argument(
        "--portfolio-backends",
        metavar="R1,R2,...",
        default=None,
        help="portfolio runner roster (e.g. highs,bb,ordered:highs); "
        "only meaningful with --backend portfolio",
    )
    parser.add_argument(
        "--portfolio-seed",
        type=int,
        default=0,
        metavar="N",
        help="deterministic tie-break seed for same-tick photo finishes",
    )
    parser.add_argument(
        "--portfolio-threads",
        type=int,
        default=None,
        metavar="N",
        help="cap on concurrently racing portfolio lanes (default: all)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="route solves through the schedule cache (repro.serve) in DIR",
    )
    parser.add_argument(
        "--schedule", action="store_true", help="print the cycle-level schedule"
    )
    parser.add_argument(
        "--bundles", action="store_true", help="print the bundle encoding"
    )
    parser.add_argument(
        "--dot",
        metavar="PREFIX",
        default=None,
        help="write PREFIX.cfg.dot / PREFIX.ddg.dot / PREFIX.sched.dot",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace_event JSON of the run (enables recording)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write the metrics dump (JSON, or Prometheus text for *.prom)",
    )
    parser.add_argument(
        "--events",
        metavar="FILE",
        default=None,
        help="write the raw JSONL event log (enables recording)",
    )
    parser.add_argument(
        "--html",
        metavar="FILE",
        default=None,
        help="write the self-contained HTML dashboard (enables recording)",
    )
    args = parser.parse_args(argv)

    want_obs = args.trace or args.metrics or args.events or args.html
    if want_obs:
        from repro.obs import core as obs

        obs.enable()

    if args.input == "-":
        text = sys.stdin.read()
    else:
        with open(args.input) as handle:
            text = handle.read()

    portfolio_kwargs = {}
    if args.portfolio_backends is not None:
        portfolio_kwargs["portfolio_backends"] = tuple(
            entry.strip()
            for entry in args.portfolio_backends.split(",")
            if entry.strip()
        )
    features = ScheduleFeatures(
        speculation=not args.no_speculation,
        data_speculation=not args.no_data_speculation,
        cyclic=not args.no_cyclic,
        partial_ready=not args.no_partial_ready,
        verify=not args.no_verify,
        decompose=not args.no_decompose,
        max_hops=args.max_hops,
        time_limit=args.time_limit,
        backend=args.backend,
        portfolio_seed=args.portfolio_seed,
        portfolio_threads=args.portfolio_threads,
        **portfolio_kwargs,
    )
    if args.decompose_min is not None:
        features = replace(
            features, decompose_min_instructions=args.decompose_min
        )
    if args.swp:
        features = replace(features, swp=True)
    for flag, name in (
        (args.swp_max_ii, "swp_max_ii"),
        (args.swp_max_stages, "swp_max_stages"),
        (args.swp_time_limit, "swp_time_limit"),
    ):
        if flag is not None:
            features = replace(features, **{name: flag})

    outputs = []
    for fn in parse_functions(text):
        if args.cache:
            from repro.serve.service import cached_optimize

            outcome = cached_optimize(fn, features, cache_dir=args.cache)
            result = outcome.result
            print(
                f"cache: {outcome.kind} ({outcome.elapsed:.3f}s)",
                file=sys.stderr,
            )
        else:
            result = optimize_function(fn, features)
        print(result.report(), file=sys.stderr)
        if args.schedule:
            print(format_schedule(result.output_schedule, result.fn), file=sys.stderr)
        if args.bundles:
            for block in result.output_schedule.block_order:
                for bundle in result.bundles_out.bundles_of(block):
                    print(f"  {block}: {bundle!r}", file=sys.stderr)
        if args.dot:
            from repro.ir.cfg import CfgInfo
            from repro.ir.ddg import build_dependence_graph
            from repro.ir.dot import cfg_to_dot, ddg_to_dot, schedule_to_dot
            from repro.ir.liveness import compute_liveness

            work = result.fn
            cfg = CfgInfo(work)
            ddg = build_dependence_graph(work, cfg, compute_liveness(work))
            for suffix, text_out in (
                ("cfg", cfg_to_dot(work, cfg, result.output_schedule)),
                ("ddg", ddg_to_dot(work, ddg)),
                ("sched", schedule_to_dot(work, result.output_schedule)),
            ):
                with open(f"{args.dot}.{suffix}.dot", "w") as handle:
                    handle.write(text_out)
        outputs.append(_emit_function(result))

    text_out = "\n".join(outputs)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text_out)
    else:
        print(text_out)

    if want_obs:
        from repro.obs import export as obs_export

        if args.trace:
            obs_export.write_chrome_trace(args.trace)
            print(f"wrote Chrome trace to {args.trace}", file=sys.stderr)
        if args.metrics:
            obs_export.write_metrics(args.metrics)
            print(f"wrote metrics to {args.metrics}", file=sys.stderr)
        if args.events:
            obs_export.write_jsonl(args.events)
            print(f"wrote event log to {args.events}", file=sys.stderr)
        if args.html:
            from repro.obs import dashboard as obs_dashboard

            obs_dashboard.write_dashboard(
                args.html,
                trace=obs_export.chrome_trace(),
                metrics=obs_export.metrics_dict(),
                title=f"tia-opt {args.input}",
            )
            print(f"wrote dashboard to {args.html}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
