"""``tia-report``: render the reproduced tables next to the paper's values.

Usage::

    tia-report table1 [--scale S] [--routines a,b,c] [--json]
    tia-report table2 [--scale S] [--json]
    tia-report fig7   [--scale S] [--json]
    tia-report dashboard --html OUT.html [--trace T.json] [--metrics M.json]

``--json`` emits a machine-readable document instead of the rendered
tables: the measured rows, the published values, and — for the table
artifacts — each routine's fallback-ladder tier, final optimality gap,
paper-metric analytics and per-phase timing breakdown from the
optimizer's span tree (:mod:`repro.obs`).

``dashboard`` renders the self-contained HTML observatory page
(:mod:`repro.obs.dashboard`) from exported artifacts — a Chrome trace
or JSONL event log via ``--trace`` and/or a metrics dump via
``--metrics``; with neither, it runs the table-1 routines under a live
recorder and renders that run.

The paper's published numbers ship with the tool so every report shows
reproduced-vs-published side by side; EXPERIMENTS.md is generated from
the same data.
"""

from __future__ import annotations

import argparse
import sys

from repro.tools.experiments import run_fig7, run_table

# Published values (Tables 1 and 2 of the paper), keyed by routine.
PAPER_TABLE1 = {
    "longest_match": dict(weight=0.68, speedup_program=0.2897, speedup_routine=0.43, static_red=0.44, ins_in=191, ins_out=230, delta_ins=0.20, delta_bundles=0.07, ipc_in=2.4, ipc_out=5.4),
    "deflate": dict(weight=0.14, speedup_program=0.0172, speedup_routine=0.12, static_red=0.19, ins_in=226, ins_out=233, delta_ins=0.03, delta_bundles=-0.03, ipc_in=2.6, ipc_out=3.6),
    "send_bits": dict(weight=0.15, speedup_program=0.0305, speedup_routine=0.20, static_red=0.30, ins_in=86, ins_out=95, delta_ins=0.10, delta_bundles=0.03, ipc_in=2.6, ipc_out=4.7),
    "firstone": dict(weight=0.10, speedup_program=0.0088, speedup_routine=0.09, static_red=0.37, ins_in=37, ins_out=42, delta_ins=0.14, delta_bundles=0.00, ipc_in=2.6, ipc_out=4.8),
    "get_heap_head": dict(weight=0.30, speedup_program=0.0425, speedup_routine=0.14, static_red=0.43, ins_in=71, ins_out=94, delta_ins=0.32, delta_bundles=0.09, ipc_in=2.3, ipc_out=4.6),
    "add_to_heap": dict(weight=0.13, speedup_program=0.0117, speedup_routine=0.09, static_red=0.17, ins_in=108, ins_out=119, delta_ins=0.10, delta_bundles=0.04, ipc_in=2.3, ipc_out=4.1),
    "qSort3": dict(weight=0.12, speedup_program=0.0193, speedup_routine=0.16, static_red=0.26, ins_in=241, ins_out=279, delta_ins=0.16, delta_bundles=0.04, ipc_in=2.9, ipc_out=4.5),
    "xfree": dict(weight=0.10, speedup_program=0.0076, speedup_routine=0.07, static_red=0.22, ins_in=46, ins_out=50, delta_ins=0.09, delta_bundles=-0.05, ipc_in=2.3, ipc_out=3.6),
    "prune_match": dict(weight=0.06, speedup_program=0.0073, speedup_routine=0.12, static_red=0.41, ins_in=69, ins_out=84, delta_ins=0.22, delta_bundles=-0.03, ipc_in=2.5, ipc_out=5.4),
}

PAPER_TABLE1_AVG = dict(
    speedup_routine=0.16, static_red=0.31, delta_ins=0.15, delta_bundles=0.02, ipc_in=2.6, ipc_out=4.5
)

PAPER_TABLE2 = {
    "longest_match": dict(blocks=26, loops=2, spec_in=15, spec_poss=47, spec_out=24, constraints=5619, variables=2865, nodes=500, time=141),
    "deflate": dict(blocks=37, loops=3, spec_in=4, spec_poss=28, spec_out=7, constraints=4570, variables=2686, nodes=2, time=3),
    "send_bits": dict(blocks=12, loops=0, spec_in=0, spec_poss=10, spec_out=1, constraints=2583, variables=1417, nodes=8, time=4),
    "firstone": dict(blocks=8, loops=0, spec_in=0, spec_poss=7, spec_out=5, constraints=458, variables=277, nodes=0, time=0),
    "get_heap_head": dict(blocks=9, loops=2, spec_in=3, spec_poss=23, spec_out=11, constraints=4126, variables=1673, nodes=1, time=13),
    "add_to_heap": dict(blocks=12, loops=1, spec_in=2, spec_poss=16, spec_out=5, constraints=3248, variables=1665, nodes=0, time=2),
    "qSort3": dict(blocks=22, loops=4, spec_in=7, spec_poss=44, spec_out=18, constraints=10723, variables=4984, nodes=914, time=179),
    "xfree": dict(blocks=9, loops=1, spec_in=2, spec_poss=7, spec_out=4, constraints=759, variables=403, nodes=6, time=0),
    "prune_match": dict(blocks=10, loops=1, spec_in=4, spec_poss=19, spec_out=11, constraints=1294, variables=766, nodes=2, time=1),
}

# Figure 7 (read off the bars): average reduction per extension level.
PAPER_FIG7 = {
    "base": 0.21,
    "+speculation": 0.25,
    "+cyclic": 0.28,
    "+partial-ready": 0.31,
}


def render_table1(experiments):
    header = (
        f"{'Routine':15s} {'Wgt':>5s} {'SpdP':>7s} {'SpdR':>7s} {'Red.':>7s} "
        f"{'InsIn':>6s} {'InsOut':>7s} {'dIns':>6s} {'dBndl':>6s} "
        f"{'IPCi':>5s} {'IPCo':>5s}"
    )
    lines = ["Table 1 — measured (this reproduction)", header]
    totals = {"speedup_routine": 0, "static_red": 0, "delta_ins": 0,
              "delta_bundles": 0, "ipc_in": 0, "ipc_out": 0}
    for experiment in experiments:
        row = experiment.table1_row()
        lines.append(
            f"{row['routine']:15s} {row['weight']:5.0%} "
            f"{row['speedup_program']:7.2%} {row['speedup_routine']:7.1%} "
            f"{row['static_red']:7.1%} {row['ins_in']:6d} {row['ins_out']:7d} "
            f"{row['delta_ins']:6.0%} {row['delta_bundles']:6.0%} "
            f"{row['ipc_in']:5.1f} {row['ipc_out']:5.1f}"
        )
        for key in totals:
            totals[key] += row[key]
    n = len(experiments)
    lines.append(
        f"{'Average':15s} {'':5s} {'':7s} {totals['speedup_routine']/n:7.1%} "
        f"{totals['static_red']/n:7.1%} {'':6s} {'':7s} "
        f"{totals['delta_ins']/n:6.0%} {totals['delta_bundles']/n:6.0%} "
        f"{totals['ipc_in']/n:5.1f} {totals['ipc_out']/n:5.1f}"
    )
    lines.append("")
    lines.append("Table 1 — published (paper)")
    lines.append(header)
    for experiment in experiments:
        name = experiment.spec.name
        row = PAPER_TABLE1[name]
        lines.append(
            f"{name:15s} {row['weight']:5.0%} {row['speedup_program']:7.2%} "
            f"{row['speedup_routine']:7.1%} {row['static_red']:7.1%} "
            f"{row['ins_in']:6d} {row['ins_out']:7d} {row['delta_ins']:6.0%} "
            f"{row['delta_bundles']:6.0%} {row['ipc_in']:5.1f} "
            f"{row['ipc_out']:5.1f}"
        )
    avg = PAPER_TABLE1_AVG
    lines.append(
        f"{'Average':15s} {'':5s} {'':7s} {avg['speedup_routine']:7.1%} "
        f"{avg['static_red']:7.1%} {'':6s} {'':7s} {avg['delta_ins']:6.0%} "
        f"{avg['delta_bundles']:6.0%} {avg['ipc_in']:5.1f} {avg['ipc_out']:5.1f}"
    )
    return "\n".join(lines)


def render_table2(experiments):
    header = (
        f"{'Routine':15s} {'#BB':>4s} {'#Lp':>4s} {'SpIn':>5s} {'SpPs':>5s} "
        f"{'SpOut':>6s} {'#Cons':>7s} {'#Vars':>7s} {'#Nodes':>7s} {'Time':>7s}"
    )
    lines = ["Table 2 — measured (this reproduction)", header]
    for experiment in experiments:
        row = experiment.table2_row()
        lines.append(
            f"{row['routine']:15s} {row['blocks']:4d} {row['loops']:4d} "
            f"{row['spec_in']:5d} {row['spec_poss']:5d} {row['spec_out']:6d} "
            f"{row['constraints']:7d} {row['variables']:7d} "
            f"{row['nodes']:7d} {row['time']:6.1f}s"
        )
    lines.append("")
    lines.append("Table 2 — published (paper, CPLEX 8.0 on 900 MHz UltraSparc III+)")
    lines.append(header)
    for experiment in experiments:
        name = experiment.spec.name
        row = PAPER_TABLE2[name]
        lines.append(
            f"{name:15s} {row['blocks']:4d} {row['loops']:4d} "
            f"{row['spec_in']:5d} {row['spec_poss']:5d} {row['spec_out']:6d} "
            f"{row['constraints']:7d} {row['variables']:7d} "
            f"{row['nodes']:7d} {row['time']:6.0f}s"
        )
    return "\n".join(lines)


def render_fig7(results):
    lines = [
        "Figure 7 — schedule reduction as extensions are enabled",
        f"{'Level':16s} {'measured':>10s} {'paper':>8s} {'avg solve':>10s}",
    ]
    for label, data in results.items():
        lines.append(
            f"{label:16s} {data['avg_reduction']:10.1%} "
            f"{PAPER_FIG7[label]:8.0%} {data['avg_time']:9.1f}s"
        )
    return "\n".join(lines)


def json_payload(artifact, experiments=None, fig7=None):
    """Machine-readable document for ``--json`` (and the tests)."""
    if artifact == "fig7":
        return {"artifact": "fig7", "levels": fig7, "paper": PAPER_FIG7}
    rows = []
    for experiment in experiments:
        result = experiment.result
        row = {
            "routine": experiment.spec.name,
            "table1": experiment.table1_row(),
            "table2": experiment.table2_row(),
            "quality": getattr(result, "quality", None),
            "gap": getattr(result, "ilp_size", {}).get("gap"),
            "phases": (
                result.phase_timings()
                if hasattr(result, "phase_timings")
                else {}
            ),
        }
        reason = getattr(result, "fallback_reason", None)
        if reason is not None:
            row["fallback_reason"] = str(reason)
        paper_metrics = getattr(
            getattr(result, "trace", None), "paper_metrics", None
        )
        if paper_metrics:
            row["paper_metrics"] = paper_metrics
        rows.append(row)
    paper = PAPER_TABLE1 if artifact == "table1" else PAPER_TABLE2
    return {"artifact": artifact, "rows": rows, "paper": paper}


def _render_dashboard(args, names):
    """The ``dashboard`` artifact: write the self-contained HTML page."""
    from repro.obs import dashboard

    if not args.html:
        print("dashboard requires --html OUT.html", file=sys.stderr)
        return 2
    telemetry = None
    if args.journal:
        from repro.obs.telemetry import journal_rollup

        telemetry = journal_rollup(args.journal)
    if args.trace or args.metrics or telemetry:
        trace = metrics = None
        for path in (args.trace, args.metrics):
            if not path:
                continue
            kind, payload = dashboard.load_artifact(path)
            if kind == "trace":
                trace = payload
            else:
                metrics = payload
        html = dashboard.render_dashboard(
            trace=trace, metrics=metrics, telemetry=telemetry
        )
    else:
        # No artifacts given: run the table-1 routines under a live
        # recorder and render that run directly.
        from repro.obs import core as obs

        obs.enable()
        run_table(names=names, scale=args.scale)
        html = dashboard.dashboard_from_recorder()
    problems = dashboard.validate_self_contained(html)
    if problems:
        print("\n".join(problems), file=sys.stderr)
        return 1
    with open(args.html, "w") as handle:
        handle.write(html)
    print(f"wrote {args.html} ({len(html)} bytes)")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="tia-report", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "artifact", choices=["table1", "table2", "fig7", "dashboard"]
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--routines", type=str, default=None)
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the rendered tables",
    )
    parser.add_argument(
        "--html", metavar="OUT",
        help="output path for the 'dashboard' artifact",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="dashboard input: Chrome trace or JSONL event log",
    )
    parser.add_argument(
        "--metrics", metavar="FILE",
        help="dashboard input: metrics JSON dump",
    )
    parser.add_argument(
        "--journal", metavar="DIR",
        help="dashboard input: telemetry-journal directory "
             "(fleet-telemetry panel)",
    )
    args = parser.parse_args(argv)

    names = args.routines.split(",") if args.routines else None
    if args.artifact == "dashboard":
        return _render_dashboard(args, names)
    if args.artifact == "fig7":
        results = run_fig7(names=names, scale=args.scale)
        if args.json:
            import json

            print(json.dumps(json_payload("fig7", fig7=results), indent=2))
        else:
            print(render_fig7(results))
        return 0
    experiments = run_table(names=names, scale=args.scale)
    if args.json:
        import json

        print(
            json.dumps(
                json_payload(args.artifact, experiments=experiments), indent=2
            )
        )
        return 0
    if args.artifact == "table1":
        print(render_table1(experiments))
    else:
        print(render_table2(experiments))
    return 0


if __name__ == "__main__":
    sys.exit(main())
