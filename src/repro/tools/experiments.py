"""Experiment driver: regenerate the paper's Tables 1–2 and Figure 7.

The driver glues the whole stack together per routine:

1. generate the calibrated synthetic routine (Sec. 6 workload),
2. run the ILP postpass (:class:`~repro.sched.scheduler.IlpScheduler`),
3. simulate input and output schedules over one shared profile trace
   (:mod:`repro.perf.pipeline` standing in for the 1.4 GHz Itanium 2),
4. derive every column the paper reports.

Scaling: ``scale`` < 1 shrinks the routines proportionally for quick
runs; the published configuration is ``scale=1``. Environment overrides
``REPRO_SCALE`` / ``REPRO_TIME_LIMIT`` let CI keep the benchmarks fast
without touching code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.perf.pipeline import PipelineSimulator
from repro.perf.speedup import program_speedup
from repro.perf.static_eval import compare_schedules
from repro.perf.trace import generate_trace
from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.sched.speculation import count_input_speculation
from repro.workloads.spec_routines import SPEC_BY_NAME, SPEC_ROUTINES


def default_scale():
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def default_time_limit():
    return float(os.environ.get("REPRO_TIME_LIMIT", "90"))


def default_features(**overrides):
    base = dict(
        time_limit=default_time_limit(),
        max_hops=4,
        baseline=os.environ.get("REPRO_BASELINE", "local"),
    )
    base.update(overrides)
    return ScheduleFeatures(**base)


@dataclass
class RoutineExperiment:
    """All measured values for one routine."""

    spec: object
    result: object  # OptimizeResult
    comparison: object  # ScheduleComparison
    sim_in: object
    sim_out: object
    spec_in: int

    # -- derived columns ---------------------------------------------------------
    @property
    def routine_speedup(self):
        if self.sim_out.cycles == 0:
            return 1.0
        return self.sim_in.cycles / self.sim_out.cycles

    @property
    def program_speedup(self):
        return program_speedup(self.spec.weight, self.routine_speedup)

    def table1_row(self):
        res = self.result
        return {
            "routine": self.spec.name,
            "program": self.spec.program,
            "input_set": self.spec.input_set,
            "weight": self.spec.weight,
            "speedup_program": self.program_speedup - 1.0,
            "speedup_routine": self.routine_speedup - 1.0,
            "static_red": self.comparison.static_reduction,
            "ins_in": self.comparison.metrics_in.instructions,
            "ins_out": self.comparison.metrics_out.instructions,
            "delta_ins": self.comparison.delta_instructions,
            "delta_bundles": self.comparison.delta_bundles,
            "ipc_in": self.comparison.metrics_in.weighted_ipc,
            "ipc_out": self.comparison.metrics_out.weighted_ipc,
        }

    def table2_row(self):
        res = self.result
        return {
            "routine": self.spec.name,
            "blocks": len(res.fn.blocks),
            "loops": len(res.region.cfg.loops),
            "spec_in": self.spec_in,
            "spec_poss": res.spec_possible,
            "spec_out": res.spec_used,
            "constraints": res.ilp_size["constraints"],
            "variables": res.ilp_size["variables"],
            "nodes": res.ilp_size["nodes"],
            "time": res.ilp_size["time"],
            "gap": res.ilp_size.get("gap"),
        }


def run_routine(
    name,
    features=None,
    scale=None,
    sim_invocations=120,
    sim_seed=1,
    cache_dir=None,
):
    """Run the full pipeline for one named routine.

    With ``cache_dir`` the solve goes through the schedule cache
    (:func:`repro.serve.service.cached_optimize`): an exact hit skips
    the ILP entirely and a family near miss seeds the cycle ranges.
    The store directory may be shared across pool workers — writes are
    atomic renames.
    """
    from repro.workloads.spec_routines import build_spec_routine

    scale = default_scale() if scale is None else scale
    spec = SPEC_BY_NAME[name]
    fn = build_spec_routine(name, scale=scale)
    spec_in = count_input_speculation(fn)
    features = features or default_features()
    if cache_dir is not None:
        from repro.serve.service import cached_optimize

        result = cached_optimize(fn, features, cache_dir=cache_dir).result
    else:
        result = optimize_function(fn, features)

    comparison = compare_schedules(
        result.fn,
        result.input_schedule,
        result.output_schedule,
        result.bundles_in,
        result.bundles_out,
    )
    trace = generate_trace(result.fn, invocations=sim_invocations, seed=sim_seed)
    simulator = PipelineSimulator(miss_rate=spec.miss_rate)
    sim_in = simulator.run(result.input_schedule, result.fn, trace)
    sim_out = simulator.run(result.output_schedule, result.fn, trace)
    return RoutineExperiment(
        spec=spec,
        result=result,
        comparison=comparison,
        sim_in=sim_in,
        sim_out=sim_out,
        spec_in=spec_in,
    )


def run_table(names=None, features=None, scale=None, sim_invocations=120):
    """Run all (or the named) routines; returns RoutineExperiments."""
    names = names or [s.name for s in SPEC_ROUTINES]
    return [
        run_routine(
            name, features=features, scale=scale, sim_invocations=sim_invocations
        )
        for name in names
    ]


FIG7_LEVELS = (
    ("base", dict(speculation=False, data_speculation=False, cyclic=False, partial_ready=False)),
    ("+speculation", dict(cyclic=False, partial_ready=False)),
    ("+cyclic", dict(partial_ready=False)),
    ("+partial-ready", dict()),
)


def run_fig7(names=None, scale=None, time_limit=None):
    """Incremental-extension sweep (Figure 7).

    Returns ``{level: {"avg_reduction": float, "avg_time": float,
    "per_routine": {...}}}``, levels in the paper's order.
    """
    names = names or [s.name for s in SPEC_ROUTINES]
    time_limit = time_limit or default_time_limit()
    results = {}
    for label, overrides in FIG7_LEVELS:
        rows = {}
        total_red, total_time = 0.0, 0.0
        for name in names:
            features = default_features(time_limit=time_limit, **overrides)
            experiment = run_routine(name, features=features, scale=scale)
            rows[name] = {
                "reduction": experiment.comparison.static_reduction,
                "time": experiment.result.ilp_size["time"],
            }
            total_red += rows[name]["reduction"]
            total_time += rows[name]["time"]
        results[label] = {
            "avg_reduction": total_red / len(names),
            "avg_time": total_time / len(names),
            "per_routine": rows,
        }
    return results
