"""Shared wall-clock budgets for the optimize pipeline.

The postpass contract (paper Sec. 6.1) gives CPLEX *one* budget for a
routine, not one per solve: phase 1, every bundling-cut re-solve and the
phase-2 cleanup all draw from the same clock, and whatever is left when
a stage starts is all that stage may spend.  :class:`Deadline` is that
budget: it is created once at the top of
:meth:`repro.sched.scheduler.IlpScheduler.optimize` from
``ScheduleFeatures.time_limit`` and handed down through the bundling-cut
loop, :func:`repro.sched.phase2.minimize_instruction_count` and
:func:`repro.ilp.solve_model`, which converts :meth:`remaining` into the
backend ``time_limit`` for each individual solve.

A ``Deadline`` with ``budget=None`` never expires; every ``remaining()``
call then returns ``None`` and solves run unlimited, which keeps the
pre-deadline behaviour for callers that never set a limit.
"""

from __future__ import annotations

import time


class Deadline:
    """A monotonic wall-clock budget shared by a chain of solves.

    Parameters
    ----------
    budget:
        Total seconds available, or ``None`` for no limit.
    clock:
        Injectable time source (monotonic seconds); tests substitute a
        fake clock to exercise expiry deterministically.
    """

    __slots__ = ("_budget", "_start", "_clock")

    def __init__(self, budget=None, clock=time.monotonic):
        self._clock = clock
        self._start = clock()
        self._budget = None if budget is None else max(0.0, float(budget))

    @classmethod
    def start(cls, budget=None, clock=time.monotonic):
        """Alias constructor reading like prose: ``Deadline.start(120)``."""
        return cls(budget, clock=clock)

    @property
    def budget(self):
        """The total budget in seconds (``None`` = unlimited)."""
        return self._budget

    def elapsed(self):
        """Seconds since the deadline was started."""
        return self._clock() - self._start

    def remaining(self):
        """Seconds left, clipped at 0.0; ``None`` when unlimited."""
        if self._budget is None:
            return None
        return max(0.0, self._budget - self.elapsed())

    @property
    def expired(self):
        """True once the budget is spent (never for unlimited deadlines)."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def bound(self, time_limit):
        """Clip an explicit per-solve ``time_limit`` to the remaining budget.

        Returns the tighter of the two; ``None`` only when both are
        unlimited. This is what :func:`repro.ilp.solve_model` applies to
        its ``time_limit`` keyword.
        """
        remaining = self.remaining()
        if remaining is None:
            return time_limit
        if time_limit is None:
            return remaining
        return min(float(time_limit), remaining)

    def __repr__(self):
        if self._budget is None:
            return "Deadline(unlimited)"
        return (
            f"Deadline(budget={self._budget:g}s, "
            f"remaining={self.remaining():g}s)"
        )
