"""Deterministic fault injection for the graceful-degradation pipeline.

The fallback ladder in :mod:`repro.sched.scheduler` promises that every
routine yields a valid schedule no matter which stage fails.  Testing
that promise requires *making* stages fail on demand, deterministically,
without monkeypatching internals — so the pipeline carries named
injection sites and this module decides, per site, whether a fault fires
there.

Sites (``SITES``):

``solve.phase1``
    The first ILP solve of a routine (and re-solves after a cycle-range
    growth).
``solve.cut_resolve``
    Re-solves inside the bundling-cut loop.
``solve.phase2``
    The phase-2 instruction-count cleanup solve.
``bundle``
    Template bundling of a reconstructed schedule.
``verify``
    The path-based schedule verifier.
``worker``
    A routine worker process in :mod:`repro.tools.parallel`.

Kinds (``KINDS``):

``timeout``
    The solver behaves as if its time limit expired before finding
    anything new: the caller-provided incumbent (if feasible) is
    returned as ``FEASIBLE``, otherwise ``NO_SOLUTION``.
``infeasible``
    The solve reports ``INFEASIBLE``.
``incumbent``
    The solve runs normally but its proof is discarded: ``OPTIMAL`` is
    demoted to ``FEASIBLE`` (a timeout that happened to find the
    optimum without proving it).
``corrupt``
    The solve runs normally, then a few set binaries are cleared — a
    corrupted solution that reconstruction or verification must catch.
``error``
    Site-appropriate failure: ``bundle`` raises ``BundlingError``,
    ``verify`` reports a failed check, ``worker`` raises in the worker.
``crash``
    ``worker`` only: the worker process dies hard (``os._exit``),
    breaking the process pool.

Activation is either lexical (the :func:`inject` context manager) or
ambient via the ``REPRO_FAULTS`` environment variable, e.g.::

    REPRO_FAULTS="solve.phase1=timeout,bundle=error:2"

``:N`` bounds an injection to its first ``N`` firings (default:
unlimited). Firing counters live in the installed plan, so env-driven
plans count per process — every pool worker starts fresh.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

SITES = (
    "solve.phase1",
    "solve.cut_resolve",
    "solve.phase2",
    "bundle",
    "verify",
    "worker",
)

KINDS = ("timeout", "infeasible", "incumbent", "corrupt", "error", "crash")

ENV_VAR = "REPRO_FAULTS"


@dataclass
class _Injection:
    site: str
    kind: str
    remaining: int | None  # firings left; None = unlimited

    def fire(self):
        if self.remaining is None:
            return True
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


class FaultPlan:
    """A parsed set of injections, with per-site firing state."""

    def __init__(self, injections):
        self._by_site = {}
        for injection in injections:
            self._by_site.setdefault(injection.site, []).append(injection)

    @classmethod
    def parse(cls, spec):
        """Parse ``"site=kind[:times][,...]"``; empty spec -> ``None``."""
        spec = (spec or "").strip()
        if not spec:
            return None
        injections = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            site, _, rhs = entry.partition("=")
            site = site.strip()
            if site not in SITES:
                raise ValueError(
                    f"unknown fault site {site!r} (expected one of {SITES})"
                )
            kind, _, times = rhs.partition(":")
            kind = kind.strip()
            if kind not in KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} (expected one of {KINDS})"
                )
            remaining = None
            if times.strip():
                remaining = int(times)
                if remaining <= 0:
                    raise ValueError(f"fault count must be positive: {entry!r}")
            injections.append(_Injection(site, kind, remaining))
        return cls(injections) if injections else None

    def fire(self, site):
        """Kind of the first live injection at ``site``, consuming one
        firing; ``None`` when nothing fires."""
        for injection in self._by_site.get(site, ()):
            if injection.fire():
                return injection.kind
        return None

    def __repr__(self):
        parts = [
            f"{i.site}={i.kind}"
            + ("" if i.remaining is None else f":{i.remaining}")
            for entries in self._by_site.values()
            for i in entries
        ]
        return f"FaultPlan({', '.join(parts)})"


# Installed plans (innermost last) take precedence over the environment.
_installed: list = []
# Env plans cache: one parse (and one firing-counter set) per spec string
# per process, so ``:N``-bounded env injections count across calls.
_env_plans: dict = {}


def install(plan):
    """Push ``plan`` as the active fault plan; pair with :func:`uninstall`."""
    _installed.append(plan)
    return plan


def uninstall(plan):
    if _installed and _installed[-1] is plan:
        _installed.pop()
    elif plan in _installed:  # tolerate out-of-order teardown
        _installed.remove(plan)


@contextmanager
def inject(spec):
    """Activate the fault spec for the dynamic extent of the block.

    ``spec`` is a string (``"bundle=error:1"``) or an already-built
    :class:`FaultPlan`. Yields the plan (``None`` for an empty spec).
    """
    plan = spec if isinstance(spec, FaultPlan) else FaultPlan.parse(spec)
    if plan is None:
        yield None
        return
    install(plan)
    try:
        yield plan
    finally:
        uninstall(plan)


def active_plan():
    """The innermost installed plan, else the ``REPRO_FAULTS`` plan."""
    if _installed:
        return _installed[-1]
    spec = os.environ.get(ENV_VAR, "")
    if not spec.strip():
        return None
    if spec not in _env_plans:
        _env_plans[spec] = FaultPlan.parse(spec)
    return _env_plans[spec]


def fire(site):
    """Kind of the fault firing at ``site`` right now, or ``None``.

    ``site=None`` (a solve with no site attached, e.g. unit tests
    calling backends directly) never fires.
    """
    if site is None:
        return None
    plan = active_plan()
    if plan is None:
        return None
    return plan.fire(site)


def reset_env_cache():
    """Drop cached env plans (restores their firing budgets); test hook."""
    _env_plans.clear()


# -- solution mangling (used by the solver backends) -------------------------


def demote_to_feasible(solution):
    """An ``incumbent`` fault: keep the assignment, drop the proof."""
    from repro.ilp.status import Solution, SolveStatus

    if solution.status is SolveStatus.OPTIMAL:
        return Solution(
            SolveStatus.FEASIBLE,
            solution.objective,
            solution.values,
            solution.stats,
        )
    return solution


def corrupt_solution(solution, flips=3):
    """A ``corrupt`` fault: clear the first ``flips`` set integer vars.

    Deterministic (lowest variable index first) so a corrupted solve is
    reproducible. Clearing set binaries knocks placements/length
    indicators out of the solution, which reconstruction or the verifier
    must then reject.
    """
    if not solution.values:
        return solution
    flipped = 0
    for var in sorted(solution.values, key=lambda v: v.index):
        if getattr(var, "is_integer", False) and solution.values[var] >= 0.5:
            solution.values[var] = 0.0
            flipped += 1
            if flipped >= flips:
                break
    return solution
