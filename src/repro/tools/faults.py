"""Deterministic fault injection for the graceful-degradation pipeline.

The fallback ladder in :mod:`repro.sched.scheduler` promises that every
routine yields a valid schedule no matter which stage fails.  Testing
that promise requires *making* stages fail on demand, deterministically,
without monkeypatching internals — so the pipeline carries named
injection sites and this module decides, per site, whether a fault fires
there.

Sites (``SITES``):

``solve.phase1``
    The first ILP solve of a routine (and re-solves after a cycle-range
    growth).
``solve.cut_resolve``
    Re-solves inside the bundling-cut loop.
``solve.phase2``
    The phase-2 instruction-count cleanup solve.
``bundle``
    Template bundling of a reconstructed schedule.
``verify``
    The path-based schedule verifier.
``worker``
    A routine worker process in :mod:`repro.tools.parallel`.
``serve.store_io``
    Disk I/O in the schedule cache (:mod:`repro.serve.store`): a firing
    makes the next store read/write raise ``OSError``, which the
    serving layer must absorb as a cache miss / skipped fill.
``serve.corrupt_entry``
    Bit rot on a cache entry load: the payload is flipped before
    checksum verification, so the store must quarantine the entry and
    the service must fall through to a cold solve.
``decompose.stitch``
    The schedule stitcher of the decomposed pipeline
    (:mod:`repro.sched.decompose`): any firing aborts the stitch, and
    the scheduler must fall back to the whole-function ILP — the
    routine still yields a verified schedule.
``serve.accept``
    The fleet daemon's accept path (:mod:`repro.serve.daemon`): a
    firing makes the just-accepted connection fail before it is
    queued, as if the peer vanished or the accept raised — the
    connection is rejected (typed error reply when possible) and the
    accept loop must keep serving.
``serve.queue``
    Admission into the daemon's bounded request queue: a firing forces
    a shed (busy reply with a retry hint) even when the queue has
    room, so chaos runs prove clients ride through load shedding.
``serve.drain``
    The graceful-drain path: a firing raises inside the drain sweep
    (flushing queued connections after SIGTERM); the daemon must
    absorb it and still exit cleanly within the drain budget.
``obs.journal``
    A telemetry-journal append (:mod:`repro.obs.journal`): a firing
    makes the write raise ``OSError`` inside
    :meth:`~repro.obs.journal.TelemetryJournal.append`, which must
    swallow it — journal failures are counted, never surfaced into the
    serving request path, and never corrupt already-written shards.
``portfolio.cancel``
    One racing lane of :class:`repro.ilp.portfolio.PortfolioSolver`
    (fired per lane, inside the race): ``crash``/``error`` kill the lane
    before it searches and poison its bus state; ``timeout`` cancels it
    at launch; ``corrupt``/``infeasible`` poison the lane — its bounds
    are discarded, future publishes barred, and its own result dropped;
    ``incumbent`` demotes the lane's optimality proof so it cannot win
    the race by proof. Every kind degrades the race to the surviving
    lanes; the portfolio itself never raises.
``swp.materialize``
    Kernel materialization in the software-pipelining ladder
    (:mod:`repro.sched.modulo.ladder`): any firing discards the modulo
    schedule before prologue/kernel/epilogue construction, forcing the
    ladder down a rung — the loop is still emitted (time-indexed SWP or
    the unpipelined original) and ``optimize`` never raises.

Kinds (``KINDS``):

``timeout``
    The solver behaves as if its time limit expired before finding
    anything new: the caller-provided incumbent (if feasible) is
    returned as ``FEASIBLE``, otherwise ``NO_SOLUTION``.
``infeasible``
    The solve reports ``INFEASIBLE``.
``incumbent``
    The solve runs normally but its proof is discarded: ``OPTIMAL`` is
    demoted to ``FEASIBLE`` (a timeout that happened to find the
    optimum without proving it).
``corrupt``
    The solve runs normally, then a few set binaries are cleared — a
    corrupted solution that reconstruction or verification must catch.
``error``
    Site-appropriate failure: ``bundle`` raises ``BundlingError``,
    ``verify`` reports a failed check, ``worker`` raises in the worker.
``crash``
    ``worker`` only: the worker process dies hard (``os._exit``),
    breaking the process pool.

Activation is either lexical (the :func:`inject` context manager) or
ambient via the ``REPRO_FAULTS`` environment variable, e.g.::

    REPRO_FAULTS="solve.phase1=timeout,bundle=error:2"

``:N`` bounds an injection to its first ``N`` firings (default:
unlimited). Firing counters live in the installed plan, so env-driven
plans count per process — every pool worker starts fresh.

A malformed spec — unknown site or kind, bad count — raises
:class:`FaultConfigError` (a ``ValueError``) the moment it is parsed,
and the error is **not** swallowed by the graceful-degradation ladder:
a misspelled ``REPRO_FAULTS`` used to surface as a generic pipeline
error that quietly degraded every routine to ``fallback_input``, which
kept the chaos job green while injecting nothing.  Drivers
(:func:`repro.tools.parallel.run_routines_parallel`, the chaos smoke)
validate the environment eagerly via :func:`validate_env` so a typo
fails the run immediately with the offending directive named.

Every fault that actually fires is counted in the observability layer
(``faults_fired_total{site,kind}`` — see :mod:`repro.obs`) so a chaos
run's metrics dump shows the realized fault mix, not just the request.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs import core as obs

SITES = (
    "solve.phase1",
    "solve.cut_resolve",
    "solve.phase2",
    "bundle",
    "verify",
    "worker",
    "serve.store_io",
    "serve.corrupt_entry",
    "decompose.stitch",
    "serve.accept",
    "serve.queue",
    "serve.drain",
    "portfolio.cancel",
    "obs.journal",
    "swp.materialize",
)

KINDS = ("timeout", "infeasible", "incumbent", "corrupt", "error", "crash")

ENV_VAR = "REPRO_FAULTS"


class FaultConfigError(ValueError):
    """A malformed fault spec (unknown site/kind, bad count).

    Deliberately *not* treated as a pipeline failure: the scheduler's
    catch-everything fallback re-raises it, because a configuration typo
    must fail the run loudly instead of degrading every routine and
    leaving the chaos job vacuously green.
    """


@dataclass
class _Injection:
    site: str
    kind: str
    remaining: int | None  # firings left; None = unlimited

    def fire(self):
        if self.remaining is None:
            return True
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


class FaultPlan:
    """A parsed set of injections, with per-site firing state."""

    def __init__(self, injections):
        self._by_site = {}
        for injection in injections:
            self._by_site.setdefault(injection.site, []).append(injection)

    @classmethod
    def parse(cls, spec, source=None):
        """Parse ``"site=kind[:times][,...]"``; empty spec -> ``None``.

        Raises :class:`FaultConfigError` on any malformed entry, naming
        the offending directive and the valid options. ``source`` (e.g.
        ``"REPRO_FAULTS"``) prefixes the message so an env-driven typo is
        attributable at a glance.
        """
        prefix = f"{source}: " if source else ""
        spec = (spec or "").strip()
        if not spec:
            return None
        injections = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            site, sep, rhs = entry.partition("=")
            site = site.strip()
            if not sep:
                raise FaultConfigError(
                    f"{prefix}malformed fault directive {entry!r} "
                    "(expected site=kind[:times])"
                )
            if site not in SITES:
                raise FaultConfigError(
                    f"{prefix}unknown fault site {site!r} in {entry!r} "
                    f"(expected one of {', '.join(SITES)})"
                )
            kind, _, times = rhs.partition(":")
            kind = kind.strip()
            if kind not in KINDS:
                raise FaultConfigError(
                    f"{prefix}unknown fault kind {kind!r} in {entry!r} "
                    f"(expected one of {', '.join(KINDS)})"
                )
            remaining = None
            if times.strip():
                try:
                    remaining = int(times)
                except ValueError:
                    raise FaultConfigError(
                        f"{prefix}fault count must be an integer: {entry!r}"
                    ) from None
                if remaining <= 0:
                    raise FaultConfigError(
                        f"{prefix}fault count must be positive: {entry!r}"
                    )
            injections.append(_Injection(site, kind, remaining))
        return cls(injections) if injections else None

    def fire(self, site):
        """Kind of the first live injection at ``site``, consuming one
        firing; ``None`` when nothing fires."""
        for injection in self._by_site.get(site, ()):
            if injection.fire():
                return injection.kind
        return None

    def __repr__(self):
        parts = [
            f"{i.site}={i.kind}"
            + ("" if i.remaining is None else f":{i.remaining}")
            for entries in self._by_site.values()
            for i in entries
        ]
        return f"FaultPlan({', '.join(parts)})"


# Installed plans (innermost last) take precedence over the environment.
_installed: list = []
# Env plans cache: one parse (and one firing-counter set) per spec string
# per process, so ``:N``-bounded env injections count across calls.
_env_plans: dict = {}


def install(plan):
    """Push ``plan`` as the active fault plan; pair with :func:`uninstall`."""
    _installed.append(plan)
    return plan


def uninstall(plan):
    if _installed and _installed[-1] is plan:
        _installed.pop()
    elif plan in _installed:  # tolerate out-of-order teardown
        _installed.remove(plan)


@contextmanager
def inject(spec):
    """Activate the fault spec for the dynamic extent of the block.

    ``spec`` is a string (``"bundle=error:1"``) or an already-built
    :class:`FaultPlan`. Yields the plan (``None`` for an empty spec).
    """
    plan = spec if isinstance(spec, FaultPlan) else FaultPlan.parse(spec)
    if plan is None:
        yield None
        return
    install(plan)
    try:
        yield plan
    finally:
        uninstall(plan)


def active_plan():
    """The innermost installed plan, else the ``REPRO_FAULTS`` plan.

    A malformed ``REPRO_FAULTS`` raises :class:`FaultConfigError` —
    every time, not just on the first parse, so the error cannot be
    missed by whichever call site happens to hit it first.
    """
    if _installed:
        return _installed[-1]
    spec = os.environ.get(ENV_VAR, "")
    if not spec.strip():
        return None
    if spec not in _env_plans:
        _env_plans[spec] = FaultPlan.parse(spec, source=ENV_VAR)
    return _env_plans[spec]


def validate_env(environ=None):
    """Fail fast on a malformed ``REPRO_FAULTS``; returns the parsed plan.

    Drivers call this once up front (before spawning workers or entering
    the degradation ladder) so a typo'd directive aborts the run with a
    clear message instead of surfacing mid-pipeline. Returns ``None``
    when the variable is unset/empty. The returned plan is a *fresh*
    parse used only for validation — firing budgets of the cached
    ambient plan are untouched.
    """
    spec = (environ or os.environ).get(ENV_VAR, "")
    return FaultPlan.parse(spec, source=ENV_VAR)


def fire(site):
    """Kind of the fault firing at ``site`` right now, or ``None``.

    ``site=None`` (a solve with no site attached, e.g. unit tests
    calling backends directly) never fires. Fired faults are counted as
    ``faults_fired_total{site,kind}`` when observability is enabled.
    """
    if site is None:
        return None
    plan = active_plan()
    if plan is None:
        return None
    kind = plan.fire(site)
    if kind is not None and obs.ENABLED:
        obs.counter("faults_fired_total", 1, site=site, kind=kind)
    return kind


def reset_env_cache():
    """Drop cached env plans (restores their firing budgets); test hook."""
    _env_plans.clear()


# -- solution mangling (used by the solver backends) -------------------------


def demote_to_feasible(solution):
    """An ``incumbent`` fault: keep the assignment, drop the proof."""
    from repro.ilp.status import Solution, SolveStatus

    if solution.status is SolveStatus.OPTIMAL:
        return Solution(
            SolveStatus.FEASIBLE,
            solution.objective,
            solution.values,
            solution.stats,
        )
    return solution


def corrupt_solution(solution, flips=3):
    """A ``corrupt`` fault: clear the first ``flips`` set integer vars.

    Deterministic (lowest variable index first) so a corrupted solve is
    reproducible. Clearing set binaries knocks placements/length
    indicators out of the solution, which reconstruction or the verifier
    must then reject.
    """
    if not solution.values:
        return solution
    flipped = 0
    for var in sorted(solution.values, key=lambda v: v.index):
        if getattr(var, "is_integer", False) and solution.values[var] >= 0.5:
            solution.values[var] = 0.0
            flipped += 1
            if flipped >= flips:
                break
    return solution
