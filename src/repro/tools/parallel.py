"""Parallel routine fan-out for the Table 1/2 and Figure 7 sweeps.

The nine SPEC routines are independent end-to-end pipeline runs, so the
sweeps fan them out across a :class:`~concurrent.futures.ProcessPoolExecutor`
— one routine per worker process, results shipped back as pickled
:class:`~repro.tools.experiments.RoutineExperiment` objects (~tens of KB
each). On a single-core host the runner degrades to an in-process loop
with identical outcomes and no pool overhead, so callers never need to
special-case the machine.

Each routine gets a wall-clock budget measured from batch start. The
budget is *enforced*, not just reported: the remaining batch time is
folded into ``ScheduleFeatures.time_limit``, so the optimizer's shared
:class:`~repro.tools.deadline.Deadline` bounds the solves and an
over-budget routine degrades to its input schedule instead of stalling
the sweep. Outcomes always carry a JSON-serializable
:meth:`~RoutineOutcome.summary`, so drivers that only need the Table 2
columns never have to unpickle full experiments.

Crashed workers do not poison the batch: a ``BrokenProcessPool`` rebuilds
the pool once for the unfinished routines, and routines that still cannot
complete in a pool are retried in-process (``retried=True`` on their
outcomes). The ``worker`` fault-injection site (:mod:`repro.tools.faults`)
fires only inside pool worker processes — ``crash`` kills the worker hard
to exercise exactly this recovery path; the in-process retry is exempt by
construction, so an injected crash always converges to a valid batch.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from repro.obs import core as obs
from repro.tools import faults
from repro.tools.experiments import run_routine


@dataclass
class RoutineOutcome:
    """Result envelope for one routine of a fan-out batch."""

    name: str
    ok: bool
    elapsed: float
    experiment: object | None = None  # RoutineExperiment when ok
    error: str | None = None
    retried: bool = False  # recovered from a broken pool / crashed worker
    # Observability snapshot recorded inside the worker process
    # (``repro.obs.core.snapshot()`` plain data); ``None`` when recording
    # was off or the routine ran in-process (whose events land directly in
    # the parent recorder). Deliberately absent from summary() — traces are
    # exported through repro.obs.export, not the Table 2 digest.
    obs: object = None

    def summary(self):
        """JSON-serializable digest (the Table 1/2 columns plus status)."""
        base = {"routine": self.name, "ok": self.ok, "elapsed": self.elapsed}
        if self.retried:
            base["retried"] = True
        if not self.ok:
            base["error"] = self.error
            return base
        base["table1"] = self.experiment.table1_row()
        base["table2"] = self.experiment.table2_row()
        result = self.experiment.result
        base["quality"] = getattr(result, "quality", None)
        reason = getattr(result, "fallback_reason", None)
        if reason is not None:
            base["fallback_reason"] = str(reason)
        base["gap"] = getattr(result, "ilp_size", {}).get("gap")
        trace = getattr(result, "trace", None)
        paper = getattr(trace, "paper_metrics", None)
        if paper:
            base["paper_metrics"] = paper
        return base


def partition_workers(count):
    """Thread-pool width for one routine's partition fan-out.

    Partitions (:mod:`repro.sched.decompose`) and routines (this
    module's process pool) share the machine, so inside a pool worker
    the answer is always 1 — each sibling routine already owns a core.
    ``REPRO_PARTITION_WORKERS`` overrides the width explicitly (clamped
    to ``[1, count]``); otherwise the fan-out takes
    ``min(count, cpu_count)``.
    """
    if count <= 1:
        return 1
    override = os.environ.get("REPRO_PARTITION_WORKERS")
    if override:
        try:
            return max(1, min(int(override), count))
        except ValueError:
            pass
    if os.environ.get("REPRO_IN_POOL_WORKER"):
        return 1
    return max(1, min(count, os.cpu_count() or 1))


def _run_one(args):
    """Pool entry point; must stay module-level for pickling.

    The ``worker`` fault site fires here — i.e. only inside pool worker
    processes, never on the in-process retry/sequential paths — so an
    injected ``crash`` breaks the pool without ever killing the driver.
    """
    name, features, scale, sim_invocations, sim_seed, cache_dir = args
    # Partitions of one routine and routines of one sweep share the
    # machine: mark this process so repro.sched.decompose collapses its
    # per-partition thread fan-out to 1 instead of oversubscribing cores
    # already owned by sibling routine workers.
    os.environ["REPRO_IN_POOL_WORKER"] = "1"
    if obs.ENABLED:
        # A forked worker inherits the parent's recorder (events and all);
        # reset() swaps in an empty buffer stamped with this worker's pid
        # and epoch so the snapshot shipped back is exactly this routine.
        obs.reset()
    fault = faults.fire("worker")
    if fault == "crash":
        os._exit(17)  # hard worker death -> BrokenProcessPool in the parent
    if fault is not None:
        raise RuntimeError(f"injected worker fault ({fault})")
    start = time.perf_counter()
    experiment = run_routine(
        name,
        features=features,
        scale=scale,
        sim_invocations=sim_invocations,
        sim_seed=sim_seed,
        cache_dir=cache_dir,
    )
    elapsed = time.perf_counter() - start
    return experiment, elapsed, obs.snapshot() if obs.ENABLED else None


def run_routines_parallel(
    names,
    features=None,
    scale=None,
    sim_invocations=120,
    sim_seed=1,
    max_workers=None,
    timeout=None,
    cache_dir=None,
):
    """Run the named routines concurrently; returns ``[RoutineOutcome]``.

    ``max_workers`` defaults to ``min(len(names), cpu_count)``; with one
    worker the batch runs in-process. ``timeout`` (seconds) bounds every
    routine's wall clock measured from batch start — size it for the
    whole batch when workers are fewer than routines, since queued
    routines consume their budget while waiting. ``cache_dir`` routes
    every solve through the shared schedule cache (:mod:`repro.serve`):
    workers share the store directory (atomic writes make that safe)
    and repeat sweeps serve exact hits. Failures (including
    timeouts) become ``ok=False`` outcomes; a broken pool is rebuilt once
    and stragglers finish in-process with ``retried=True``. The batch
    always returns one outcome per requested routine, in input order.

    A malformed ``REPRO_FAULTS`` spec raises
    :class:`~repro.tools.faults.FaultConfigError` here, *before* any
    worker is spawned: parsed lazily it would first surface inside the
    pipeline, where the fallback ladder converts it into silent
    ``fallback_input`` degradations on every routine.
    """
    faults.validate_env()
    names = list(names)
    if not names:
        return []
    if max_workers is None:
        max_workers = min(len(names), os.cpu_count() or 1)
    max_workers = max(1, min(max_workers, len(names)))

    with obs.span("parallel.batch", routines=len(names), workers=max_workers):
        return _run_batch(
            names, features, scale, sim_invocations, sim_seed,
            max_workers, timeout, cache_dir,
        )


def _run_batch(
    names, features, scale, sim_invocations, sim_seed, max_workers, timeout,
    cache_dir=None,
):
    start = time.monotonic()

    def remaining_budget():
        if timeout is None:
            return None
        return max(0.0, start + timeout - time.monotonic())

    if max_workers == 1:
        return [
            _sequential_outcome(
                name, features, scale, sim_invocations, sim_seed,
                remaining_budget(), cache_dir=cache_dir,
            )
            for name in names
        ]

    outcomes = {}
    pending = names
    # The initial pool plus at most one rebuild after a BrokenProcessPool;
    # whatever still cannot finish in a pool is retried in-process below.
    for pool_round in range(2):
        if not pending:
            break
        retried = pool_round > 0
        executor = ProcessPoolExecutor(
            max_workers=min(max_workers, len(pending))
        )
        broken = False
        still_pending = []
        try:
            futures = {
                name: executor.submit(
                    _run_one,
                    (name, features, scale, sim_invocations, sim_seed,
                     cache_dir),
                )
                for name in pending
            }
            for name in pending:
                future = futures[name]
                try:
                    experiment, elapsed, snap = future.result(
                        timeout=remaining_budget()
                    )
                except FutureTimeout:
                    future.cancel()
                    outcomes[name] = RoutineOutcome(
                        name,
                        False,
                        time.monotonic() - start,
                        error=f"timed out after {timeout:g}s",
                        retried=retried,
                    )
                except BrokenProcessPool:
                    # One crash poisons every unfinished future; collect
                    # the stragglers and re-run them instead of failing.
                    broken = True
                    still_pending.append(name)
                except Exception as exc:  # worker raised; keep the batch going
                    outcomes[name] = RoutineOutcome(
                        name,
                        False,
                        time.monotonic() - start,
                        error=f"{type(exc).__name__}: {exc}",
                        retried=retried,
                    )
                else:
                    # Fold the worker's events/metrics into the parent
                    # recorder (its pid becomes a distinct trace lane) and
                    # keep the raw snapshot on the outcome for callers that
                    # aggregate batches themselves.
                    obs.merge_snapshot(snap, role="worker")
                    outcomes[name] = RoutineOutcome(
                        name, True, elapsed, experiment, retried=retried,
                        obs=snap,
                    )
        except BrokenProcessPool:
            # The pool died during submission; everything not yet
            # collected is still pending.
            broken = True
            still_pending = [n for n in pending if n not in outcomes]
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        if broken and obs.ENABLED:
            if pool_round == 0:  # a second break goes in-process, no rebuild
                obs.counter("pool_rebuilds_total")
            obs.event("pool.broken", round=pool_round, pending=len(still_pending))
        pending = still_pending if broken else []

    # Two broken pools in a row: finish the stragglers in-process, where
    # a crashing-worker fault (or a crash-prone environment) cannot reach.
    for name in pending:
        if obs.ENABLED:
            obs.counter("worker_retries_total", 1, routine=name)
        outcomes[name] = _sequential_outcome(
            name, features, scale, sim_invocations, sim_seed,
            remaining_budget(), retried=True, cache_dir=cache_dir,
        )
    return [outcomes[name] for name in names]


def _bound_features(features, timeout):
    """Fold the remaining batch budget into ``ScheduleFeatures.time_limit``.

    The optimizer turns ``time_limit`` into its shared solve
    :class:`~repro.tools.deadline.Deadline`, so this is what makes an
    in-process ``timeout`` actually *bound* a solve (degrading the
    routine to its input schedule) instead of only reporting the overrun
    after the fact.
    """
    if timeout is None:
        return features
    if features is None:
        from repro.tools.experiments import default_features

        features = default_features()
    limit = (
        timeout
        if features.time_limit is None
        else min(features.time_limit, timeout)
    )
    return replace(features, time_limit=limit)


def _sequential_outcome(
    name, features, scale, sim_invocations, sim_seed, timeout, retried=False,
    cache_dir=None,
):
    """In-process path: the single-worker batch and broken-pool retries.

    ``timeout`` (the routine's remaining batch budget) is enforced through
    ``ScheduleFeatures.time_limit`` — see :func:`_bound_features`; the
    post-hoc check only reports overruns from the non-solve stages
    (analysis, bundling, simulation) that the deadline cannot interrupt.
    """
    start = time.perf_counter()
    try:
        experiment = run_routine(
            name,
            features=_bound_features(features, timeout),
            scale=scale,
            sim_invocations=sim_invocations,
            sim_seed=sim_seed,
            cache_dir=cache_dir,
        )
    except Exception as exc:
        return RoutineOutcome(
            name,
            False,
            time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            retried=retried,
        )
    elapsed = time.perf_counter() - start
    if timeout is not None and elapsed > timeout:
        return RoutineOutcome(
            name,
            False,
            elapsed,
            experiment=experiment,
            error=f"finished but exceeded {timeout:g}s budget",
            retried=retried,
        )
    return RoutineOutcome(name, True, elapsed, experiment, retried=retried)
