"""Parallel routine fan-out for the Table 1/2 and Figure 7 sweeps.

The nine SPEC routines are independent end-to-end pipeline runs, so the
sweeps fan them out across a :class:`~concurrent.futures.ProcessPoolExecutor`
— one routine per worker process, results shipped back as pickled
:class:`~repro.tools.experiments.RoutineExperiment` objects (~tens of KB
each). On a single-core host the runner degrades to an in-process loop
with identical outcomes and no pool overhead, so callers never need to
special-case the machine.

Each routine gets a wall-clock budget measured from batch start; a
routine that exceeds it is reported as a failed :class:`RoutineOutcome`
instead of stalling the whole sweep. Outcomes always carry a
JSON-serializable :meth:`~RoutineOutcome.summary`, so drivers that only
need the Table 2 columns never have to unpickle full experiments.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass

from repro.tools.experiments import run_routine


@dataclass
class RoutineOutcome:
    """Result envelope for one routine of a fan-out batch."""

    name: str
    ok: bool
    elapsed: float
    experiment: object | None = None  # RoutineExperiment when ok
    error: str | None = None

    def summary(self):
        """JSON-serializable digest (the Table 1/2 columns plus status)."""
        base = {"routine": self.name, "ok": self.ok, "elapsed": self.elapsed}
        if not self.ok:
            base["error"] = self.error
            return base
        base["table1"] = self.experiment.table1_row()
        base["table2"] = self.experiment.table2_row()
        return base


def _run_one(args):
    """Pool entry point; must stay module-level for pickling."""
    name, features, scale, sim_invocations, sim_seed = args
    start = time.perf_counter()
    experiment = run_routine(
        name,
        features=features,
        scale=scale,
        sim_invocations=sim_invocations,
        sim_seed=sim_seed,
    )
    return experiment, time.perf_counter() - start


def run_routines_parallel(
    names,
    features=None,
    scale=None,
    sim_invocations=120,
    sim_seed=1,
    max_workers=None,
    timeout=None,
):
    """Run the named routines concurrently; returns ``[RoutineOutcome]``.

    ``max_workers`` defaults to ``min(len(names), cpu_count)``; with one
    worker the batch runs in-process. ``timeout`` (seconds) bounds every
    routine's wall clock measured from batch start — size it for the
    whole batch when workers are fewer than routines, since queued
    routines consume their budget while waiting. Failures (including
    timeouts) become ``ok=False`` outcomes; the batch always returns one
    outcome per requested routine, in input order.
    """
    names = list(names)
    if not names:
        return []
    if max_workers is None:
        max_workers = min(len(names), os.cpu_count() or 1)
    max_workers = max(1, min(max_workers, len(names)))

    if max_workers == 1:
        return [
            _sequential_outcome(
                name, features, scale, sim_invocations, sim_seed, timeout
            )
            for name in names
        ]

    outcomes = []
    start = time.monotonic()
    executor = ProcessPoolExecutor(max_workers=max_workers)
    try:
        futures = {
            name: executor.submit(
                _run_one, (name, features, scale, sim_invocations, sim_seed)
            )
            for name in names
        }
        for name in names:
            future = futures[name]
            remaining = None
            if timeout is not None:
                remaining = max(0.0, start + timeout - time.monotonic())
            try:
                experiment, elapsed = future.result(timeout=remaining)
            except FutureTimeout:
                future.cancel()
                outcomes.append(
                    RoutineOutcome(
                        name,
                        False,
                        time.monotonic() - start,
                        error=f"timed out after {timeout:g}s",
                    )
                )
            except Exception as exc:  # worker raised; keep the batch going
                outcomes.append(
                    RoutineOutcome(
                        name,
                        False,
                        time.monotonic() - start,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
            else:
                outcomes.append(RoutineOutcome(name, True, elapsed, experiment))
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return outcomes


def _sequential_outcome(name, features, scale, sim_invocations, sim_seed, timeout):
    """In-process fallback used when the pool would have one worker.

    ``timeout`` cannot interrupt an in-process solve; it is checked after
    the fact so over-budget routines are at least *reported* the same way
    the pool path reports them.
    """
    start = time.perf_counter()
    try:
        experiment = run_routine(
            name,
            features=features,
            scale=scale,
            sim_invocations=sim_invocations,
            sim_seed=sim_seed,
        )
    except Exception as exc:
        return RoutineOutcome(
            name,
            False,
            time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    elapsed = time.perf_counter() - start
    if timeout is not None and elapsed > timeout:
        return RoutineOutcome(
            name,
            False,
            elapsed,
            experiment=experiment,
            error=f"finished but exceeded {timeout:g}s budget",
        )
    return RoutineOutcome(name, True, elapsed, experiment)
