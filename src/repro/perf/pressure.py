"""Register-pressure estimation for schedules.

Used to quantify the paper's Sec. 5.5 concern ("long-range code motion
increases the register pressure, and the first phase could use more of
it than necessary") and to validate the ``register_pressure`` phase-2
objective: at identical block lengths, deferring definitions must not
increase — and typically decreases — the measured peak pressure.

The estimate is per-block and conservative: a register is counted live
at a cycle if it is live into the block (function-level liveness), or
defined at an earlier cycle of the block and still needed (used later in
the block, or live out of it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.liveness import compute_liveness
from repro.ir.registers import RegisterBank


@dataclass
class PressureReport:
    """Peak and per-block register pressure of a schedule."""

    peak: int
    peak_block: str
    per_block: dict = field(default_factory=dict)  # block -> peak in block
    weighted_average: float = 0.0

    def __repr__(self):
        return (
            f"PressureReport(peak={self.peak} in {self.peak_block}, "
            f"weighted_avg={self.weighted_average:.1f})"
        )


def measure_pressure(schedule, fn, bank=RegisterBank.GR, liveness=None):
    """Estimate GR pressure cycle by cycle; returns a PressureReport."""
    liveness = liveness or compute_liveness(fn)
    per_block = {}
    peak, peak_block = 0, ""
    weighted_total, weighted_cycles = 0.0, 0.0

    for block in schedule.block_order:
        length = schedule.block_length(block)
        if length == 0:
            per_block[block] = 0
            continue
        live_in = {
            r for r in liveness.live_in.get(block, ()) if r.bank is bank
        }
        live_out = {
            r for r in liveness.live_out.get(block, ()) if r.bank is bank
        }
        defs_at, last_use_at = {}, {}
        for cycle in range(1, length + 1):
            for instr in schedule.group(block, cycle):
                for src in instr.regs_read():
                    if src.bank is bank:
                        last_use_at[src] = cycle
                for dst in instr.regs_written():
                    if dst.bank is bank and dst not in defs_at:
                        defs_at[dst] = cycle

        block_peak = 0
        freq = fn.block(block).freq
        for cycle in range(1, length + 1):
            live = set(live_in)
            for reg, def_cycle in defs_at.items():
                if def_cycle > cycle:
                    continue
                needed_later = last_use_at.get(reg, 0) > cycle or reg in live_out
                if needed_later:
                    live.add(reg)
            # Live-in values die after their last in-block use unless
            # live-out.
            for reg in list(live):
                if reg in live_in and reg not in live_out:
                    if last_use_at.get(reg, 0) < cycle and reg not in defs_at:
                        live.discard(reg)
            count = len(live)
            block_peak = max(block_peak, count)
            weighted_total += freq * count
            weighted_cycles += freq
        per_block[block] = block_peak
        if block_peak > peak:
            peak, peak_block = block_peak, block

    return PressureReport(
        peak=peak,
        peak_block=peak_block,
        per_block=per_block,
        weighted_average=(
            weighted_total / weighted_cycles if weighted_cycles else 0.0
        ),
    )
