"""In-order Itanium-2-like pipeline simulator.

This is the hardware substitute for the paper's 1.4 GHz Itanium 2 runs.
Model (deliberately at the level the paper's analysis argues):

* the core issues one *instruction group* (schedule cycle) per clock, in
  order; if any instruction in the group has an operand that is not yet
  available, the whole group stalls until it is (scoreboard semantics —
  "The execution pipeline stalls if an operand of an instruction is not
  yet available", paper Sec. 1);
* register results become available ``latency`` cycles after issue;
  loads may additionally miss: a deterministic per-site hash decides
  misses so the input and output schedule see the *same* miss events;
* taken branches whose edge probability is below 0.5 pay the
  misprediction penalty (static-predictor model);
* a used speculation check very rarely fails (paper: < 0.001 %) and then
  pays the recovery branch penalty;
* empty (collapsed) blocks cost nothing.

The simulator therefore charges exactly the cost the ILP objective cannot
see — cross-block latencies and cache stalls — which is why simulated
speedups land at a fraction of the static reduction, as in the paper
("we currently only optimize the unstalled execution time which is about
half of the total execution time", Sec. 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.itanium2 import ITANIUM2


@dataclass
class SimulationResult:
    cycles: int
    instructions: int
    issue_cycles: int
    stall_cycles: int
    memory_stall_cycles: int
    branch_penalty_cycles: int

    @property
    def achieved_ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def unstalled_fraction(self):
        return self.issue_cycles / self.cycles if self.cycles else 0.0


def _site_hash(trace_index, uid, salt):
    """Deterministic pseudo-random in [0, 1) keyed by trace position/site."""
    value = (trace_index * 1000003 + uid * 7919 + salt * 104729) & 0xFFFFFFFF
    value = (value * 2654435761) & 0xFFFFFFFF
    value ^= value >> 16
    value = (value * 2246822519) & 0xFFFFFFFF
    return ((value >> 8) & 0xFFFFFF) / float(1 << 24)


class PipelineSimulator:
    """Execute a schedule over a block trace and count cycles.

    Parameters
    ----------
    machine:
        Machine description supplying the miss/misprediction penalties.
    miss_rate:
        Default probability that a load misses L1D (per dynamic load).
        Individual loads can override it with a ``miss=`` annotation.
    l2_miss_rate:
        Probability that an L1D miss also misses L2.
    check_failure_rate:
        Probability a speculation check branches to recovery.
    """

    def __init__(
        self,
        machine=ITANIUM2,
        miss_rate=0.03,
        l2_miss_rate=0.05,
        check_failure_rate=0.00001,
    ):
        self.machine = machine
        self.miss_rate = miss_rate
        self.l2_miss_rate = l2_miss_rate
        self.check_failure_rate = check_failure_rate
        self._layout_cache = {}

    def run(self, schedule, fn, trace):
        clock = 0
        issue_cycles = 0
        stall_cycles = 0
        memory_stalls = 0
        branch_penalties = 0
        instructions = 0
        ready = {}  # Register -> absolute cycle the value becomes available

        for index, block_name in enumerate(trace):
            length = schedule.block_length(block_name)
            if length == 0:
                continue  # collapsed block: falls through for free
            cycles = schedule.cycles_of(block_name)
            for t in range(1, length + 1):
                group = cycles.get(t, ())
                issue_at = clock
                load_sourced_wait = 0
                for placed in group:
                    for src in placed.regs_read():
                        avail = ready.get(src, 0)
                        if avail > issue_at:
                            issue_at = avail
                        producer_was_load = ready.get(("load", src), 0)
                        if avail > clock and producer_was_load >= avail:
                            load_sourced_wait = max(
                                load_sourced_wait, avail - clock
                            )
                stall = issue_at - clock
                if stall > 0:
                    stall_cycles += stall
                    memory_stalls += min(stall, load_sourced_wait)
                clock = issue_at + 1
                issue_cycles += 1
                for placed in group:
                    if placed.is_nop:
                        continue
                    instructions += 1
                    latency = max(placed.latency, 1)
                    if placed.is_load:
                        latency += self._memory_penalty(index, placed)
                    for dst in placed.regs_written():
                        ready[dst] = issue_at + latency
                        if placed.is_load:
                            ready[("load", dst)] = issue_at + latency
                        else:
                            ready.pop(("load", dst), None)
                    if placed.is_check:
                        site = placed.root_origin.uid
                        if (
                            _site_hash(index, site, 7)
                            < self.check_failure_rate
                        ):
                            penalty = self.machine.spec_check_failure_penalty
                            clock += penalty
                            branch_penalties += penalty
            # Branch resolution: taken branches cost the front-end bubble,
            # statically mispredicted edges additionally flush the pipe.
            # Both are schedule-independent — the stalled time the paper
            # says its optimization does not touch (Sec. 6.2).
            if index + 1 < len(trace):
                next_block = trace[index + 1]
                penalty = self._branch_penalty(fn, block_name, next_block)
                if not self._falls_through(fn, block_name, next_block):
                    penalty += self.machine.taken_branch_bubble
                clock += penalty
                branch_penalties += penalty

        return SimulationResult(
            cycles=clock,
            instructions=instructions,
            issue_cycles=issue_cycles,
            stall_cycles=stall_cycles,
            memory_stall_cycles=memory_stalls,
            branch_penalty_cycles=branch_penalties,
        )

    # -- internals -----------------------------------------------------------
    def _memory_penalty(self, trace_index, placed):
        """Extra load latency from cache misses (deterministic per site)."""
        site = placed.root_origin.uid
        rate = float(placed.annotations.get("miss", self.miss_rate))
        draw = _site_hash(trace_index, site, 1)
        if draw >= rate:
            return 0
        penalty = self.machine.l1d_miss_penalty
        if _site_hash(trace_index, site, 2) < self.l2_miss_rate:
            penalty += self.machine.l2_miss_penalty
        return penalty

    def _falls_through(self, fn, block_name, next_block):
        """Is ``next_block`` the layout successor of ``block_name``?"""
        names = self._layout_cache.get(id(fn))
        if names is None:
            names = [b.name for b in fn.blocks]
            self._layout_cache[id(fn)] = names
        try:
            at = names.index(block_name)
        except ValueError:
            return False
        return at + 1 < len(names) and names[at + 1] == next_block

    def _branch_penalty(self, fn, block_name, next_block):
        """Static-predictor model: taking an unlikely edge costs the flush."""
        edges = fn.out_edges(block_name)
        if len(edges) < 2:
            return 0
        taken = next((e for e in edges if e.dst == next_block), None)
        if taken is None:
            return 0
        if fn.edge_probability(taken) < 0.5:
            return self.machine.branch_misp_penalty
        return 0
