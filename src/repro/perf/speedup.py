"""Routine ↔ program speedup arithmetic (paper Sec. 6.2).

The paper measures *program* speedups and derives routine speedups via
the routine's weight w (fraction of program time spent in it):

    S_program = 1 / (1 - w + w / S_routine)

We simulate routines directly, so we apply the identity in both
directions: simulated routine speedups produce the Table 1 program
column, and the inverse recovers routine speedups from program numbers
in the tests that cross-check against the paper's values.
"""

from __future__ import annotations


def program_speedup(weight, routine_speedup):
    """Amdahl combination of a routine speedup at weight ``weight``."""
    if routine_speedup <= 0:
        raise ValueError("routine speedup must be positive")
    if not 0.0 <= weight <= 1.0:
        raise ValueError("weight must be within [0, 1]")
    return 1.0 / (1.0 - weight + weight / routine_speedup)


def routine_speedup_from_program(weight, prog_speedup):
    """Inverse of :func:`program_speedup` (the paper's derivation)."""
    if weight <= 0:
        raise ValueError("weight must be positive to attribute speedup")
    denominator = 1.0 / prog_speedup - (1.0 - weight)
    if denominator <= 0:
        raise ValueError(
            "program speedup exceeds what the routine weight allows"
        )
    return weight / denominator
