"""Performance evaluation: static metrics and pipeline simulation.

Two layers, matching how the paper argues:

* :mod:`repro.perf.static_eval` computes the schedule-side numbers of
  Table 1 (weighted/unweighted schedule length, static IPC, instruction
  and bundle deltas);
* :mod:`repro.perf.trace` + :mod:`repro.perf.pipeline` substitute for the
  paper's 1.4 GHz Itanium 2 runs: a profile-directed block trace is
  executed on an in-order, scoreboarded, 6-issue pipeline model with a
  probabilistic D-cache, yielding routine cycle counts from which
  :mod:`repro.perf.speedup` derives routine and program speedups the way
  the paper does from `weight`.
"""

from repro.perf.static_eval import StaticMetrics, compare_schedules
from repro.perf.trace import generate_trace
from repro.perf.pipeline import PipelineSimulator, SimulationResult
from repro.perf.pressure import PressureReport, measure_pressure
from repro.perf.speedup import program_speedup, routine_speedup_from_program

__all__ = [
    "StaticMetrics",
    "compare_schedules",
    "generate_trace",
    "PipelineSimulator",
    "SimulationResult",
    "PressureReport",
    "measure_pressure",
    "program_speedup",
    "routine_speedup_from_program",
]
