"""Static schedule metrics — the schedule-side columns of Table 1."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StaticMetrics:
    """Numbers characterizing one schedule of one routine."""

    weighted_length: float
    total_length: int
    instructions: int
    weighted_instructions: float
    bundles: int
    nops: int
    collapsed_blocks: int

    @property
    def weighted_ipc(self):
        """Frequency-weighted static IPC (nops excluded), paper Sec. 6.2."""
        if self.weighted_length <= 0:
            return 0.0
        return self.weighted_instructions / self.weighted_length

    @property
    def unweighted_ipc(self):
        if self.total_length <= 0:
            return 0.0
        return self.instructions / self.total_length

    @property
    def nop_density(self):
        """Share of issue slots wasted on nops (3 slots per bundle)."""
        if self.bundles <= 0:
            return 0.0
        return self.nops / (3.0 * self.bundles)


def evaluate_schedule(schedule, fn, bundles=None):
    """Compute :class:`StaticMetrics` for a schedule."""
    instructions = 0
    weighted_instructions = 0.0
    for block in schedule.block_order:
        count = sum(
            1 for i in schedule.instructions_in(block) if not i.is_nop
        )
        instructions += count
        weighted_instructions += count * fn.block(block).freq
    return StaticMetrics(
        weighted_length=schedule.weighted_length(fn),
        total_length=schedule.total_length,
        instructions=instructions,
        weighted_instructions=weighted_instructions,
        bundles=bundles.total_bundles if bundles is not None else 0,
        nops=bundles.total_nops if bundles is not None else 0,
        collapsed_blocks=len(schedule.collapsed_blocks()),
    )


@dataclass
class ScheduleComparison:
    """Input-vs-output deltas (Table 1 columns)."""

    metrics_in: StaticMetrics
    metrics_out: StaticMetrics

    @property
    def static_reduction(self):
        before = self.metrics_in.weighted_length
        if before <= 0:
            return 0.0
        return 1.0 - self.metrics_out.weighted_length / before

    @property
    def delta_instructions(self):
        base = self.metrics_in.instructions
        if base == 0:
            return 0.0
        return self.metrics_out.instructions / base - 1.0

    @property
    def delta_bundles(self):
        base = self.metrics_in.bundles
        if base == 0:
            return 0.0
        return self.metrics_out.bundles / base - 1.0


def compare_schedules(fn, schedule_in, schedule_out, bundles_in=None, bundles_out=None):
    return ScheduleComparison(
        evaluate_schedule(schedule_in, fn, bundles_in),
        evaluate_schedule(schedule_out, fn, bundles_out),
    )
