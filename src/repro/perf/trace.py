"""Profile-directed execution traces.

A trace is a sequence of block names obtained by walking the CFG from an
entry block, choosing successors according to the annotated (or
frequency-derived) edge probabilities. Running the input and output
schedules over the *same* trace gives paired cycle counts, mirroring the
paper's before/after runs on identical SPEC inputs.
"""

from __future__ import annotations

import random


def generate_trace(fn, invocations=50, max_blocks=200000, seed=1):
    """Random walk through the CFG; returns a list of block names.

    ``invocations`` full entry→exit walks are concatenated. The walk is
    bounded by ``max_blocks`` as a guard against pathological probability
    annotations (a loop with exit probability 0).
    """
    rng = random.Random(seed)
    entries = fn.entry_blocks
    if not entries:
        raise ValueError(f"{fn.name} has no entry block")
    trace = []
    for _ in range(invocations):
        block = entries[0]
        while len(trace) < max_blocks:
            trace.append(block)
            edges = fn.out_edges(block)
            if not edges:
                break
            if len(edges) == 1:
                block = edges[0].dst
                continue
            probs = [max(fn.edge_probability(e), 0.0) for e in edges]
            total = sum(probs)
            if total <= 0:
                probs = [1.0] * len(edges)
                total = float(len(edges))
            pick = rng.random() * total
            cumulative = 0.0
            block = edges[-1].dst
            for edge, p in zip(edges, probs):
                cumulative += p
                if pick <= cumulative:
                    block = edge.dst
                    break
        if len(trace) >= max_blocks:
            break
    return trace


def expected_block_counts(trace):
    """Histogram of the trace (for calibrating against freq annotations)."""
    counts = {}
    for block in trace:
        counts[block] = counts.get(block, 0) + 1
    return counts
