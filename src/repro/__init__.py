"""Reproduction of Winkel, "Exploring the Performance Potential of Itanium
Processors with ILP-based Scheduling" (CGO 2004).

The package is organised as a stack of subsystems:

``repro.ilp``
    A self-contained integer linear programming substrate (modeling layer,
    revised simplex, branch-and-bound, and a HiGHS backend through scipy).
``repro.machine``
    The Itanium 2 machine model: opcodes, functional units, dispersal
    rules and bundle templates.
``repro.ir``
    Program representation: instructions, basic blocks, control flow,
    dominators, loops, liveness, dependence graphs, plus a parser and
    printer for the textual IA-64 subset used by the examples and tests.
``repro.sched``
    The paper's contribution: the global scheduling ILP formulation with
    speculation, cyclic and partial-ready code motion, reconstruction of
    schedules with compensation code, a correctness verifier, and the
    heuristic baseline scheduler.
``repro.bundle``
    Dynamic-programming bundler that packs instruction groups into
    IA-64 bundles/templates.
``repro.perf``
    Static schedule evaluation and an in-order pipeline simulator used to
    derive speedups.
``repro.workloads``
    Synthetic workload generation calibrated to the paper's routines.

Typical use::

    from repro import optimize_function, parse_function
    fn = parse_function(asm_text)
    result = optimize_function(fn)
    print(result.report())
"""

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "parse_function": ("repro.ir.parser", "parse_function"),
    "format_function": ("repro.ir.printer", "format_function"),
    "IlpScheduler": ("repro.sched.scheduler", "IlpScheduler"),
    "ScheduleFeatures": ("repro.sched.scheduler", "ScheduleFeatures"),
    "optimize_function": ("repro.sched.scheduler", "optimize_function"),
    "ListScheduler": ("repro.sched.list_scheduler", "ListScheduler"),
    "ITANIUM2": ("repro.machine.itanium2", "ITANIUM2"),
}

__all__ = sorted(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name):
    """Resolve the public API lazily (PEP 562).

    Subsystems import numpy/scipy; deferring keeps ``import repro`` cheap
    and lets lower layers (e.g. ``repro.ilp``) be used standalone.
    """
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
