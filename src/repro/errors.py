"""Exception hierarchy shared by all repro subsystems."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IlpError(ReproError):
    """Errors from the ILP substrate (modeling or solving)."""


class InfeasibleError(IlpError):
    """The model has no feasible solution."""


class UnboundedError(IlpError):
    """The model's objective is unbounded."""


class SolverTimeout(IlpError):
    """The solver hit its time or node limit without proving optimality.

    The best incumbent found so far (if any) is attached as ``incumbent``.
    """

    def __init__(self, message, incumbent=None):
        super().__init__(message)
        self.incumbent = incumbent


class ParseError(ReproError):
    """Malformed TIA assembly input."""

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class MachineError(ReproError):
    """Unknown opcode or machine-model inconsistency."""


class SchedulingError(ReproError):
    """The scheduler could not produce or reconstruct a schedule."""


class VerificationError(ReproError):
    """A schedule failed the path-based correctness check."""


class BundlingError(ReproError):
    """An instruction group cannot be packed into any template sequence."""
