"""Hand-written kernels reproducing the paper's figure situations.

Each function returns TIA text whose optimization demonstrates one
figure: the examples under ``examples/`` parse these, run the optimizer
and print before/after schedules.
"""

from __future__ import annotations


def fig1_code_motion_sample():
    """Fig. 1: the four global code-motion kinds around a diamond.

    Block layout: A → {B, C} → D. Upward motion from B to A is
    speculative (kind I); motion from D up across the join needs a
    compensation copy (kind IV).
    """
    return """
.proc code_motion_tour
.livein r32, r33, r34
.liveout r8
.block A freq=100
  add r14 = r32, r33
  cmp.eq p6, p7 = r14, r0
  (p6) br.cond C
.block B freq=70
  add r15 = r32, 8
  xor r16 = r15, r33
  br D
.block C freq=30
  add r17 = r33, r34
  and r18 = r17, r32
.block D freq=100
  add r19 = r14, r34
  sub r20 = r19, r32
  shladd r8 = r20, r14
  br.ret b0
.endp
"""


def fig4_speculation_sample():
    """Fig. 4: a load below a conditional branch becomes an ld.s above it.

    The load sits in block B guarded by the branch in A; hoisting it
    requires control speculation, with the chk.s staying at the original
    program point.
    """
    return """
.proc speculation_demo
.livein r32, r33, r40
.liveout r8
.block A freq=100
  add r14 = r32, r33
  cmp.eq p6, p7 = r14, r0
  (p6) br.cond C
.block B freq=60
  ld8 r15 = [r14] cls=heap
  add r16 = r15, r32
  add r8 = r16, r40
.block C freq=100
  st8 [r33+8] = r8 cls=stack
  br.ret b0
.endp
"""


def fig5_cyclic_sample():
    """Fig. 5: a loop whose critical path shrinks with cyclic motion.

    The address computation ``add r20 = r15, r33`` feeds the load at the
    top of each iteration; cyclically moving it lets iteration i compute
    the address iteration i+1 needs.
    """
    return """
.proc cyclic_demo
.livein r32, r33
.liveout r8
.block PRE freq=10
  add r15 = r32, 0
.block LOOP freq=1000 succ=LOOP:0.99,POST:0.01
  add r20 = r15, r33
  ld8 r21 = [r20] cls=heap
  add r15 = r21, r32
  xor r23 = r21, r33
  and r24 = r23, r21
  or r25 = r24, r23
  cmp.ne p6, p7 = r25, r0
  (p6) br.cond LOOP
.block POST freq=10
  add r8 = r15, 0
  br.ret b0
.endp
"""


def fig6_partial_ready_sample():
    """Fig. 6: partial-ready code motion across a join.

    On the likely path A→C the load's address is ready early; on the
    unlikely path A→B→C the mov overwrites the address register, so the
    hoisted ld.s needs a compensation copy after the mov.
    """
    return """
.proc partial_ready_demo
.livein r32, r33, r34
.liveout r8
.block A freq=100 succ=B:0.1,C:0.9
  add r20 = r32, r33
  cmp.eq p6, p7 = r32, r0
  (p6) br.cond C
.block B freq=10
  mov r20 = r34
.block C freq=100
  ld8 r15 = [r20] cls=heap
  add r16 = r15, r33
  add r8 = r16, r32
  br.ret b0
.endp
"""
