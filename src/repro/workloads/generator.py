"""Seeded synthetic routine generator.

Routines are built in three stages:

1. a structured CFG skeleton (chains, triangles, diamonds, loops) sized
   to the requested block and loop counts — always reducible, like the
   compiler output the paper consumes;
2. profile annotation: branch probabilities and loop trip counts yield
   block frequencies the way ``-prof_use`` annotations do;
3. instruction filling: each block receives a mix of loads, stores, ALU
   ops, shifts and compares whose operands are drawn from recently
   defined registers (dependence depth is controlled by how far back the
   generator reaches), with a compare feeding each conditional branch.
   A configurable number of load+check pairs is emitted as ``ld.s``/
   ``chk.s`` to model the input compiler's own speculation (undone by the
   postpass driver and reported as Table 2's "Spec. in").

All randomness comes from one seeded ``random.Random`` so a spec always
produces the identical routine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction, MemRef
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.ir.registers import reg


@dataclass(frozen=True)
class RoutineSpec:
    """Recipe for one synthetic routine."""

    name: str
    instructions: int = 80
    blocks: int = 10
    loops: int = 1
    seed: int = 1
    load_fraction: float = 0.22
    store_fraction: float = 0.10
    shift_fraction: float = 0.12
    input_spec_loads: int = 0  # ld.s/chk.s pairs planted in the input
    weight: float = 0.10  # routine weight in its program (Table 1)
    miss_rate: float = 0.03  # D-cache behaviour for the simulator
    base_freq: float = 1000.0
    trip_count: tuple = (4, 16)  # loop trip count range
    alias_classes: tuple = ("heap", "stack", "glob")
    program: str = ""  # e.g. "gzip" (report column)
    input_set: str = ""  # e.g. "program" (report column)


# -- CFG skeleton ------------------------------------------------------------------


@dataclass
class _SkelBlock:
    name: str
    freq: float = 0.0
    succs: list = field(default_factory=list)  # (target, prob) pairs
    is_latch: bool = False
    loop_header: str | None = None
    in_loop: str | None = None  # innermost loop header this block belongs to
    iv: str | None = None  # loop induction register (latches update it)
    idom: str | None = None  # immediate dominator (for operand availability)
    init_counters: list = field(default_factory=list)  # counters to zero here
    counter: tuple | None = None  # (reg name, trips) for the exit test
    counter_bump: str | None = None  # latch increments this counter


def _build_skeleton(spec, rng):
    """Structured CFG: list of _SkelBlock in layout order."""
    blocks = []
    counter = [0]

    def new_block():
        name = f"B{counter[0]}"
        counter[0] += 1
        block = _SkelBlock(name)
        blocks.append(block)
        return block

    budget = [spec.blocks - 2]  # entry and exit reserved
    loops_left = [spec.loops]
    loop_counter = [0]

    def build_region(entry_freq):
        """Emit a region; returns (first block, last block). Linear chain of
        shapes: plain block / triangle / diamond / loop."""
        first = new_block()
        first.freq = entry_freq
        current = first
        while budget[0] > 0:
            budget[0] -= 1
            choice = rng.random()
            if loops_left[0] > 0 and (choice < 0.35 or budget[0] <= loops_left[0] * 2):
                loops_left[0] -= 1
                current = _attach_loop(current, rng)
            elif choice < 0.6 and budget[0] >= 2:
                budget[0] -= 2
                current = _attach_diamond(current, rng)
            elif choice < 0.8 and budget[0] >= 1:
                budget[0] -= 1
                current = _attach_triangle(current, rng)
            else:
                nxt = new_block()
                nxt.freq = current.freq
                nxt.idom = current.name
                current.succs.append((nxt.name, 1.0))
                current = nxt
            if rng.random() < 0.15 and budget[0] <= 0:
                break
        return first, current

    def _attach_triangle(current, rng_):
        side = new_block()
        join = new_block()
        side.idom = current.name
        join.idom = current.name
        p_side = rng_.uniform(0.2, 0.8)
        current.succs.append((side.name, p_side))
        current.succs.append((join.name, 1.0 - p_side))
        side.succs.append((join.name, 1.0))
        side.freq = current.freq * p_side
        join.freq = current.freq
        return join

    def _attach_diamond(current, rng_):
        left = new_block()
        right = new_block()
        join = new_block()
        left.idom = current.name
        right.idom = current.name
        join.idom = current.name
        p_left = rng_.uniform(0.15, 0.85)
        current.succs.append((left.name, p_left))
        current.succs.append((right.name, 1.0 - p_left))
        left.succs.append((join.name, 1.0))
        right.succs.append((join.name, 1.0))
        left.freq = current.freq * p_left
        right.freq = current.freq * (1.0 - p_left)
        join.freq = current.freq
        return join

    def _attach_loop(current, rng_):
        header = new_block()
        body = None
        if budget[0] > 0:
            budget[0] -= 1
            body = new_block()
            body.idom = header.name
        exit_block = new_block()
        header.idom = current.name
        exit_block.idom = header.name
        trips = rng_.randint(*spec.trip_count)
        header.freq = current.freq * trips
        current.succs.append((header.name, 1.0))
        p_exit = 1.0 / trips
        # Each loop gets an induction register updated in the latch; loads
        # inside the loop prefer it as their base, creating the loop-carried
        # chain every real loop has (and that blocks wholesale hoisting).
        iv = f"r{34 + (loop_counter[0] % 6)}"
        # A dedicated trip counter makes every generated loop *counted* —
        # like compiled for-loops — so interpreter executions terminate.
        counter_reg = f"r{121 + (loop_counter[0] % 7)}"
        loop_counter[0] += 1
        current.init_counters.append(counter_reg)
        header.in_loop = header.name
        header.iv = iv
        header.counter = (counter_reg, trips)
        if body is not None:
            body.freq = header.freq * (1.0 - p_exit)
            header.succs.append((body.name, 1.0 - p_exit))
            header.succs.append((exit_block.name, p_exit))
            body.succs.append((header.name, 1.0))
            body.is_latch = True
            body.loop_header = header.name
            body.in_loop = header.name
            body.iv = iv
            body.counter_bump = counter_reg
        else:
            header.succs.append((header.name, 1.0 - p_exit))
            header.succs.append((exit_block.name, p_exit))
            header.is_latch = True
            header.loop_header = header.name
            header.counter_bump = counter_reg
        exit_block.freq = current.freq
        return exit_block

    entry_freq = spec.base_freq
    first, last = build_region(entry_freq)
    exit_block = new_block()
    exit_block.freq = last.freq
    exit_block.idom = last.name
    last.succs.append((exit_block.name, 1.0))
    return blocks


# -- instruction filling -------------------------------------------------------------


class _RegPool:
    """Operand pool for one block: registers whose definitions dominate it.

    Using only dominating definitions guarantees the generated code never
    reads a register that is undefined on some path — exactly like
    compiler output from a source language — which keeps differential
    semantic testing of the scheduler meaningful (a speculated definition
    may legally change an *undefined* value, so such reads must not
    exist).
    """

    def __init__(self, rng, available, counters):
        self.rng = rng
        self.recent = list(available)
        self.block_defs = []
        self.counters = counters  # shared {"gr": int, "pr": int}

    def fresh_gr(self):
        name = reg(f"r{self.counters['gr']}")
        self.counters["gr"] += 1
        if self.counters["gr"] > 120:
            self.counters["gr"] = 40
        return name

    def fresh_pr_pair(self):
        a = reg(f"p{self.counters['pr']}")
        b = reg(f"p{self.counters['pr'] + 1}")
        self.counters["pr"] += 2
        if self.counters["pr"] > 60:
            self.counters["pr"] = 16
        return a, b

    def define(self, register):
        self.recent.append(register)
        self.block_defs.append(register)

    def pick(self, depth=6):
        """A recently available register — small depth = long dep chains."""
        window = self.recent[-depth:] if self.recent else []
        if not window:
            return reg("r32")
        return self.rng.choice(window)


def generate_routine(spec):
    """Build the routine for ``spec``; returns a validated Function."""
    rng = random.Random(spec.seed)
    skeleton = _build_skeleton(spec, rng)
    return _emit_routine(spec, skeleton, rng)


def _emit_routine(spec, skeleton, rng):
    """Instruction-fill ``skeleton`` and parse the emitted routine text."""
    live_in = [reg(f"r{i}") for i in range(32, 40)]
    fn_lines = [f".proc {spec.name}"]
    fn_lines.append(".livein " + ", ".join(r.name for r in live_in))

    total_freq = sum(b.freq for b in skeleton) or 1.0
    body_budget = max(spec.instructions - 2 * len(skeleton), len(skeleton))
    counters = {"gr": 40, "pr": 16}
    avail_entry = {}  # block name -> ordered dominating definitions
    block_defs = {}
    produced = []
    spec_loads_left = spec.input_spec_loads

    for index, skel in enumerate(skeleton):
        if skel.idom is None:
            avail_entry[skel.name] = list(live_in)
        else:
            avail_entry[skel.name] = avail_entry[skel.idom] + block_defs[skel.idom]
        # Cap the operand window so dependence chains stay plausible.
        avail_entry[skel.name] = avail_entry[skel.name][-24:]
        pool = _RegPool(rng, avail_entry[skel.name], counters)
        share = max(1, round(body_budget * (1.0 / len(skeleton))))
        jitter = rng.randint(-1, 2)
        count = max(1, share + jitter)
        succ_text = ""
        if skel.succs:
            succ_text = " succ=" + ",".join(
                f"{name}:{prob:.3f}" for name, prob in skel.succs
            )
        fn_lines.append(f".block {skel.name} freq={skel.freq:.6g}{succ_text}")

        lines, new_spec_loads = _fill_block(
            spec, rng, pool, count, produced, spec_loads_left, iv=skel.iv
        )
        spec_loads_left -= new_spec_loads
        block_defs[skel.name] = list(pool.block_defs)
        if skel.is_latch and skel.iv is not None:
            lines.append(f"adds {skel.iv} = 8, {skel.iv}")
        if skel.counter_bump is not None:
            lines.append(f"adds {skel.counter_bump} = 1, {skel.counter_bump}")
        for counter in skel.init_counters:
            lines.append(f"mov {counter} = 0")
        fn_lines.extend("    " + line for line in lines)

        # Terminator. For two-way blocks the layout-next successor takes the
        # fall-through edge; the conditional branch targets the other one.
        next_name = skeleton[index + 1].name if index + 1 < len(skeleton) else None
        if len(skel.succs) > 1:
            p_true, p_false = pool.fresh_pr_pair()
            target = next(
                (name for name, _p in skel.succs if name != next_name),
                skel.succs[0][0],
            )
            if skel.counter is not None:
                # Counted loop exit: branch back while counter < trips, or
                # leave once it reaches the trip count.
                counter, trips = skel.counter
                relation = "cmp.lt" if target == skel.name else "cmp.ge"
                fn_lines.append(
                    f"    {relation} {p_true.name}, {p_false.name} = "
                    f"{counter}, {trips}"
                )
            else:
                lhs = pool.pick()
                cond = rng.choice(["cmp.eq", "cmp.lt", "cmp.ne"])
                fn_lines.append(
                    f"    {cond} {p_true.name}, {p_false.name} = {lhs.name}, r0"
                )
            fn_lines.append(f"    ({p_true.name}) br.cond {target}")
        elif len(skel.succs) == 1:
            target = skel.succs[0][0]
            next_name = skeleton[index + 1].name if index + 1 < len(skeleton) else None
            if target != next_name:
                fn_lines.append(f"    br {target}")
        else:
            fn_lines.append("    br.ret b0")

    # Live-outs must be defined on every path: pick from definitions that
    # dominate the exit block (plus r8, which callers conventionally read).
    exit_name = skeleton[-1].name
    dominating = avail_entry[exit_name] + block_defs.get(exit_name, [])
    candidates = [r for r in dominating if r.bank.value == "r"]
    live_out = sorted({r.name for r in candidates[-3:]} | {"r8"})
    fn_lines.insert(2, ".liveout " + ", ".join(live_out))
    fn_lines.append(".endp")
    text = "\n".join(fn_lines) + "\n"
    fn = parse_function(text)
    return fn


# -- multi-region routines ----------------------------------------------------


@dataclass(frozen=True)
class MultiRegionSpec:
    """Recipe for a multi-region routine: segments joined by corridors.

    The standing workload for :mod:`repro.sched.decompose`. Each segment
    is a structured sub-CFG (triangles, diamonds, loops) built by the
    ordinary skeleton machinery; segments are chained through
    *corridors* of straight-line blocks at the uniform base frequency.
    A corridor longer than the scheduler's ``max_hops`` guarantees the
    decomposition legality rule finds a frequency-neutral boundary
    inside it, so ``segments - 1`` joins yield that many articulation
    points (``segments >= 4`` gives the required three or more).
    """

    name: str
    segments: int = 4
    segment_instructions: int = 36
    segment_blocks: int = 6
    corridor_blocks: int = 5  # > max_hops keeps at least one boundary legal
    loops_per_segment: int = 1
    seed: int = 1
    base_freq: float = 1000.0
    load_fraction: float = 0.22
    store_fraction: float = 0.10
    shift_fraction: float = 0.12
    trip_count: tuple = (4, 16)
    alias_classes: tuple = ("heap", "stack", "glob")
    weight: float = 0.10
    miss_rate: float = 0.03


def _segment_skeleton(spec, rng, segment):
    """One segment's structured skeleton, block names prefixed ``S<i>``."""
    seg_spec = RoutineSpec(
        name=f"{spec.name}_s{segment}",
        instructions=spec.segment_instructions,
        blocks=spec.segment_blocks,
        loops=spec.loops_per_segment,
        seed=rng.randrange(1 << 30),
        base_freq=spec.base_freq,
        trip_count=spec.trip_count,
    )
    skeleton = _build_skeleton(seg_spec, rng)
    rename = {blk.name: f"S{segment}{blk.name}" for blk in skeleton}
    for blk in skeleton:
        blk.name = rename[blk.name]
        blk.succs = [(rename[t], p) for t, p in blk.succs]
        if blk.idom is not None:
            blk.idom = rename.get(blk.idom, blk.idom)
        if blk.loop_header is not None:
            blk.loop_header = rename[blk.loop_header]
        if blk.in_loop is not None:
            blk.in_loop = rename[blk.in_loop]
        if blk.counter is not None or blk.counter_bump is not None:
            # Counter registers are shared state; nothing to rename.
            pass
    return skeleton


def _multi_region_skeleton(spec, rng):
    """Chain segment skeletons through equal-frequency corridors."""
    blocks = []
    tail = None
    for segment in range(spec.segments):
        seg = _segment_skeleton(spec, rng, segment)
        if tail is not None:
            for position in range(spec.corridor_blocks):
                corridor = _SkelBlock(
                    f"S{segment}J{position}", freq=spec.base_freq
                )
                corridor.idom = tail.name
                tail.succs.append((corridor.name, 1.0))
                blocks.append(corridor)
                tail = corridor
            tail.succs.append((seg[0].name, 1.0))
            seg[0].idom = tail.name
        blocks.extend(seg)
        tail = seg[-1]
    return blocks


def generate_multi_region(spec):
    """Build the multi-region routine for ``spec``."""
    rng = random.Random(spec.seed)
    skeleton = _multi_region_skeleton(spec, rng)
    emit_spec = RoutineSpec(
        name=spec.name,
        instructions=spec.segments * spec.segment_instructions,
        blocks=len(skeleton),
        loops=spec.segments * spec.loops_per_segment,
        seed=spec.seed,
        load_fraction=spec.load_fraction,
        store_fraction=spec.store_fraction,
        shift_fraction=spec.shift_fraction,
        base_freq=spec.base_freq,
        trip_count=spec.trip_count,
        alias_classes=spec.alias_classes,
        weight=spec.weight,
        miss_rate=spec.miss_rate,
    )
    return _emit_routine(emit_spec, skeleton, rng)


def multi_region_family(count=3, scale=1.0, seed=1):
    """Yield ``count`` multi-region routines, one at a time.

    ``scale`` multiplies segment size and (mildly) segment count, so a
    sweep driver can dial the family from smoke-test to the ≥10k-row
    models the decompose benchmark gates on. Generation is *streaming* —
    each routine is built only when the consumer asks for it, so a 10×
    corpus never holds more than one routine in memory.
    """
    for position in range(count):
        spec = MultiRegionSpec(
            name=f"mr{position}",
            segments=max(4, int(round(4 + position + (scale - 1.0)))),
            segment_instructions=max(12, int(round(36 * scale))),
            segment_blocks=max(4, min(10, int(round(5 + scale)))),
            seed=seed + 97 * position,
        )
        yield spec, generate_multi_region(spec)


# -- loop-dominated routines --------------------------------------------------


@dataclass(frozen=True)
class LoopDominatedSpec:
    """Recipe for a loop-dominated routine: one hot counted inner loop.

    The standing workload for :mod:`repro.sched.modulo` (Table-2-style
    sweeps with a software-pipelining column).  The routine is
    preheader / single-block counted loop / exit, shaped exactly like
    compiled ``for``-loop output so :func:`recognize_counted_loop`
    accepts it: counter from 0 by 1 to a literal trip count, compare and
    backedge branch at the bottom, counter dead outside the loop.  The
    body mixes address-chained loads (through the induction register),
    ALU work, loop-carried accumulator recurrences, and optionally a
    store — the knobs that move ResMII vs RecMII against each other.
    """

    name: str
    body_instructions: int = 8
    accumulators: int = 1  # loop-carried ``acc = acc op x`` recurrences
    trips: int = 13
    stores: int = 1  # st8s in the body (invariant base, glob class)
    seed: int = 1
    base_freq: float = 100.0
    alias_classes: tuple = ("heap", "stack")


def generate_loop_dominated(spec):
    """Build the loop-dominated routine for ``spec``."""
    rng = random.Random(spec.seed)
    live_in = [f"r{i}" for i in range(32, 40)]
    iv = "r15"
    counter = "r9"
    accs = [f"r{40 + k}" for k in range(max(0, spec.accumulators))]
    lines = [f".proc {spec.name}"]
    lines.append(".livein " + ", ".join(live_in))
    lines.append(".liveout r8")

    lines.append(f".block PRE freq={spec.base_freq:g} succ=LOOP:1.0")
    lines.append(f"    mov {counter} = 0")
    lines.append(f"    add {iv} = {rng.choice(live_in)}, 0")
    for acc in accs:
        lines.append(f"    add {acc} = {rng.choice(live_in)}, 0")

    trips = max(1, spec.trips)
    p_back = 1.0 - 1.0 / (trips + 1)
    lines.append(
        f".block LOOP freq={spec.base_freq * trips:g} "
        f"succ=LOOP:{p_back:.4f},POST:{1.0 - p_back:.4f}"
    )
    # Operand pool: registers defined *earlier* this iteration (or in
    # PRE), so every read is defined on the first trip too — accumulator
    # and induction recurrences are the only loop-carried value flow.
    window = list(live_in) + [iv] + accs
    fresh = 50
    stores_left = max(0, spec.stores)
    body = []
    for position in range(max(1, spec.body_instructions)):
        draw = rng.random()
        if draw < 0.30:
            dest = f"r{fresh}"
            fresh += 1
            offset = rng.choice((0, 8, 16, 24))
            cls = rng.choice(spec.alias_classes)
            body.append(f"ld8 {dest} = [{iv}+{offset}] cls={cls}")
            window.append(dest)
        elif draw < 0.45 and accs:
            acc = rng.choice(accs)
            op = rng.choice(("add", "xor", "or"))
            body.append(f"{op} {acc} = {acc}, {rng.choice(window[-8:])}")
        elif stores_left > 0 and draw < 0.58:
            stores_left -= 1
            base = rng.choice(("r33", "r34"))
            offset = rng.choice((0, 8, 16))
            body.append(
                f"st8 [{base}+{offset}] = {rng.choice(window[-6:])} cls=glob"
            )
        else:
            dest = f"r{fresh}"
            fresh += 1
            op = rng.choice(("add", "sub", "and", "or", "xor", "shladd"))
            src1 = rng.choice(window[-6:])
            src2 = rng.choice(window[-10:])
            body.append(f"{op} {dest} = {src1}, {src2}")
            window.append(dest)
    body.append(f"adds {iv} = 8, {iv}")
    body.append(f"adds {counter} = 1, {counter}")
    body.append(f"cmp.lt p16, p17 = {counter}, {trips}")
    body.append("(p16) br.cond LOOP")
    lines.extend("    " + line for line in body)

    lines.append(f".block POST freq={spec.base_freq:g}")
    result = accs[0] if accs else window[-1]
    lines.append(f"    add r8 = {result}, 0")
    lines.append("    br.ret b0")
    lines.append(".endp")
    return parse_function("\n".join(lines) + "\n")


def loop_dominated_family(count=8, scale=1.0, seed=1):
    """Yield ``count`` loop-dominated routines, one at a time.

    ``scale`` multiplies body size, so the sweep driver can dial the
    family from smoke kernels to bodies whose modulo ILPs stress the
    solver.  Position varies trip counts, accumulator depth, and store
    mix — spreading routines across the ResMII-bound / RecMII-bound
    spectrum.  Streaming like :func:`multi_region_family`: each routine
    is built only when the consumer asks for it.
    """
    for position in range(count):
        spec = LoopDominatedSpec(
            name=f"loop{position}",
            body_instructions=max(4, int(round((6 + 2 * position) * scale))),
            accumulators=1 + position % 3,
            trips=5 + 3 * position,
            stores=position % 2,
            seed=seed + 97 * position,
        )
        yield spec, generate_loop_dominated(spec)


def _fill_block(spec, rng, pool, count, produced, spec_loads_left, iv=None):
    """Generate ``count`` instruction lines for one block.

    ``iv`` is the surrounding loop's induction register: loads prefer it
    as base so loop iterations are chained through memory addressing.
    """
    lines = []
    spec_loads = 0
    pending_check = None
    for position in range(count):
        draw = rng.random()
        if draw < spec.load_fraction:
            dest = pool.fresh_gr()
            from repro.ir.registers import reg as _reg
            base = _reg(iv) if (iv is not None and rng.random() < 0.6) else pool.pick(depth=10)
            offset = rng.choice((0, 8, 16, 24, 32))
            cls = rng.choice(spec.alias_classes)
            if spec_loads_left - spec_loads > 0 and rng.random() < 0.5:
                lines.append(
                    f"ld8.s {dest.name} = [{base.name}+{offset}] cls={cls}"
                )
                pending_check = dest
                spec_loads += 1
            else:
                lines.append(
                    f"ld8 {dest.name} = [{base.name}+{offset}] cls={cls}"
                )
            pool.define(dest)
            produced.append(dest)
        elif draw < spec.load_fraction + spec.store_fraction:
            base = pool.pick(depth=12)
            value = pool.pick(depth=4)
            offset = rng.choice((0, 8, 16))
            cls = rng.choice(spec.alias_classes)
            lines.append(f"st8 [{base.name}+{offset}] = {value.name} cls={cls}")
        elif draw < spec.load_fraction + spec.store_fraction + spec.shift_fraction:
            dest = pool.fresh_gr()
            src = pool.pick(depth=4)
            op = rng.choice(("shl", "shr.u", "extr.u", "zxt4", "dep.z"))
            if op in ("shl", "shr.u", "extr.u", "dep.z"):
                lines.append(f"{op} {dest.name} = {src.name}, {rng.randint(1, 15)}")
            else:
                lines.append(f"{op} {dest.name} = {src.name}")
            pool.define(dest)
            produced.append(dest)
        else:
            dest = pool.fresh_gr()
            op = rng.choice(("add", "sub", "and", "or", "xor", "shladd", "adds"))
            src1 = pool.pick(depth=4)
            if op == "adds":
                lines.append(f"{op} {dest.name} = {rng.randint(-64, 64)}, {src1.name}")
            else:
                src2 = pool.pick(depth=8)
                lines.append(f"{op} {dest.name} = {src1.name}, {src2.name}")
            pool.define(dest)
            produced.append(dest)
        if pending_check is not None and rng.random() < 0.6:
            lines.append(f"chk.s {pending_check.name}, recover_{pending_check.name}")
            pending_check = None
    if pending_check is not None:
        lines.append(f"chk.s {pending_check.name}, recover_{pending_check.name}")
    return lines, spec_loads
