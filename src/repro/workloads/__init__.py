"""Workloads: synthetic routines calibrated to the paper's experiments.

The paper optimizes nine hot SPECint2000 routines compiled by Intel's
compiler. Neither SPEC sources nor an IA-64 toolchain are available (or
redistributable), so :mod:`repro.workloads.generator` builds seeded
synthetic routines with the same *problem shape* — instruction count,
block count, loop count, operation mix, block frequency profile and
planted input speculation — and :mod:`repro.workloads.spec_routines`
carries one calibrated configuration per Table 1 routine.
:mod:`repro.workloads.samples` holds the small hand-written kernels
reproducing the situations of Figures 1 and 4–6.
"""

from repro.workloads.generator import RoutineSpec, generate_routine
from repro.workloads.spec_routines import SPEC_ROUTINES, build_spec_routine
from repro.workloads.samples import (
    fig1_code_motion_sample,
    fig4_speculation_sample,
    fig5_cyclic_sample,
    fig6_partial_ready_sample,
)

__all__ = [
    "RoutineSpec",
    "generate_routine",
    "SPEC_ROUTINES",
    "build_spec_routine",
    "fig1_code_motion_sample",
    "fig4_speculation_sample",
    "fig5_cyclic_sample",
    "fig6_partial_ready_sample",
]
