"""Calibrated configurations for the paper's nine routines (Tables 1/2).

Each spec mirrors the published characteristics: instruction count
("Ins. in"), basic blocks (#BB), loops (#Loops), input speculation
("Spec. in"), routine weight and program/input-set labels. The cache
behaviour (``miss_rate``) encodes the stall characterization of
Sec. 6.2: the gzip routines are compute-intensive and cache friendly,
``xfree`` has "a relatively high average memory latency", the vpr heap
routines sit in between.
"""

from __future__ import annotations

from repro.workloads.generator import RoutineSpec, generate_routine

SPEC_ROUTINES = (
    RoutineSpec(
        name="longest_match",
        program="gzip",
        input_set="program",
        instructions=191,
        blocks=26,
        loops=2,
        input_spec_loads=15,
        weight=0.68,
        miss_rate=0.008,
        load_fraction=0.26,
        seed=101,
    ),
    RoutineSpec(
        name="deflate",
        program="gzip",
        input_set="random",
        instructions=226,
        blocks=37,
        loops=3,
        input_spec_loads=4,
        weight=0.14,
        miss_rate=0.030,
        load_fraction=0.20,
        store_fraction=0.13,
        seed=102,
    ),
    RoutineSpec(
        name="send_bits",
        program="gzip",
        input_set="graphics",
        instructions=86,
        blocks=12,
        loops=0,
        input_spec_loads=0,
        weight=0.15,
        miss_rate=0.012,
        load_fraction=0.18,
        store_fraction=0.14,
        seed=103,
    ),
    RoutineSpec(
        name="firstone",
        program="crafty",
        input_set="ref",
        instructions=37,
        blocks=8,
        loops=0,
        input_spec_loads=0,
        weight=0.10,
        miss_rate=0.020,
        load_fraction=0.12,
        shift_fraction=0.30,
        seed=104,
    ),
    RoutineSpec(
        name="get_heap_head",
        program="vpr",
        input_set="route/ref",
        instructions=71,
        blocks=9,
        loops=2,
        input_spec_loads=3,
        weight=0.30,
        miss_rate=0.035,
        load_fraction=0.28,
        seed=105,
    ),
    RoutineSpec(
        name="add_to_heap",
        program="vpr",
        input_set="route/ref",
        instructions=108,
        blocks=12,
        loops=1,
        input_spec_loads=2,
        weight=0.13,
        miss_rate=0.035,
        load_fraction=0.24,
        store_fraction=0.16,
        seed=106,
    ),
    RoutineSpec(
        name="qSort3",
        program="bzip2",
        input_set="ref",
        instructions=241,
        blocks=22,
        loops=4,
        input_spec_loads=7,
        weight=0.12,
        miss_rate=0.025,
        load_fraction=0.25,
        store_fraction=0.12,
        seed=107,
    ),
    RoutineSpec(
        name="xfree",
        program="parser",
        input_set="ref",
        instructions=46,
        blocks=9,
        loops=1,
        input_spec_loads=2,
        weight=0.10,
        miss_rate=0.080,
        load_fraction=0.30,
        store_fraction=0.16,
        seed=108,
    ),
    RoutineSpec(
        name="prune_match",
        program="parser",
        input_set="ref",
        instructions=69,
        blocks=10,
        loops=1,
        input_spec_loads=4,
        weight=0.06,
        miss_rate=0.040,
        load_fraction=0.27,
        seed=109,
    ),
)

SPEC_BY_NAME = {spec.name: spec for spec in SPEC_ROUTINES}


def build_spec_routine(name, scale=1.0):
    """Generate the named routine, optionally scaled down for quick runs.

    ``scale`` < 1 shrinks instruction/block counts proportionally (the
    benchmark harness uses this for smoke configurations; published
    numbers use scale=1).
    """
    spec = SPEC_BY_NAME[name]
    if scale != 1.0:
        from dataclasses import replace

        spec = replace(
            spec,
            instructions=max(10, int(spec.instructions * scale)),
            blocks=max(4, int(spec.blocks * scale)),
            loops=min(spec.loops, max(0, int(spec.loops * scale + 0.5))),
            input_spec_loads=int(spec.input_spec_loads * scale + 0.5),
        )
    return generate_routine(spec)
