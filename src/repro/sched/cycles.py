"""Per-block cycle ranges G(A) — paper Sec. 4.2 / 6.1.

The number of cycles reserved per block bounds the ILP size, so it is
"chosen pragmatically: it is set to the length of A in the input schedule
plus a constant reserve (usually k = 1)". The safe alternative — a list
scheduling upper bound over Θ⁻¹(A), all instructions that could move into
the block — is available as ``upper_bound_lengths`` and is what the
scheduler falls back to when a model proves infeasible for a block that
was sized too tightly.
"""

from __future__ import annotations

from repro.machine.itanium2 import ITANIUM2


def lengths_from_input(input_schedule, fn, reserve=1, extra=()):
    """G_A = input length + reserve (blocks in ``extra`` get reserve + 1)."""
    lengths = {}
    for block in fn.blocks:
        base = input_schedule.block_length(block.name)
        bonus = 1 if block.name in extra else 0
        lengths[block.name] = max(base + reserve + bonus, 1)
    return lengths


def upper_bound_lengths(region, machine=ITANIUM2):
    """List-scheduling upper bound on an optimal local schedule of Θ⁻¹(A).

    Greedy resource-only bound: dependence-free packing of every candidate
    instruction at full width can never need more cycles than an optimal
    schedule of the subset actually placed there, plus the critical path of
    instructions pinned to the block — we take the max of the two bounds.
    """
    lengths = {}
    for block in region.fn.blocks:
        candidates = region.blocks_hosting(block.name)
        width = machine.issue_width
        resource_bound = -(-len(candidates) // width) if candidates else 0
        pinned_len = _critical_path_length(
            [i for i in block.instructions if not i.is_nop], region.ddg
        )
        lengths[block.name] = max(resource_bound, pinned_len, 1)
    return lengths


def grow_lengths(lengths, factor=1, bump=1):
    """Uniformly enlarge all ranges (infeasibility recovery)."""
    return {name: value * factor + bump for name, value in lengths.items()}


def _critical_path_length(instrs, ddg):
    """Dependence-height bound in cycles (zero-latency edges share cycles)."""
    in_set = set(instrs)
    memo = {}

    def height(instr):
        if instr in memo:
            return memo[instr]
        memo[instr] = 1  # pre-seed to cut unexpected cycles short
        best = 1
        for edge in ddg.succs(instr):
            if edge.dst in in_set and edge.dst is not instr:
                best = max(best, edge.latency + height(edge.dst))
        memo[instr] = best
        return best

    return max((height(i) for i in instrs), default=0)
