"""ILP-based software pipelining (modulo scheduling).

The paper closes with "currently we are studying ... how [the model] can
be modified to support software pipelining" — this module is that
extension: optimal modulo scheduling of single-block innermost loops,
built on the same ILP substrate.

Formulation (classic time-indexed modulo scheduling):

* body instructions get binaries ``x[n,t]`` over ``t ∈ 0..T_max`` with
  ``Σ_t x[n,t] = 1``; branch instructions are excluded (the kernel's
  backedge branch recurs implicitly every II cycles);
* dependences carry an iteration *distance*: same-iteration edges from
  the in-block order, loop-carried edges (distance 1) from definitions
  reaching the next iteration and from carried anti/output pairs;
  feasibility requires ``t_n - t_m >= lat - distance · II``, linear in
  the start-time expressions ``Σ t·x``;
* modulo resource constraints: for every kernel slot ``s < II`` the
  instructions with ``t ≡ s (mod II)`` must fit one dispersal window
  (issue width and per-unit port caps, as in eq. (6)).

Search: II rises from the resource-derived lower bound (ResMII) and the
recurrence bound (RecMII) until the ILP is feasible — the first feasible
II is optimal. The result carries kernel, prologue and epilogue
instruction sequences (stage-annotated copies).

Restrictions: single-block loops (header == latch) without calls or
further control flow, mirroring where production compilers apply SWP and
exactly the loops the paper's routine selection avoided.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.ilp import Model, lin_sum, solve_model
from repro.ir.ddg import DepKind
from repro.machine.itanium2 import ITANIUM2
from repro.machine.units import UnitKind
from repro.sched.modulo.bounds import (
    critical_path as _critical_path,
    has_positive_cycle as _has_positive_cycle,
    recurrence_mii,
    resource_mii as _resource_mii,
)


@dataclass(frozen=True)
class ModuloEdge:
    """A dependence with iteration distance (omega)."""

    src: object
    dst: object
    latency: int
    distance: int


@dataclass
class ModuloSchedule:
    """Result of modulo scheduling one loop body."""

    loop_header: str
    ii: int
    start_times: dict  # instruction -> absolute start cycle
    stages: int
    mii_resource: int
    mii_recurrence: int
    solver_stats: object = None

    def kernel(self):
        """Kernel rows: list (length II) of [(instr, stage), ...]."""
        rows = [[] for _ in range(self.ii)]
        for instr, start in self.start_times.items():
            rows[start % self.ii].append((instr, start // self.ii))
        for row in rows:
            row.sort(key=lambda pair: (pair[1], pair[0].uid))
        return rows

    def prologue(self):
        """Fill instructions: iterations 0..stages-2, stages not yet live."""
        out = []
        for fill in range(self.stages - 1):
            for instr, start in sorted(
                self.start_times.items(), key=lambda kv: kv[1]
            ):
                if start // self.ii <= fill:
                    out.append((instr.copy(), fill))
        return out

    def epilogue(self):
        """Drain instructions: the last stages-1 iterations finishing up."""
        out = []
        for drain in range(1, self.stages):
            for instr, start in sorted(
                self.start_times.items(), key=lambda kv: kv[1]
            ):
                if start // self.ii >= drain:
                    out.append((instr.copy(), drain))
        return out


class ModuloScheduler:
    """Optimal modulo scheduling via the ILP substrate."""

    def __init__(self, machine=ITANIUM2, backend="highs", time_limit=30.0,
                 max_ii=64):
        self.machine = machine
        self.backend = backend
        self.time_limit = time_limit
        self.max_ii = max_ii

    # -- public ---------------------------------------------------------------
    def schedule_loop(self, fn, cfg, ddg, loop):
        """Modulo-schedule a single-block loop; returns ModuloSchedule."""
        body = self._body_instructions(fn, loop)
        edges = build_modulo_edges(fn, loop, body, ddg)
        res_mii = self.resource_mii(body)
        rec_mii = recurrence_mii(body, edges)
        ii = max(res_mii, rec_mii, 1)
        while ii <= self.max_ii:
            schedule = self._try_ii(body, edges, ii)
            if schedule is not None:
                start_times, stats = schedule
                stages = 1 + max(
                    (t // ii for t in start_times.values()), default=0
                )
                return ModuloSchedule(
                    loop_header=loop.header,
                    ii=ii,
                    start_times=start_times,
                    stages=stages,
                    mii_resource=res_mii,
                    mii_recurrence=rec_mii,
                    solver_stats=stats,
                )
            ii += 1
        raise SchedulingError(
            f"no feasible II up to {self.max_ii} for loop {loop.header}"
        )

    # -- pieces ---------------------------------------------------------------
    @staticmethod
    def _body_instructions(fn, loop):
        if len(loop.blocks) != 1:
            raise SchedulingError(
                "modulo scheduling handles single-block loops only"
            )
        block = fn.block(loop.header)
        body = [
            i
            for i in block.instructions
            if not i.is_branch and not i.is_nop
        ]
        if any(i.is_call for i in block.instructions):
            raise SchedulingError("loops with calls are not pipelined")
        if not body:
            raise SchedulingError("empty loop body")
        return body

    def resource_mii(self, body):
        """ResMII: ceil(usage / capacity) over all unit classes.

        The computation lives in :mod:`repro.sched.modulo.bounds` (the
        canonical MII code shared with the modulo ILP ladder); this
        method survives as the machine-bound convenience form.
        """
        return _resource_mii(body, self.machine)

    def _try_ii(self, body, edges, ii):
        """Build and solve the time-indexed model for one candidate II."""
        horizon = ii + _critical_path(body, edges) + 1
        model = Model(f"swp_ii{ii}")
        x = {}
        for instr in body:
            for t in range(horizon):
                x[(instr, t)] = model.add_binary(f"x_{instr.uid}_{t}")
            model.add_constraint(
                lin_sum(x[(instr, t)] for t in range(horizon)) == 1,
                name=f"assign_{instr.uid}",
            )

        start = {
            instr: lin_sum(
                t * x[(instr, t)] for t in range(1, horizon)
            )
            for instr in body
        }
        for index, edge in enumerate(edges):
            if edge.src not in start or edge.dst not in start:
                continue
            bound = edge.latency - edge.distance * ii
            model.add_constraint(
                start[edge.dst] - start[edge.src] >= bound,
                name=f"dep_{index}",
            )

        ports = self.machine.ports
        for slot in range(ii):
            members = [
                (instr, x[(instr, t)])
                for instr in body
                for t in range(slot, horizon, ii)
            ]
            total = lin_sum(
                (2.0 if i.unit is UnitKind.L else 1.0) * v for i, v in members
            )
            model.add_constraint(
                total <= ports.issue_width, name=f"width_{slot}"
            )
            self._unit_cap(model, members, (UnitKind.M,), ports.m_ports, slot, "m")
            self._unit_cap(
                model, members, (UnitKind.I, UnitKind.L), ports.i_ports, slot, "i"
            )
            self._unit_cap(model, members, (UnitKind.F,), ports.f_ports, slot, "f")
            self._unit_cap(model, members, (UnitKind.B,), ports.b_ports, slot, "b")
            self._unit_cap(
                model,
                members,
                (UnitKind.A, UnitKind.M, UnitKind.I),
                ports.m_ports + ports.i_ports,
                slot,
                "mi",
            )

        # Prefer flat schedules (fewer stages -> less prologue/epilogue).
        model.set_objective(lin_sum(start.values()))
        solution = solve_model(
            model, backend=self.backend, time_limit=self.time_limit
        )
        if not solution:
            return None
        times = {
            instr: int(
                round(
                    sum(
                        t * solution.value_of(x[(instr, t)])
                        for t in range(horizon)
                    )
                )
            )
            for instr in body
        }
        return times, solution.stats

    @staticmethod
    def _unit_cap(model, members, kinds, cap, slot, tag):
        terms = [v for i, v in members if i.unit in kinds]
        if len(terms) > cap:
            model.add_constraint(
                lin_sum(terms) <= cap, name=f"cap{tag}_{slot}"
            )


def build_modulo_edges(fn, loop, body, ddg):
    """Dependences with iteration distances for a single-block loop body.

    Distance-0 edges come straight from the DDG (in-block, forward);
    distance-1 edges are reconstructed from the loop-carried
    relationships the acyclic DDG intentionally drops: a register read
    whose in-block definition comes *later* is fed by the previous
    iteration; symmetrically, that read constrains the definition as a
    carried anti dependence; carried memory and output pairs get
    conservative distance-1 ordering.
    """
    members = set(body)
    edges = []
    for edge in ddg.edges:
        if edge.src in members and edge.dst in members:
            edges.append(
                ModuloEdge(edge.src, edge.dst, edge.latency, 0)
            )

    position = {instr: i for i, instr in enumerate(body)}
    for reader in body:
        for reg in reader.regs_read():
            writers = [
                w
                for w in body
                if reg in w.regs_written() and w is not reader
            ]
            for writer in writers:
                if position[writer] >= position[reader]:
                    # Value flows across the back edge.
                    edges.append(
                        ModuloEdge(writer, reader, writer.latency, 1)
                    )
            if reg in reader.regs_written():
                # Self-recurrence (post-increment style).
                edges.append(ModuloEdge(reader, reader, reader.latency, 1))

    # Carried anti: a later write must not overtake this iteration's read.
    for writer in body:
        for reg in writer.regs_written():
            for reader in body:
                if reader is writer:
                    continue
                if reg in reader.regs_read() and position[reader] > position[writer]:
                    edges.append(ModuloEdge(reader, writer, 0, 1))

    # Carried memory ordering (conservative: any store pairs).
    memory = [i for i in body if (i.is_load or i.is_store) and i.mem is not None]
    from repro.ir.alias import must_order

    for i, op_a in enumerate(memory):
        for op_b in memory:
            if op_a is op_b or not (op_a.is_store or op_b.is_store):
                continue
            if position[op_a] > position[op_b] and must_order(op_a.mem, op_b.mem):
                edges.append(ModuloEdge(op_a, op_b, 0, 1))
    return edges


# recurrence_mii / _critical_path / _has_positive_cycle now live in
# repro.sched.modulo.bounds (imported above): the MII theory is shared
# verbatim between this time-indexed formulation and the modulo ILP.
