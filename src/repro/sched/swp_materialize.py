"""Materializing modulo schedules: prologue / unrolled kernel / epilogue.

:mod:`repro.sched.swp` finds the optimal kernel (II, start times); this
module turns it into executable code for *counted* loops — the classic
software-pipelining code generation with **modulo variable expansion**
(no rotating register file needed):

* the kernel is unrolled ``u = stages`` times; the instance of
  instruction n for logical iteration ℓ writes the renamed register
  ``R[n, (ℓ + stage(n)) % u]``, so simultaneously-live instances of one
  value never collide;
* a consumer reading its operand at iteration distance d takes the copy
  of logical iteration ``ℓ − d``; distance-1 reads of iteration −1 (the
  prologue boundary) fall back to the original register, i.e. the value
  the preheader left behind;
* the prologue fills the first ``stages − 1`` iterations stage by stage,
  the epilogue drains the last ones and finally copies every
  loop-escaping value back to its architectural register.

Scope (each unmet condition returns ``None`` rather than bad code):
single-block counted loops — trip counter starting at 0, unit step,
literal bound, counter used for control only (and not live-out).  The
loop tests its counter at the bottom, so trip bounds of 0 and 1 still
execute the body once (do-while semantics); when the trip count is too
small for even one steady-state kernel pass, the loop is **fully
unrolled** instead — every instance lands in the prologue block and the
epilogue keeps only the escaping-value copies.  Loops that do not fit
stay on the acyclic path, exactly how production compilers gate their
SWP (and how the paper's routine selection avoided hot SWP loops).

The interpreter-based differential tests exercise this end to end: the
materialized routine must compute the same live-out values and memory
image as the original.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import MemRef
from repro.ir.parser import parse_instruction
from repro.ir.registers import Register, RegisterBank, fresh_register_allocator


@dataclass
class CountedLoop:
    """The recognized counted-loop control pattern."""

    counter: object  # Register
    trips: int
    compare: object  # the exit test (excluded from the pipelined body)
    branch: object  # the backedge branch
    update: object  # adds counter = 1, counter


def recognize_counted_loop(fn, loop):
    """Match ``counter from 0 step 1 until literal`` control; else None."""
    if len(loop.blocks) != 1:
        return None
    block = fn.block(loop.header)
    branch = block.terminator
    if branch is None or branch.pred is None or branch.target != loop.header:
        return None
    compare = next(
        (
            i
            for i in block.instructions
            if i.op.is_compare and branch.pred in i.dests
        ),
        None,
    )
    if compare is None or not compare.imms or not compare.mnemonic.startswith(
        "cmp.lt"
    ):
        return None
    counter_regs = [s for s in compare.srcs if isinstance(s, Register)]
    if len(counter_regs) != 1:
        return None
    counter = counter_regs[0]
    trips = compare.imms[0]
    update = next(
        (
            i
            for i in block.instructions
            if i is not compare
            and counter in i.regs_written()
            and i.mnemonic == "adds"
            and i.imms == [1]
        ),
        None,
    )
    if update is None:
        return None
    # The counter must serve control only — a live-out counter is an
    # implicit read after the loop, and the pipelined rewrite drops the
    # counter updates entirely.
    if counter in fn.live_out:
        return None
    for instr in fn.all_instructions():
        if instr in (compare, update):
            continue
        if counter in instr.regs_read():
            return None
    # Counter initialized to zero before the loop.
    init = [
        i
        for b in fn.blocks
        if b.name not in loop.blocks
        for i in b.instructions
        if counter in i.regs_written()
    ]
    if len(init) != 1 or init[0].mnemonic != "mov" or init[0].imms != [0]:
        return None
    return CountedLoop(counter, trips, compare, branch, update)


class _Renamer:
    """Modulo-variable-expansion register mapping."""

    def __init__(self, fn, body, u):
        self.u = u
        self.map = {}  # (writer instr, original Register) -> [copies]
        used = set(fn.live_in) | set(fn.live_out)
        for instr in fn.all_instructions():
            used.update(instr.regs_read())
            used.update(instr.regs_written())
        allocators = {
            RegisterBank.GR: fresh_register_allocator(used, RegisterBank.GR),
            RegisterBank.PR: fresh_register_allocator(used, RegisterBank.PR),
            RegisterBank.FR: fresh_register_allocator(used, RegisterBank.FR),
        }
        self.ok = True
        for instr, _start in body:
            for dest in instr.regs_written():
                allocator = allocators.get(dest.bank)
                if allocator is None:
                    self.ok = False
                    return
                try:
                    copies = [next(allocator) for _ in range(u)]
                except StopIteration:
                    self.ok = False
                    return
                self.map[(instr, dest)] = copies
        try:
            self.pass_counter = next(allocators[RegisterBank.GR])
        except StopIteration:
            self.ok = False

    def dest(self, instr, original, logical, stage):
        return self.map[(instr, original)][(logical + stage) % self.u]


def materialize_counted_loop(fn, cfg, ddg, loop, msched, counted=None):
    """Rewrite into a pipelined routine; None when the loop is out of scope.

    Emission is *time-expanded*: every instance (n, ℓ) of a body
    instruction executes at absolute time ℓ·II + t_n; instances sorted by
    that time give a sequentially valid order. The window [P, P + q·P)
    (P = u·II) is periodic — identical register classes every pass — and
    becomes the kernel loop; everything before is the prologue, the rest
    the epilogue.
    """
    counted = counted or recognize_counted_loop(fn, loop)
    if counted is None:
        return None
    control = {counted.compare, counted.branch, counted.update}
    body = [
        (instr, start)
        for instr, start in sorted(
            msched.start_times.items(), key=lambda kv: (kv[1], kv[0].uid)
        )
        if instr not in control
    ]
    if not body:
        return None
    ii = msched.ii
    stages = 1 + max(start // ii for _i, start in body)
    if stages < 2:
        return None  # nothing overlaps; the acyclic path handles it
    # The recognized loop tests its counter at the *bottom* (do-while):
    # the body runs once before the first compare, so even trip bounds
    # of 0 or 1 execute exactly one iteration.
    iterations = max(counted.trips, 1)

    stage_of = {instr: start // ii for instr, start in body}
    start_of = dict(body)
    position = {instr: at for at, (instr, _s) in enumerate(body)}
    # Reaching definitions resolve in *original program order* — the
    # schedule's time order is no proxy for it: a register written twice
    # per iteration (accumulator chains) or a carried writer the solver
    # placed time-earlier than its reader would bind reads to the wrong
    # def and silently change semantics.
    block_order = {
        instr: at
        for at, instr in enumerate(fn.block(loop.header).instructions)
    }
    writers_of = {}  # register -> writers, in program order
    for instr, _start in body:
        for dest in instr.regs_written():
            writers_of.setdefault(dest, []).append(instr)
    for defs in writers_of.values():
        defs.sort(key=block_order.get)
    # Last def per register (program order): the value leaving the loop.
    writers = {regname: defs[-1] for regname, defs in writers_of.items()}

    def reaching(src, reader):
        """(writer, distance) of the def feeding ``reader``'s read of
        ``src``: the closest preceding same-iteration def, else the last
        def of the previous iteration.  (None, 0) for loop invariants."""
        defs = writers_of.get(src)
        if not defs:
            return None, 0
        at = block_order[reader]
        prior = [w for w in defs if block_order[w] < at]
        if prior:
            return prior[-1], 0
        return defs[-1], 1

    # Unroll factor: enough stages in flight AND every value's lifetime
    # (d·II + t_reader − t_writer) strictly shorter than u·II, so the
    # renamed copy is never clobbered before its last read.
    u = stages
    for reader, _t in body:
        for src in _register_operands(reader):
            writer, distance = reaching(src, reader)
            if writer is None:
                continue
            lifetime = distance * ii + start_of[reader] - start_of[writer]
            u = max(u, lifetime // ii + 1)

    period = u * ii
    renamer = _Renamer(fn, body, u)
    if not renamer.ok:
        return None
    escaping = _escaping_registers(fn, loop, writers)

    def instances_between(t_lo, t_hi):
        """(time, body position, instr, logical) for t_lo <= time < t_hi."""
        out = []
        for instr, t_start in body:
            first = max(0, -(-(t_lo - t_start) // ii))
            for logical in range(first, iterations):
                time = logical * ii + t_start
                if time >= t_hi:
                    break
                out.append((time, position[instr], instr, logical))
        out.sort()
        return out

    def pass_complete(k):
        """Does kernel pass k consist solely of in-range iterations?"""
        lo = period + k * period
        for instr, t_start in body:
            first_time = lo + ((t_start - lo) % ii)
            first_logical = (first_time - t_start) // ii
            last_logical = first_logical + u - 1
            if first_logical < 0 or last_logical > iterations - 1:
                return False
        return True

    passes = 0
    while pass_complete(passes):
        passes += 1
    # Too few iterations for a steady-state kernel pass (trip count
    # below the depth of the pipeline): fully unroll instead — every
    # instance lands in the prologue block, there is no kernel loop, and
    # the epilogue holds only the escaping-value copies.  Trip counts of
    # 0 and 1 (one do-while execution) take this path.
    unrolled = passes < 1

    def mapped(src, reader, logical):
        if not isinstance(src, Register) or src.is_constant:
            return src
        writer, distance = reaching(src, reader)
        if writer is None:
            return src  # loop-invariant operand
        src_logical = logical - distance
        if src_logical < 0:
            return src  # value from before the loop (preheader)
        return renamer.dest(writer, src, src_logical, stage_of[writer])

    def instance(instr, logical):
        copy = instr.copy(origin=None)
        copy.dests = [
            renamer.dest(instr, d, logical, stage_of[instr])
            if (instr, d) in renamer.map
            else d
            for d in copy.dests
        ]
        copy.srcs = [mapped(s, instr, logical) for s in copy.srcs]
        if copy.mem is not None:
            base = mapped(copy.mem.base, instr, logical)
            if base is not copy.mem.base:
                copy.mem = MemRef(
                    base, copy.mem.offset, copy.mem.alias_class, copy.mem.size
                )
        if copy.pred is not None and not copy.pred.is_constant:
            copy.pred = mapped(copy.pred, instr, logical)
        return copy

    header = loop.header
    header_freq = fn.block(header).freq
    last_time = (iterations - 1) * ii + max(start_of.values()) + 1

    prologue = BasicBlock(
        name=f"{header}__pro", freq=header_freq / iterations
    )
    fill_end = last_time if unrolled else period
    for _t, _p, instr, logical in instances_between(0, fill_end):
        prologue.instructions.append(instance(instr, logical))

    kernel = counter = None
    if not unrolled:
        kernel = BasicBlock(
            name=f"{header}__ker", freq=header_freq * passes * u / iterations
        )
        for _t, _p, instr, logical in instances_between(period, 2 * period):
            # Register classes repeat every u iterations, so pass-0
            # instances stand for every pass.
            kernel.instructions.append(instance(instr, logical))
        counter = renamer.pass_counter
        kernel.instructions.append(
            parse_instruction(f"adds {counter.name} = 1, {counter.name}")
        )
        kernel.instructions.append(
            parse_instruction(f"cmp.lt p62, p63 = {counter.name}, {passes}")
        )
        kernel.instructions.append(
            parse_instruction(f"(p62) br.cond {header}__ker")
        )

    epilogue = BasicBlock(
        name=f"{header}__epi", freq=header_freq / iterations
    )
    if not unrolled:
        for _t, _p, instr, logical in instances_between(
            period + passes * period, last_time
        ):
            epilogue.instructions.append(instance(instr, logical))
    for regname, writer in sorted(escaping.items(), key=lambda kv: kv[0].name):
        final = renamer.dest(writer, regname, iterations - 1, stage_of[writer])
        epilogue.instructions.append(
            parse_instruction(f"mov {regname.name} = {final.name}")
        )

    return _rebuild_function(fn, loop, counted, prologue, kernel, epilogue, counter)


def _register_operands(instr):
    operands = [s for s in instr.srcs if isinstance(s, Register)]
    if instr.mem is not None:
        operands.append(instr.mem.base)
    if instr.pred is not None:
        operands.append(instr.pred)
    return operands


def _escaping_registers(fn, loop, writers):
    """Loop-defined registers read outside the loop (or routine-live-out)."""
    escaping = {}
    for regname, writer in writers.items():
        if regname in fn.live_out:
            escaping[regname] = writer
            continue
        for block in fn.blocks:
            if block.name in loop.blocks:
                continue
            for instr in block.instructions:
                if regname in instr.regs_read():
                    escaping[regname] = writer
                    break
    return escaping


def _rebuild_function(fn, loop, counted, prologue, kernel, epilogue, counter):
    """New Function with the loop block replaced by pro/[ker]/epi.

    ``kernel`` is ``None`` on the full-unroll path (trip count below the
    pipeline depth): the prologue then holds every instance, there is no
    pass counter, and the old trip-counter init is simply dropped — the
    counter served control only, and control is gone.
    """
    header = loop.header
    out = Function(
        name=fn.name + "_swp",
        live_in=set(fn.live_in),
        live_out=set(fn.live_out),
    )
    name_map = {header: prologue.name}
    for block in fn.blocks:
        if block.name == header:
            out.add_block(prologue)
            if kernel is not None:
                out.add_block(kernel)
            out.add_block(epilogue)
            continue
        clone = BasicBlock(name=block.name, freq=block.freq)
        for instr in block.instructions:
            if counted and instr.mnemonic == "mov" and counted.counter in instr.regs_written():
                if counter is not None:
                    # Replace the old trip-counter init with the pass
                    # counter's; without a kernel it is dropped outright.
                    clone.instructions.append(
                        parse_instruction(f"mov {counter.name} = 0")
                    )
                continue
            copy = instr.copy(origin=None)
            if copy.is_branch and copy.target == header:
                copy.target = prologue.name
            clone.instructions.append(copy)
        out.add_block(clone)

    # Kernel needs at least one pass: the cmp/br loop above runs passes
    # times because the counter starts at 0.
    for edge in fn.edges:
        src = name_map.get(edge.src, edge.src)
        dst = name_map.get(edge.dst, edge.dst)
        if edge.src == header and edge.dst == header:
            continue  # replaced by the kernel's own backedge
        if edge.src == header:
            out.add_edge(epilogue.name, dst, edge.prob)
            continue
        out.add_edge(src, dst, edge.prob)
    if kernel is not None:
        out.add_edge(prologue.name, kernel.name)
        out.add_edge(kernel.name, kernel.name, None)
        out.add_edge(kernel.name, epilogue.name, None)
    else:
        out.add_edge(prologue.name, epilogue.name)
    out.validate()
    return out
