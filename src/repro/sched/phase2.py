"""Second optimization phase — paper Sec. 5.5.

"Nothing detains the ILP solver from using more speculation and more
compensation copies than necessary, as long as the resulting schedule is
valid and optimal. Hence we use an objective function during the second
phase that minimizes the number of scheduled instructions" while "the
length of each block is fixed to its solution value of the first phase".

The paper sketches two further phase-2 objectives it does not evaluate;
both are implemented here and selectable through
``ScheduleFeatures.phase2_objective``:

* ``"instructions"`` (paper default) — minimize Σ x: drop unnecessary
  speculation and compensation copies;
* ``"register_pressure"`` — schedule definitions as late as their block
  length allows (minimizing Σ (L_A − t)·x over value-producing
  instructions shrinks live ranges at equal schedule length);
* ``"stalls"`` — maximize the issue distance between loads and their
  consumers (utilizing slack to hide cache misses, exactly the paper's
  "expand the distances between loads and their nearest use").

Every variant adds a small Σx tie-breaker so degenerate optima still
prefer fewer instructions.
"""

from __future__ import annotations

from repro.ilp import lin_sum, solve_model
from repro.ir.ddg import DepKind
from repro.obs import core as obs

OBJECTIVES = ("instructions", "register_pressure", "stalls")


def minimize_instruction_count(
    build_ilp,
    phase1_lengths,
    backend="highs",
    time_limit=None,
    objective="instructions",
    ilp=None,
    incumbent=None,
    heuristic_effort=0.5,
    deadline=None,
    solve_extra=None,
):
    """Run phase 2; returns ``(ilp, solution)`` or ``None`` on failure.

    ``phase1_lengths`` maps block name -> optimal length from phase 1.

    Passing an already-generated ``ilp`` reuses its model — the length
    pins are appended and the objective swapped in place, skipping the
    full rebuild (``build_ilp`` is then never called). The phase-1 optimum
    is a feasible point of the pinned model, so callers pass it as
    ``incumbent`` to hand the solver an immediate upper bound.

    ``deadline`` is the routine's shared wall-clock budget
    (:class:`repro.tools.deadline.Deadline`): phase 2 only gets whatever
    phase 1 and the bundling-cut loop left over. A ``None`` return —
    whether from an exhausted budget, an injected ``solve.phase2`` fault,
    or a genuinely failed solve — tells the scheduler to keep the
    (already bundled) phase-1 schedule, degrading quality to ``phase1``
    instead of failing the routine.
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"unknown phase-2 objective {objective!r}")
    reused = ilp is not None
    prep = (
        obs.span("phase2.prepare", objective=objective, reused_model=reused)
        if obs.ENABLED
        else obs.NOOP_SPAN
    )
    with prep:
        if ilp is None:
            ilp = build_ilp()
            model = ilp.generate()
        else:
            model = ilp.model
        for block, length in phase1_lengths.items():
            model.add_constraint(
                ilp.blen[(block, length)].to_expr() == 1, name=f"fixlen_{block}"
            )
        model.set_objective(_objective_expr(ilp, objective))
        prep.set_attr("pinned_blocks", len(phase1_lengths))
    if obs.ENABLED:
        obs.counter("phase2_solves_total", 1, reused_model=str(reused).lower())
    extra = dict(solve_extra) if solve_extra else {}
    if backend == "highs" and "heuristic_effort" not in extra:
        extra["heuristic_effort"] = heuristic_effort
    if backend == "portfolio":
        # The ordered lanes re-encode from the formulation owning this
        # (pinned, re-objectived) model — never a stale phase-1 one.
        extra["scheduling_ilp"] = ilp
    solution = solve_model(
        model,
        backend=backend,
        time_limit=time_limit,
        incumbent=incumbent,
        deadline=deadline,
        fault_site="solve.phase2",
        **extra,
    )
    if obs.ENABLED:
        obs.event(
            "phase2.outcome",
            objective=objective,
            reused_model=reused,
            status=solution.status.name,
            gap=solution.stats.gap,
        )
    if not solution:
        return None
    return ilp, solution


def _objective_expr(ilp, objective):
    count = lin_sum(var for var in ilp.x.values())
    if objective == "instructions":
        return count
    if objective == "register_pressure":
        return _register_pressure_expr(ilp) + count
    return _stall_expr(ilp) + count


def _register_pressure_expr(ilp):
    """Late-definition proxy for live-range length.

    For each value-producing placement, charge the cycles between its
    issue and the end of its block: Σ (L_A − t) · x[n,A,t]. With lengths
    fixed, minimizing it pushes definitions down, shrinking live ranges.
    The weight 8 keeps it dominant over the Σx tie-breaker.
    """
    terms = []
    for (instr, block, t), var in ilp.x.items():
        if not instr.regs_written() or instr.is_branch:
            continue
        slack = ilp.lengths[block] - t
        if slack > 0:
            terms.append(8.0 * slack * var)
    return lin_sum(terms) if terms else lin_sum([])


def _stall_expr(ilp):
    """Negative load→use distance: minimizing it spreads loads from uses.

    For every true dependence whose producer is a load, reward each cycle
    of distance inside a shared block: Σ (t_load − t_use) contributions,
    encoded per placement variable (weight 8 over the tie-breaker).
    """
    terms = []
    for edge in ilp.dep_edges():
        if not edge.src.is_load or edge.kind is not DepKind.TRUE:
            continue
        if edge.src not in ilp.info or edge.dst not in ilp.info:
            continue
        shared = ilp.info[edge.src].theta & ilp.info[edge.dst].theta
        for block in shared:
            for t in range(1, ilp.lengths[block] + 1):
                load_key = (edge.src, block, t)
                use_key = (edge.dst, block, t)
                if load_key in ilp.x:
                    terms.append(8.0 * t * ilp.x[load_key])
                if use_key in ilp.x:
                    terms.append(-8.0 * t * ilp.x[use_key])
    return lin_sum(terms) if terms else lin_sum([])
