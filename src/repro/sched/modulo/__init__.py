"""Full software pipelining: the modulo-scheduling subsystem.

The paper closes by naming software pipelining as the open extension of
its ILP model; this package is the production version of that extension
(DESIGN.md §15, ``docs/pipelining.md``):

``repro.sched.modulo.bounds``
    Principled lower bounds on the initiation interval — ResMII from
    per-unit-kind resource counts against the Itanium 2 dispersal
    windows, RecMII as the max cycle ratio over distance-annotated DDG
    cycles (binary search + Bellman–Ford).
``repro.sched.modulo.formulation``
    The genuinely *modulo* ILP: decision variables per (instruction,
    row = cycle mod II, stage), modulo reservation-table constraints,
    and a stage-count/register-pressure bound — emitted as a standard
    :class:`repro.ilp.Model`, so every backend (including the
    portfolio race) solves it.
``repro.sched.modulo.ladder``
    The deadline-aware II search: MII upward with per-rung budget
    splits, §8-style degradation to the time-indexed ``swp``
    formulation and finally the unpipelined loop, ``kind="loop"``
    serve-store caching, and the ``swp.materialize`` chaos site.
``repro.sched.modulo.oracle``
    The kernel-vs-unrolled execution oracle: the materialized
    prologue/kernel/epilogue must reproduce the source loop's memory
    image and live-outs on the concrete interpreter before the ladder
    reports it pipelined.
"""

from repro.sched.modulo.bounds import (
    critical_path,
    recurrence_mii,
    resource_mii,
)
from repro.sched.modulo.formulation import ModuloIlp
from repro.sched.modulo.oracle import OracleReport, kernel_vs_unrolled

# The ladder imports repro.sched.swp (its fallback rung), and swp in turn
# imports repro.sched.modulo.bounds (the canonical MII code) — which runs
# this __init__.  Loading the ladder lazily keeps that cycle open no
# matter which module is imported first.
_LADDER_EXPORTS = ("LoopPipelineOutcome", "pipeline_loop")


def __getattr__(name):
    if name in _LADDER_EXPORTS:
        from repro.sched.modulo import ladder

        return getattr(ladder, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "critical_path",
    "recurrence_mii",
    "resource_mii",
    "ModuloIlp",
    "LoopPipelineOutcome",
    "pipeline_loop",
    "OracleReport",
    "kernel_vs_unrolled",
]
