"""The deadline-aware II search ladder.

Modulo scheduling's outer loop: starting at ``MII = max(ResMII,
RecMII)``, try successive initiation intervals until a kernel exists,
then materialize it and *prove it by execution*.  Every ladder has a
floor — this module never raises for a loop it cannot pipeline; it
reports a structured :class:`LoopPipelineOutcome` instead, mirroring
the §8 contract of the surrounding scheduler (``optimize`` stays
no-raise with SWP enabled).

The rungs, in degradation order:

1. **Modulo ILP** (:mod:`repro.sched.modulo.formulation`): for each
   candidate II from MII upward the remaining ladder budget is split
   evenly over the remaining rungs, so an early II that is *almost*
   feasible cannot starve the rest of the climb; any backend solves the
   model, including the portfolio race.
2. **Time-indexed fallback** (:mod:`repro.sched.swp`): the previous
   formulation, kept as its own rung — a different relaxation
   occasionally finds a kernel the (row, stage)-bounded model rejects
   (e.g. when the stage budget binds).
3. **Unpipelined**: the loop stays as the acyclic scheduler left it.

Materialization sits behind the ``swp.materialize`` fault site: any
injected kind fails that rung's code generation, which must demote the
outcome down this ladder — chaos runs assert the degradation.  Every
materialized routine must pass the kernel-vs-unrolled oracle
(:mod:`repro.sched.modulo.oracle`) before it is reported; an oracle
failure discards the routine and falls to the next rung.

Kernel schedules are cached in the serve store under a ``kind="loop"``
fingerprint (:func:`repro.serve.fingerprint.loop_fingerprint`): a hit
skips the ILP entirely — materialization and the oracle still run, so
a stale or corrupt entry degrades to a live solve, never to bad code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.ilp import solve_model
from repro.machine.itanium2 import ITANIUM2
from repro.obs import core as obs
from repro.sched.modulo.bounds import recurrence_mii, resource_mii
from repro.sched.modulo.formulation import ModuloIlp
from repro.sched.modulo.oracle import kernel_vs_unrolled
from repro.sched.swp import (
    ModuloSchedule,
    ModuloScheduler,
    build_modulo_edges,
)
from repro.sched.swp_materialize import (
    materialize_counted_loop,
    recognize_counted_loop,
)
from repro.tools import faults
from repro.tools.deadline import Deadline

#: Minimum per-rung solver budget: below this a solve cannot even build
#: the matrix, so the split floors here instead of shaving to nothing.
_RUNG_FLOOR = 0.05


@dataclass
class LoopPipelineOutcome:
    """One loop's trip through the ladder (never an exception)."""

    loop_header: str
    status: str  # "pipelined" | "fallback_swp" | "unpipelined"
    method: str = "none"  # "modulo_ilp" | "time_indexed" | "none"
    ii: int | None = None
    stages: int = 0
    mii_resource: int = 0
    mii_recurrence: int = 0
    oracle: object = None  # OracleReport when a kernel was executed
    cache: str = "off"  # "hit" | "miss" | "off"
    fallback_reason: str | None = None
    pipelined_fn: object = None  # materialized Function (None = unpipelined)
    solve_seconds: float = 0.0
    detail: dict = field(default_factory=dict)

    @property
    def mii(self):
        return max(self.mii_resource, self.mii_recurrence, 1)

    @property
    def pipelined(self):
        return self.pipelined_fn is not None

    def summary(self):
        """One report line, greppable by the smoke jobs."""
        if self.pipelined:
            oracle = "passed" if self.oracle and self.oracle.ok else "FAILED"
            tag = "" if self.status == "pipelined" else f" [{self.status}]"
            return (
                f"swp {self.loop_header}: pipelined II={self.ii} "
                f"(ResMII {self.mii_resource}, RecMII {self.mii_recurrence}), "
                f"stages {self.stages}, oracle {oracle}{tag}"
            )
        return (
            f"swp {self.loop_header}: unpipelined "
            f"({self.fallback_reason or 'out of scope'})"
        )


def pipeline_loop(
    fn,
    cfg,
    ddg,
    loop,
    machine=ITANIUM2,
    backend="highs",
    deadline=None,
    max_ii=32,
    max_stages=4,
    time_limit=10.0,
    solve_extra=None,
    features=None,
    store=None,
    oracle_seeds=(0, 1, 2),
    trace=None,
):
    """Run the full ladder for one loop; returns a LoopPipelineOutcome.

    ``deadline`` is the routine's shared wall clock (the ladder only
    ever spends its *remaining* budget); ``time_limit`` additionally
    caps what this one loop may consume.  ``features`` + ``store``
    enable the ``kind="loop"`` cache; both optional.  ``solve_extra``
    passes backend kwargs through (the portfolio roster/seed/threads) —
    a stale ``scheduling_ilp`` entry is dropped, the modulo model is
    not a scheduling formulation.
    """
    deadline = deadline if deadline is not None else Deadline(None)
    extra = dict(solve_extra or {})
    extra.pop("scheduling_ilp", None)
    outcome = LoopPipelineOutcome(loop_header=loop.header,
                                  status="unpipelined")
    started = deadline.elapsed()

    counted = recognize_counted_loop(fn, loop)
    if counted is None:
        return _finish(outcome, "not_counted", deadline, started)
    try:
        body = ModuloScheduler._body_instructions(fn, loop)
    except SchedulingError as exc:
        outcome.detail["scope"] = str(exc)
        return _finish(outcome, "scope", deadline, started)

    edges = build_modulo_edges(fn, loop, body, ddg)
    outcome.mii_resource = resource_mii(body, machine)
    outcome.mii_recurrence = recurrence_mii(body, edges)
    mii = outcome.mii
    outcome.detail["body_instructions"] = len(body)
    outcome.detail["edges"] = len(edges)

    # -- rung 0: the kind="loop" cache ---------------------------------------
    cache_key = None
    cached_starts = None
    if store is not None and features is not None:
        cache_key, cached_starts = _cache_probe(
            store, fn, loop, features, machine, body, outcome
        )

    if cached_starts is not None:
        msched = _as_schedule(loop, body, cached_starts, outcome)
        produced = _materialize_and_check(
            fn, cfg, ddg, loop, msched, counted, oracle_seeds, outcome, trace
        )
        if produced is not None:
            outcome.status = "pipelined"
            outcome.method = "modulo_ilp"
            return _finish(outcome, None, deadline, started, msched=msched,
                           produced=produced)
        # A cached kernel that fails to materialize or execute is stale:
        # drop to a live solve (and republish on success).
        outcome.detail["cache_discarded"] = True
        outcome.oracle = None
        outcome.ii = None

    # -- rung 1: the modulo ILP ladder ---------------------------------------
    ladder_clock = Deadline(time_limit)
    with _span(trace, "swp.ladder", loop=loop.header, mii=mii):
        starts, stats = _ii_ladder(
            body, edges, mii, max_ii, max_stages, machine, backend,
            deadline, ladder_clock, extra, outcome, trace,
        )
    if starts is not None:
        msched = _as_schedule(loop, body, starts, outcome, stats)
        produced = _materialize_and_check(
            fn, cfg, ddg, loop, msched, counted, oracle_seeds, outcome, trace
        )
        if produced is not None:
            outcome.status = "pipelined"
            outcome.method = "modulo_ilp"
            if cache_key is not None:
                _cache_publish(store, cache_key, fn, loop, body, msched)
            return _finish(outcome, None, deadline, started, msched=msched,
                           produced=produced)

    # -- rung 2: the time-indexed fallback -----------------------------------
    remaining = deadline.remaining()
    if remaining is None or remaining > _RUNG_FLOOR:
        budget = time_limit
        if remaining is not None:
            budget = min(budget or remaining, remaining)
        fallback = ModuloScheduler(
            machine=machine, backend=backend if backend != "portfolio"
            else "highs", time_limit=budget, max_ii=max_ii,
        )
        try:
            with _span(trace, "swp.fallback", loop=loop.header):
                msched = fallback.schedule_loop(fn, cfg, ddg, loop)
        except SchedulingError as exc:
            outcome.detail["fallback_error"] = str(exc)
        else:
            produced = _materialize_and_check(
                fn, cfg, ddg, loop, msched, counted, oracle_seeds, outcome,
                trace,
            )
            if produced is not None:
                outcome.status = "fallback_swp"
                outcome.method = "time_indexed"
                return _finish(outcome, None, deadline, started,
                               msched=msched, produced=produced)
    else:
        outcome.detail.setdefault("fallback_error", "no budget left")

    # -- the floor: unpipelined ----------------------------------------------
    reason = outcome.fallback_reason or "no_feasible_ii"
    return _finish(outcome, reason, deadline, started)


# -- ladder internals ---------------------------------------------------------
def _ii_ladder(body, edges, mii, max_ii, max_stages, machine, backend,
               deadline, ladder_clock, extra, outcome, trace):
    """Climb II from MII; returns (start_times, stats) or (None, None)."""
    rungs = [ii for ii in range(mii, max(max_ii, mii) + 1)]
    attempts = []
    outcome.detail["rungs"] = attempts
    for at, ii in enumerate(rungs):
        budget = _rung_budget(deadline, ladder_clock, len(rungs) - at)
        if budget is not None and budget <= 0:
            outcome.fallback_reason = "deadline"
            attempts.append({"ii": ii, "status": "skipped", "reason":
                             "deadline"})
            return None, None
        milp = ModuloIlp(body, edges, ii, machine=machine,
                         max_stages=max_stages)
        with _span(trace, "swp.solve_ii", ii=ii) as span:
            solution = solve_model(
                milp.model,
                backend=backend,
                deadline=deadline,
                time_limit=budget,
                **extra,
            )
            if span is not None:
                span.set_attr("status", solution.status.name)
        attempt = {
            "ii": ii,
            "status": solution.status.name,
            "seconds": round(solution.stats.time_seconds, 4),
            **milp.size,
        }
        attempts.append(attempt)
        if solution:
            starts = milp.start_times(solution)
            if starts is not None:
                outcome.ii = ii
                return starts, solution.stats
            attempt["status"] = "CORRUPT"
    outcome.fallback_reason = (
        "deadline" if deadline.expired or ladder_clock.expired
        else "no_feasible_ii"
    )
    return None, None


def _rung_budget(deadline, ladder_clock, rungs_left):
    """Even split of the tighter remaining budget over the rungs left."""
    remaining = [
        r for r in (deadline.remaining(), ladder_clock.remaining())
        if r is not None
    ]
    if not remaining:
        return None
    tightest = min(remaining)
    if tightest <= 0:
        return 0.0
    return max(tightest / max(rungs_left, 1), _RUNG_FLOOR)


def _as_schedule(loop, body, starts, outcome, stats=None):
    ii = outcome.ii
    stages = 1 + max((t // ii for t in starts.values()), default=0)
    outcome.stages = stages
    return ModuloSchedule(
        loop_header=loop.header,
        ii=ii,
        start_times=starts,
        stages=stages,
        mii_resource=outcome.mii_resource,
        mii_recurrence=outcome.mii_recurrence,
        solver_stats=stats,
    )


def _materialize_and_check(fn, cfg, ddg, loop, msched, counted, oracle_seeds,
                           outcome, trace):
    """Materialize + oracle one kernel; None (and a reason) on failure."""
    outcome.ii = msched.ii
    outcome.stages = msched.stages
    injected = faults.fire("swp.materialize")
    if injected is not None:
        outcome.fallback_reason = "materialize"
        outcome.detail["materialize_fault"] = injected
        return None
    with _span(trace, "swp.materialize", loop=loop.header, ii=msched.ii):
        try:
            produced = materialize_counted_loop(
                fn, cfg, ddg, loop, msched, counted=counted
            )
        except Exception as exc:  # codegen must never escape the ladder
            outcome.fallback_reason = "materialize"
            outcome.detail["materialize_error"] = (
                f"{type(exc).__name__}: {exc}"
            )
            return None
    if produced is None:
        outcome.fallback_reason = (
            "no_overlap" if msched.stages < 2 else "materialize"
        )
        return None
    with _span(trace, "swp.oracle", loop=loop.header):
        report = kernel_vs_unrolled(fn, produced, seeds=oracle_seeds)
    outcome.oracle = report
    if obs.ENABLED:
        obs.counter("swp_oracle_total", 1,
                    result="pass" if report.ok else "fail")
    if not report.ok:
        outcome.fallback_reason = "oracle"
        outcome.detail["oracle_problems"] = report.problems[:4]
        return None
    return produced


# -- cache --------------------------------------------------------------------
def _cache_probe(store, fn, loop, features, machine, body, outcome):
    """Look up a cached kernel; returns (key, starts or None)."""
    from repro.serve.fingerprint import CODE_VERSION, loop_fingerprint

    try:
        key = loop_fingerprint(fn, loop.header, features, machine)
    except Exception:
        return None, None
    header = store.load_header(key)
    starts = None
    if (
        header
        and header.get("code_version") == CODE_VERSION
        and header.get("kind") == "loop"
    ):
        raw = header.get("starts")
        ii = header.get("ii")
        if (
            isinstance(raw, dict)
            and isinstance(ii, int)
            and ii >= 1
            and len(raw) == len(body)
        ):
            try:
                decoded = {
                    body[int(pos)]: int(start)
                    for pos, start in raw.items()
                }
            except (ValueError, IndexError, TypeError):
                decoded = None
            if decoded is not None and all(t >= 0 for t in decoded.values()):
                starts = decoded
                outcome.ii = ii
    outcome.cache = "hit" if starts is not None else "miss"
    if obs.ENABLED:
        obs.counter(
            "swp_cache_hits_total" if starts is not None
            else "swp_cache_misses_total"
        )
    return key, starts


def _cache_publish(store, key, fn, loop, body, msched):
    """Publish a proven kernel under its kind="loop" fingerprint."""
    from repro.serve.fingerprint import CODE_VERSION

    position = {instr: at for at, instr in enumerate(body)}
    starts = {
        str(position[instr]): int(start)
        for instr, start in msched.start_times.items()
        if instr in position
    }
    meta = {
        "code_version": CODE_VERSION,
        "kind": "loop",
        "routine": fn.name,
        "loop": loop.header,
        "ii": msched.ii,
        "stages": msched.stages,
        "mii_resource": msched.mii_resource,
        "mii_recurrence": msched.mii_recurrence,
        "starts": starts,
    }
    payload = json.dumps({"ii": msched.ii, "starts": starts}).encode("utf-8")
    try:
        store.put(key, "", payload, meta=meta)
    except OSError:
        pass  # a failed cache fill is never a loop failure


# -- bookkeeping --------------------------------------------------------------
def _finish(outcome, reason, deadline, started, msched=None, produced=None):
    if reason is not None and outcome.fallback_reason is None:
        outcome.fallback_reason = reason
    if produced is not None:
        outcome.pipelined_fn = produced
    outcome.solve_seconds = max(deadline.elapsed() - started, 0.0)
    if obs.ENABLED:
        obs.counter("swp_loops_total", 1, status=outcome.status)
        if not outcome.pipelined and outcome.fallback_reason:
            obs.counter("swp_fallbacks_total", 1,
                        reason=outcome.fallback_reason)
        if outcome.pipelined and outcome.ii:
            obs.histogram("swp_ii_over_mii", outcome.ii / outcome.mii)
            if outcome.ii == outcome.mii:
                obs.counter("swp_ii_at_mii_total")
    return outcome


class _NullSpan:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _span(trace, name, **attrs):
    if trace is None:
        return _NullSpan()
    return trace.span(name, **attrs)
