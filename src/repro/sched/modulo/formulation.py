"""The modulo ILP: decision variables per (instruction, row, stage).

:mod:`repro.sched.swp` keeps a *time-indexed* formulation — binaries
``x[n,t]`` over an absolute-time horizon — whose size grows with the
critical path, not the kernel.  This module is the genuinely *modulo*
formulation: each body instruction n picks one kernel **row**
``r = t mod II`` and one **stage** ``s = t div II``, via binaries
``y[n,r,s]`` with ``Σ y = 1``.  The model size is ``|body| · II ·
max_stages`` regardless of how long the unrolled schedule runs, and the
modulo reservation table is stated directly: the instructions sharing a
row occupy the *same* issue group of the kernel no matter their stage,
so one dispersal-window constraint per row covers the steady state
exactly (eq. (6) of the paper, wrapped around the kernel).

Constraints:

* assignment — every instruction takes exactly one (row, stage);
* dependences — with ``t_n = Σ (s·II + r)·y[n,r,s]`` linear in the
  binaries, an edge (m → n, latency, distance) requires
  ``t_n − t_m ≥ latency − distance·II``;
* modulo reservation table — per row, summed over stages: the machine
  issue width (L-unit ops weighted 2) and each per-unit port cap;
* stage count / register pressure — the stage domain itself caps
  ``t < max_stages·II``, and every value-carrying edge additionally
  bounds its lifetime ``t_n + distance·II − t_m ≤ max_stages·II − 1``,
  so modulo variable expansion never needs more than ``max_stages``
  renamed copies per value (the materializer's unroll factor ``u`` is
  ``max(stages, lifetime div II + 1)`` — this row keeps it, and with it
  the kernel's register pressure, bounded).

The objective minimizes ``Σ t_n``: flat schedules first, which keeps
the stage count — and therefore prologue/epilogue size — small.

The model is a standard :class:`repro.ilp.Model`, so it solves through
every existing backend, including the portfolio race.
"""

from __future__ import annotations

from repro.ilp import Model, lin_sum
from repro.machine.itanium2 import ITANIUM2
from repro.machine.units import UnitKind


class ModuloIlp:
    """Builds and decodes the (instruction, row, stage) model for one II."""

    def __init__(self, body, edges, ii, machine=ITANIUM2, max_stages=4):
        self.body = list(body)
        self.edges = list(edges)
        self.ii = int(ii)
        self.machine = machine
        self.max_stages = max(1, int(max_stages))
        self.vars = {}  # (instr, row, stage) -> binary Var
        self.start = {}  # instr -> LinExpr start time
        self.model = self._build()

    # -- model ----------------------------------------------------------------
    def _build(self):
        ii, stages = self.ii, self.max_stages
        model = Model(f"modulo_ii{ii}")
        for instr in self.body:
            cells = []
            for row in range(ii):
                for stage in range(stages):
                    var = model.add_binary(f"y_{instr.uid}_{row}_{stage}")
                    self.vars[(instr, row, stage)] = var
                    cells.append(var)
            model.add_constraint(
                lin_sum(cells) == 1, name=f"assign_{instr.uid}"
            )
            self.start[instr] = lin_sum(
                (stage * ii + row) * self.vars[(instr, row, stage)]
                for row in range(ii)
                for stage in range(stages)
                if stage * ii + row
            )

        members = set(self.body)
        for index, edge in enumerate(self.edges):
            if edge.src not in members or edge.dst not in members:
                continue
            bound = edge.latency - edge.distance * ii
            model.add_constraint(
                self.start[edge.dst] - self.start[edge.src] >= bound,
                name=f"dep_{index}",
            )
            if edge.latency > 0:
                # Lifetime / register-pressure bound: the value written
                # by src and read by dst stays live distance·II +
                # (t_dst − t_src) cycles; cap it so MVE's unroll factor
                # never exceeds the stage budget.
                model.add_constraint(
                    self.start[edge.dst] - self.start[edge.src]
                    <= stages * ii - 1 - edge.distance * ii,
                    name=f"life_{index}",
                )

        ports = self.machine.ports
        for row in range(ii):
            cells = [
                (instr, self.vars[(instr, row, stage)])
                for instr in self.body
                for stage in range(stages)
            ]
            total = lin_sum(
                (2.0 if i.unit is UnitKind.L else 1.0) * v for i, v in cells
            )
            model.add_constraint(
                total <= ports.issue_width, name=f"width_{row}"
            )
            self._unit_cap(model, cells, (UnitKind.M,), ports.m_ports, row, "m")
            self._unit_cap(
                model, cells, (UnitKind.I, UnitKind.L), ports.i_ports, row, "i"
            )
            self._unit_cap(model, cells, (UnitKind.F,), ports.f_ports, row, "f")
            self._unit_cap(model, cells, (UnitKind.B,), ports.b_ports, row, "b")
            self._unit_cap(
                model,
                cells,
                (UnitKind.A, UnitKind.M, UnitKind.I),
                ports.m_ports + ports.i_ports,
                row,
                "mi",
            )

        # Flat schedules first: fewer stages, smaller prologue/epilogue.
        model.set_objective(lin_sum(self.start.values()))
        return model

    @staticmethod
    def _unit_cap(model, cells, kinds, cap, row, tag):
        terms = [v for i, v in cells if i.unit in kinds]
        if len(terms) > cap:
            model.add_constraint(
                lin_sum(terms) <= cap, name=f"cap{tag}_{row}"
            )

    # -- decoding -------------------------------------------------------------
    def start_times(self, solution):
        """``{instr: absolute start cycle}`` from a feasible solution."""
        times = {}
        for instr in self.body:
            picked = None
            for row in range(self.ii):
                for stage in range(self.max_stages):
                    if solution.value_of(self.vars[(instr, row, stage)]) >= 0.5:
                        picked = stage * self.ii + row
                        break
                if picked is not None:
                    break
            if picked is None:
                return None  # corrupt assignment row (e.g. injected fault)
            times[instr] = picked
        return times

    @property
    def size(self):
        return {
            "constraints": self.model.num_constraints,
            "variables": self.model.num_variables,
        }
