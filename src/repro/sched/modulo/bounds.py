"""Lower bounds on the initiation interval (MII).

Modulo scheduling searches for the smallest initiation interval II at
which a loop kernel exists.  Two classic lower bounds prune that search
before any ILP is built, and both are *principled* — each is the exact
optimum of a relaxation of the full problem:

**ResMII** (resource-constrained MII) relaxes every dependence: even
with unlimited reordering freedom, each kernel iteration must issue the
body's instructions through the Itanium 2 dispersal windows.  For every
unit class the bound is ``ceil(uses / ports)``; the machine-wide issue
width (with ``L``-unit ops costing two slots, as in the bundle
templates) and the shared M+I dispersal pool give two more.  ResMII is
the max over all of them — the steady-state throughput wall.

**RecMII** (recurrence-constrained MII) relaxes every resource: a
dependence cycle C with total latency L(C) and total iteration distance
D(C) forces ``II >= ceil(L(C) / D(C))`` — each trip around the cycle
advances D(C) iterations and must take at least L(C) cycles.  RecMII is
the maximum cycle ratio over all cycles of the distance-annotated DDG.
Enumerating cycles is exponential, so the ratio is resolved by binary
search on II: candidate II is infeasible iff the graph with edge
weights ``latency − distance·II`` has a positive-weight cycle, detected
by Bellman–Ford (|V| relaxation passes; a pass that still improves
proves a positive cycle).  The search is monotone — raising II only
lowers weights — so the first feasible II is exactly
``max_C ceil(L(C)/D(C))``.

Any feasible modulo schedule satisfies ``II >= max(ResMII, RecMII)``;
the II ladder (:mod:`repro.sched.modulo.ladder`) starts there and the
bench/tests assert how often the bound is achieved.
"""

from __future__ import annotations

import math

from repro.machine.itanium2 import ITANIUM2
from repro.machine.units import UnitKind


def resource_mii(body, machine=ITANIUM2):
    """ResMII: ceil(usage / capacity) over all unit classes."""
    ports = machine.ports
    counts = {kind: 0 for kind in UnitKind}
    for instr in body:
        counts[instr.unit] += 1
    slots = (
        counts[UnitKind.M]
        + counts[UnitKind.I]
        + counts[UnitKind.F]
        + counts[UnitKind.B]
        + counts[UnitKind.A]
        + 2 * counts[UnitKind.L]
    )
    bounds = [
        math.ceil(slots / ports.issue_width),
        math.ceil(counts[UnitKind.M] / ports.m_ports),
        math.ceil((counts[UnitKind.I] + counts[UnitKind.L]) / ports.i_ports),
        math.ceil(counts[UnitKind.F] / ports.f_ports) if counts[UnitKind.F] else 0,
        math.ceil(counts[UnitKind.B] / ports.b_ports) if counts[UnitKind.B] else 0,
        math.ceil(
            (counts[UnitKind.A] + counts[UnitKind.M] + counts[UnitKind.I])
            / (ports.m_ports + ports.i_ports)
        ),
    ]
    return max([b for b in bounds if b] + [1])


def recurrence_mii(body, edges):
    """RecMII: smallest II with no positive-weight cycle (binary search).

    For a candidate II, edge weight = latency − distance·II; a positive
    cycle means some recurrence needs more than II cycles per iteration.
    Detection via Bellman–Ford on the negated graph.
    """
    low, high = 1, max(
        (sum(e.latency for e in edges if e.src is e.dst) or 1), 1
    )
    high = max(high, critical_path(body, edges), 1)
    while low < high:
        mid = (low + high) // 2
        if has_positive_cycle(body, edges, mid):
            low = mid + 1
        else:
            high = mid
    return low


def has_positive_cycle(body, edges, ii):
    """Bellman–Ford positive-cycle test at candidate II."""
    distance = {instr: 0.0 for instr in body}
    relevant = [
        (e.src, e.dst, e.latency - e.distance * ii) for e in edges
    ]
    for _ in range(len(body)):
        changed = False
        for src, dst, weight in relevant:
            if distance[src] + weight > distance[dst]:
                distance[dst] = distance[src] + weight
                changed = True
        if not changed:
            return False
    # One more pass: still-improving means a positive cycle.
    for src, dst, weight in relevant:
        if distance[src] + weight > distance[dst]:
            return True
    return False


def critical_path(body, edges):
    """Longest distance-0 path (acyclic) in cycles."""
    height = {instr: 1 for instr in body}
    forward = [e for e in edges if e.distance == 0]
    for _ in range(len(body)):
        changed = False
        for edge in forward:
            want = height[edge.src] + max(edge.latency, 0)
            if want > height.get(edge.dst, 0):
                height[edge.dst] = want
                changed = True
        if not changed:
            break
    return max(height.values(), default=1)
