"""The kernel-vs-unrolled execution oracle.

Materializing a modulo schedule rewrites a counted loop into
prologue / unrolled kernel / epilogue with freshly renamed registers —
a transformation far outside what the path-based schedule verifier can
check (it reasons about motion of *existing* instructions, not about a
rewritten CFG).  The oracle closes that gap semantically: it *executes*
both routines on the concrete interpreter over several deterministic
input seeds and demands identical observable behaviour — the memory
image after all N source-loop iterations, every live-out register, and
the returned/fell-off-the-end disposition.

Block traces are deliberately **not** compared: the pipelined routine
runs different blocks by construction (``__pro``/``__ker``/``__epi``),
and the kernel executes ``passes`` backedges where the source loop took
``trips``.  What must survive is the input/output function, which is
exactly what memory + live-outs capture under the interpreter's
uninterpreted-function semantics — any dependence the pipeliner broke
(a stale renamed copy, a mis-staged load, a lost escaping value)
changes a hash chain and shows up as a differing cell or register.

Every pipelined loop must pass this oracle before the ladder reports it
``pipelined``; a failure discards the materialized routine and degrades
to the next rung (ISSUE: the materializer is *gated* by execution, not
trusted).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.interp import Interpreter


@dataclass
class OracleReport:
    """Outcome of one kernel-vs-unrolled comparison."""

    ok: bool
    seeds: tuple
    problems: list = field(default_factory=list)

    def __bool__(self):
        return self.ok


def kernel_vs_unrolled(source_fn, pipelined_fn, seeds=(0, 1, 2),
                       max_blocks=4000):
    """Run both routines over ``seeds``; report the first divergences.

    ``source_fn`` is the original counted loop (N unrolled-by-execution
    iterations), ``pipelined_fn`` the materialized prologue/kernel/
    epilogue version.  Interpreter errors on the pipelined side count as
    failures (a materialization that falls into an unknown block is
    wrong, not unlucky); errors on the source side abort the comparison
    for that seed — the oracle only judges loops the source can run.
    """
    interp = Interpreter(max_blocks=max_blocks)
    problems = []
    for seed in seeds:
        try:
            want = interp.run_function(source_fn, seed=seed)
        except Exception as exc:
            problems.append(
                f"seed {seed}: source routine failed to execute "
                f"({type(exc).__name__}: {exc})"
            )
            continue
        try:
            got = interp.run_function(pipelined_fn, seed=seed)
        except Exception as exc:
            problems.append(
                f"seed {seed}: pipelined routine failed to execute "
                f"({type(exc).__name__}: {exc})"
            )
            continue
        if want.returned != got.returned:
            problems.append(
                f"seed {seed}: returned {want.returned} vs {got.returned}"
            )
            continue
        want_out = want.live_out_state(source_fn)
        got_out = got.live_out_state(pipelined_fn)
        if want_out != got_out:
            diffs = [
                f"{r.name}: {want_out[r]:#x} vs {got_out.get(r, 0):#x}"
                for r in want_out
                if want_out[r] != got_out.get(r, 0)
            ]
            problems.append(
                f"seed {seed}: live-out mismatch ({', '.join(diffs[:4])})"
            )
        if want.memory != got.memory:
            keys = set(want.memory) | set(got.memory)
            diffs = [
                f"[{addr:#x}]: {want.memory.get(addr)} vs "
                f"{got.memory.get(addr)}"
                for addr in sorted(keys)
                if want.memory.get(addr) != got.memory.get(addr)
            ]
            problems.append(
                f"seed {seed}: memory mismatch ({', '.join(diffs[:4])})"
            )
    return OracleReport(ok=not problems, seeds=tuple(seeds),
                        problems=problems)
