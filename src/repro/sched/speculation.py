"""Control and data speculation — paper Sec. 5.1.

For every candidate load the ILP gets *two mutually exclusive instruction
groups*: the normal load, or the speculative version plus its ``chk``
(and, for loads inside UD chains, a ``mov`` that copies the speculated
value from a temporary back to the original register). A binary
``usespec`` variable switches between them:

* the assignment RHS (eq. 3) of the normal load becomes ``1 - usespec``,
  of the ld.s/chk/mov instructions ``usespec``;
* precedence constraints out of the normal load get ``+ usespec`` on
  their right-hand side (switched off when the group is unused), the new
  constraints out of the speculative group get ``+ (1 - usespec)``.

Control speculation (``ld.s``/``chk.s``) erases the *trap* restriction:
the ld.s may be placed speculatively, while the chk.s inherits the
original load's non-speculative placement range. Data speculation
(``ld.a``/``chk.a``) instead erases selected store→load dependences that
are independent under ANSI aliasing rules (paper Sec. 6.1); the chk.a
keeps those store dependences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ddg import DepEdge, DepKind
from repro.ir.registers import RegisterBank, fresh_register_allocator


@dataclass
class SpecGroup:
    """One speculation alternative wired into the model."""

    original: object
    spec_load: object
    check: object
    mov: object | None
    kind: str  # "control" | "data"
    usespec: object = None  # ilp Var, set by attach_speculation
    broken_edges: list = field(default_factory=list)  # data spec: st->ld deps
    exclusive_uses: list = field(default_factory=list)  # rewritten to read temp


def find_speculation_candidates(region, allow_control=True, allow_data=True):
    """Loads that would profit from a speculative alternative.

    Control candidates: normal (trapping) loads whose upward placement
    range is strictly smaller than the speculative range — exactly the
    case where the trap restriction binds. Data candidates: loads with an
    incoming ANSI-distinct store dependence.
    """
    groups = []
    cfg = region.cfg
    for instr in region.instructions:
        if not instr.is_load or instr.op.is_spec_load or instr.op.is_adv_load:
            continue
        if instr in region.predicate_sources:
            continue
        source = region.source_block[instr]
        if allow_control:
            blocked_up = any(
                cfg.reaches(block, source) and block not in region.theta[instr]
                for block in region.theta_spec[instr]
            )
            # A load whose upward motion is blocked by a *dependence* whose
            # source sits on a side path (not dominating the load) also
            # profits: only its ld.s version may be hoisted partial-ready
            # across that join (Fig. 6 — the compensated path re-executes
            # the access, and the hoisted copy must defer faults).
            side_dep = any(
                e.kind is DepKind.TRUE
                and (dep_block := region.source_block.get(e.src)) is not None
                and dep_block != source
                and cfg.reaches(dep_block, source)
                and not cfg.dominates(dep_block, source)
                for e in region.ddg.preds(instr)
            )
            if blocked_up or side_dep:
                groups.append(("control", instr, []))
                continue
        if allow_data:
            broken = [
                e
                for e in region.ddg.preds(instr)
                if e.kind is DepKind.MEM_TRUE and e.data_speculable
            ]
            if broken:
                groups.append(("data", instr, broken))
    return groups


def attach_speculation(ilp, candidates, used_registers, cost_weight=0.0):
    """Wire candidate groups into a :class:`SchedulingIlp` (pre-generate).

    ``cost_weight`` enables the cost model the paper sketches in Sec. 5.1:
    "the use of control speculation should be guided by a cost model which
    estimates the failure probabilities of individual loads ... [which]
    can be integrated into the objective function". When nonzero, every
    selected group pays ``cost_weight · failure_probability ·
    freq(s(load))`` in the objective — the expected recovery/miss penalty.
    The paper ran without it ("this information was not available during
    our experiments"), so 0 is the faithful default.
    """
    region = ilp.region
    allocator = fresh_register_allocator(used_registers, RegisterBank.GR)
    spec_groups = []
    for kind, load, broken in candidates:
        group = _build_group(region, load, kind, broken, allocator)
        if group is None:
            continue
        _wire_group(ilp, group)
        if cost_weight > 0.0:
            _attach_cost(ilp, group, cost_weight)
        spec_groups.append(group)
    return spec_groups


def _attach_cost(ilp, group, cost_weight):
    """Expected speculation penalty, added to the objective at generate()."""
    region = ilp.region
    load = group.original
    freq = region.fn.block(region.source_block[load]).freq
    failure = float(load.annotations.get("miss", 0.01))
    penalty = cost_weight * failure * freq
    ilp.objective_extras.append(penalty * group.usespec)


# -- group construction --------------------------------------------------------


def _build_group(region, load, kind, broken, allocator):
    source = region.source_block[load]
    dest = load.dests[0] if load.dests else None
    if dest is None:
        return None

    exclusive = _dest_is_exclusive(region, load)
    if exclusive:
        temp = dest
        mov = None
    else:
        try:
            temp = next(allocator)
        except StopIteration:
            return None  # register file exhausted: skip this candidate
        mov = load.copy(
            mnemonic="mov",
            dests=[dest],
            srcs=[temp],
            mem=None,
            imms=[],
            annotations={},
            origin=None,  # a new instruction, not a compensation copy
        )

    suffix = ".s" if kind == "control" else ".a"
    spec_load = load.copy(
        mnemonic=_spec_mnemonic(load.mnemonic, suffix),
        dests=[temp],
        pred=None,  # the ld.s itself may run unguarded (Sec. 5.1)
        origin=None,  # a new instruction, not a compensation copy
    )
    check = load.copy(
        mnemonic="chk.s" if kind == "control" else "chk.a",
        dests=[],
        srcs=[temp],
        mem=None,
        imms=[],
        target=f"recover_{load.uid}",
        annotations={},
        origin=None,  # a new instruction, not a compensation copy
    )
    return SpecGroup(load, spec_load, check, mov, kind, broken_edges=list(broken))


def _spec_mnemonic(mnemonic, suffix):
    base = mnemonic.split(".")[0]
    return base + suffix


def _dest_is_exclusive(region, load):
    """No other instruction writes the load's destination register."""
    dest = load.dests[0]
    if dest in region.fn.live_in or dest in region.fn.live_out:
        return False
    for other in region.fn.all_instructions():
        if other is not load and dest in other.regs_written():
            return False
    return True


# -- ILP wiring -------------------------------------------------------------------


def _wire_group(ilp, group):
    region = ilp.region
    load = group.original
    source = region.source_block[load]
    usespec = ilp.model.add_binary(f"usespec_{load.uid}")
    group.usespec = usespec

    spec_theta = _speculative_theta(region, load, source)
    nonspec_theta = set(region.theta[load])
    related = set(region.theta_spec[load])

    ilp.add_instruction(
        group.spec_load, theta=spec_theta, related=related, source=source,
        rhs=usespec,
    )
    ilp.add_instruction(
        group.check, theta=nonspec_theta, related=related, source=source,
        rhs=usespec,
    )
    if group.mov is not None:
        ilp.add_instruction(
            group.mov, theta=nonspec_theta, related=related, source=source,
            rhs=usespec,
        )
    ilp.set_assign_rhs(load, 1 - usespec)

    one_minus = 1 - usespec
    broken = set(group.broken_edges)

    # Incoming dependences: the spec load inherits them, except the
    # store→load edges data speculation exists to break (those move to the
    # chk.a). Switched off when the group is unused.
    for edge in list(region.ddg.preds(load)):
        target = group.check if edge in broken else group.spec_load
        new_edge = DepEdge(edge.src, target, edge.kind, edge.latency, reg=edge.reg)
        ilp.add_edge(new_edge)
        ilp.relax_edge(new_edge, one_minus)
        if edge in broken:
            # The normal load keeps the edge; it binds only when usespec=0.
            ilp.relax_edge(edge, usespec)

    # The check consumes the speculative result (deferred-exception token /
    # ALAT entry): it must wait for the load's full latency.
    check_dep = DepEdge(
        group.spec_load, group.check, DepKind.TRUE, load.latency
    )
    ilp.add_edge(check_dep)
    ilp.relax_edge(check_dep, one_minus)
    if group.mov is not None:
        mov_value = DepEdge(group.spec_load, group.mov, DepKind.TRUE, load.latency)
        mov_order = DepEdge(group.check, group.mov, DepKind.TRUE, 0)
        ilp.add_edge(mov_value)
        ilp.add_edge(mov_order)
        ilp.relax_edge(mov_value, one_minus)
        ilp.relax_edge(mov_order, one_minus)

    # Outgoing dependences: consumers listen to the spec group instead.
    producer_for_value = group.mov if group.mov is not None else group.spec_load
    for edge in list(region.ddg.succs(load)):
        ilp.relax_edge(edge, usespec)
        if edge.kind is DepKind.TRUE:
            exclusive_use = _use_is_exclusive(region, edge.dst, load)
            src = group.spec_load if exclusive_use else producer_for_value
            lat = edge.latency if src is group.spec_load else 1
            new_edge = DepEdge(src, edge.dst, DepKind.TRUE, lat, reg=edge.reg)
            if exclusive_use and group.mov is not None:
                group.exclusive_uses.append(edge.dst)
            ilp.add_edge(new_edge)
            ilp.relax_edge(new_edge, one_minus)
        else:
            # Ordering edges (ld→st anti, memory output): neither ALAT nor
            # deferred exceptions protect a load sinking *below* a
            # conflicting store, so the speculative load keeps them; the
            # check (whose recovery re-executes the access) keeps them too.
            for src in (group.spec_load, group.check):
                new_edge = DepEdge(src, edge.dst, edge.kind, edge.latency)
                ilp.add_edge(new_edge)
                ilp.relax_edge(new_edge, one_minus)


def _speculative_theta(region, load, source):
    """Placement range of the ld.s: full speculative set with the freq cap.

    Loads never move into a foreign loop (paper Sec. 5.2 excludes loads
    from into-loop motion — a re-executed load may observe different
    memory each iteration).
    """
    cfg, fn = region.cfg, region.fn
    blocks = {source}
    limit = region_freq_cap(region) * fn.block(source).freq
    source_loops = set()
    loop = cfg.innermost_loop(source)
    while loop is not None:
        source_loops.add(id(loop))
        loop = loop.parent
    for block in cfg.block_names:
        if not (cfg.reaches(block, source) or cfg.reaches(source, block)):
            continue
        if fn.block(block).freq > limit and block != source:
            continue
        loop = cfg.innermost_loop(block)
        foreign = False
        while loop is not None:
            if id(loop) not in source_loops:
                foreign = True
                break
            loop = loop.parent
        if not foreign:
            blocks.add(block)
    # Control speculation lifts the *trap* restriction only: a load whose
    # address operand is rewritten inside a containing loop (backedge
    # variant) is still confined to that loop — an ld.s above the loop
    # would read one address where the original read a new one per
    # iteration.
    for variant_loop in region.backedge_variant.get(load, []):
        blocks &= set(variant_loop.blocks) | {source}
    # Partition exit stubs (repro.sched.decompose) host no placements.
    return blocks - region.forbidden_blocks


def region_freq_cap(region):
    """The paper's factor k (5 in the experiments)."""
    return getattr(region, "freq_cap", 5.0)


def _use_is_exclusive(region, use, load):
    """Does ``use`` read the load's destination from this load only?"""
    dest = load.dests[0]
    for edge in region.ddg.preds(use):
        if edge.kind is DepKind.TRUE and edge.reg == dest and edge.src is not load:
            return False
    return True


def count_input_speculation(fn):
    """Number of speculative loads in the input (Table 2 "Spec. in")."""
    return sum(
        1
        for i in fn.all_instructions()
        if i.op.is_spec_load or i.op.is_adv_load
    )
