"""Path-based schedule verification (Theorem 1 checker).

The paper notes (Sec. 7) that because the basic model is proven correct,
feasibility of a schedule in the ILP certifies it — and that the same
machinery can validate schedules produced by heuristics. This module is
the operational version of that idea: it checks a concrete
:class:`~repro.sched.schedule.Schedule` against the region's semantics by
enumerating program paths through the acyclic block graph:

1. every program path through an instruction's source block executes a
   copy of it (completeness along paths);
2. non-speculative instructions appear on a path only if their source
   block is on it, unless the copy carries the qualifying predicate of a
   predication-extended destination;
3. for every dependence (m, n) with copies of both on the path, the last
   copy of n follows the last copy of m (cycle distance >= latency within
   a block, slot order for zero-latency same-cycle pairs);
4. every cycle's instruction group is dispersal-feasible and branches sit
   in the last cycle of their source block;
5. no block holds two copies of the same instruction.

Path enumeration is exponential in general; it is capped and the report
says whether coverage was exhaustive (for the routine sizes of the paper
it always is in our experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.itanium2 import ITANIUM2


@dataclass
class VerificationReport:
    ok: bool
    problems: list = field(default_factory=list)
    paths_checked: int = 0
    exhaustive: bool = True

    def __bool__(self):
        return self.ok


def verify_schedule(
    schedule,
    region,
    reconstruction=None,
    machine=ITANIUM2,
    dep_edges=None,
    edge_scopes=None,
    max_paths=4000,
):
    """Run all checks; returns a :class:`VerificationReport`."""
    problems = []
    fn, cfg = region.fn, region.cfg

    if reconstruction is not None:
        active = set(reconstruction.active_instructions)
        source_block = reconstruction.source_block
        guards = reconstruction.guards
    else:
        active = set(region.instructions)
        source_block = region.source_block
        guards = region.guard_for

    copies = _collect_copies(schedule, active)
    problems += _check_resources(schedule, machine)
    problems += _check_branches(schedule, source_block)
    problems += _check_single_copy_per_block(copies)
    problems += _check_speculative_placement(copies, region, source_block, guards)

    if dep_edges is None:
        dep_edges = list(region.ddg.edges)
    edges = [
        e for e in dep_edges if e.src in active and e.dst in active
    ]

    paths, exhaustive = _enumerate_paths(cfg, max_paths)
    for path in paths:
        problems += _check_path(
            path, copies, active, source_block, edges, schedule,
            edge_scopes or {},
        )

    report = VerificationReport(
        ok=not problems,
        problems=problems,
        paths_checked=len(paths),
        exhaustive=exhaustive,
    )
    return report


# -- helpers -----------------------------------------------------------------------


def _collect_copies(schedule, active):
    """original instruction -> list of (block, cycle, placed, slot_index)."""
    copies = {}
    for block in schedule.block_order:
        for cycle in sorted(schedule.cycles_of(block)):
            for slot, placed in enumerate(schedule.group(block, cycle)):
                original = placed.root_origin
                copies.setdefault(original, []).append(
                    (block, cycle, placed, slot)
                )
    return copies


def _check_resources(schedule, machine):
    problems = []
    for block in schedule.block_order:
        for cycle, group in schedule.cycles_of(block).items():
            units = [p.unit for p in group if not p.is_nop]
            if not machine.group_feasible(units):
                problems.append(
                    f"dispersal infeasible group in {block}[{cycle}]: "
                    f"{[u.value for u in units]}"
                )
    return problems


def _check_branches(schedule, source_block):
    problems = []
    for block in schedule.block_order:
        length = schedule.block_length(block)
        for cycle, group in schedule.cycles_of(block).items():
            for placed in group:
                if not placed.is_branch:
                    continue
                original = placed.root_origin
                home = source_block.get(original)
                if home is not None and home != block:
                    problems.append(
                        f"branch {original.uid} moved from {home} to {block}"
                    )
                if cycle != length:
                    problems.append(
                        f"branch {original.uid} at cycle {cycle} of {block}, "
                        f"but block length is {length}"
                    )
    return problems


def _check_single_copy_per_block(copies):
    problems = []
    for original, placements in copies.items():
        blocks = [b for b, _c, _p, _s in placements]
        if len(blocks) != len(set(blocks)):
            problems.append(
                f"instruction {original.uid} placed twice in one block"
            )
    return problems


def _check_speculative_placement(copies, region, source_block, guards):
    """Non-speculative copies must stay inside their Θ or carry a guard."""
    problems = []
    cfg = region.cfg
    for original, placements in copies.items():
        if region.speculative.get(original, True):
            continue
        source = source_block.get(original)
        if source is None:
            continue
        for block, _cycle, placed, _slot in placements:
            if block == source:
                continue
            guarded = guards.get((original, block)) is not None and (
                placed.pred == guards[(original, block)]
            )
            if guarded:
                continue
            up_safe = cfg.reaches(block, source) and cfg.postdominates(
                source, block
            )
            down_safe = cfg.reaches(source, block) and cfg.dominates(source, block)
            if not (up_safe or down_safe):
                problems.append(
                    f"non-speculative instruction {original.uid} placed "
                    f"speculatively in {block} (source {source})"
                )
    return problems


def _last_in_scope(placements, path_index, scope):
    here = [
        (path_index[b], c, s)
        for b, c, _p, s in placements
        if b in path_index and b in scope
    ]
    return max(here) if here else None


def _enumerate_paths(cfg, max_paths):
    paths = []
    exhaustive = True
    entries = cfg.entries or cfg.block_names[:1]
    exit_set = set(cfg.exits)
    stack = [(entry, [entry]) for entry in entries]
    while stack:
        node, path = stack.pop()
        succs = cfg.successors_in_dag(node)
        if not succs or node in exit_set:
            paths.append(path)
            if len(paths) >= max_paths:
                exhaustive = False
                break
            if not succs:
                continue
        for succ in succs:
            stack.append((succ, path + [succ]))
    return paths, exhaustive


def _check_path(path, copies, active, source_block, edges, schedule, edge_scopes):
    problems = []
    path_index = {name: i for i, name in enumerate(path)}
    on_path = set(path)

    positions = {}  # original -> last (block idx, cycle, slot)
    for original, placements in copies.items():
        here = [
            (path_index[b], c, s)
            for b, c, _p, s in placements
            if b in path_index
        ]
        if here:
            positions[original] = max(here)
        if len(here) > 1 and not original.multiply_executable:
            problems.append(
                f"path {'-'.join(path)}: instruction {original.uid} "
                f"({original.mnemonic}) executed {len(here)} times but is "
                "not re-executable"
            )

    for instr in active:
        source = source_block.get(instr)
        if source in on_path and instr not in positions:
            problems.append(
                f"path {'-'.join(path)}: no copy of instruction "
                f"{instr.uid} (source {source})"
            )

    for edge in edges:
        scope = edge_scopes.get(edge)
        if scope is None:
            pos_m = positions.get(edge.src)
            pos_n = positions.get(edge.dst)
        else:
            # Scoped edge (cyclic flipped dependence): only copies inside
            # the scope blocks carry the constraint.
            pos_m = _last_in_scope(copies.get(edge.src, ()), path_index, scope)
            pos_n = _last_in_scope(copies.get(edge.dst, ()), path_index, scope)
        if pos_m is None or pos_n is None:
            continue
        if source_block.get(edge.dst) not in on_path:
            continue  # consumer is speculative here; its value is unused
        bi_m, c_m, s_m = pos_m
        bi_n, c_n, s_n = pos_n
        if bi_m < bi_n:
            continue
        if bi_m > bi_n:
            problems.append(
                f"path {'-'.join(path)}: dependence "
                f"{edge.src.uid}->{edge.dst.uid} violated across blocks"
            )
            continue
        if c_n - c_m < edge.latency:
            problems.append(
                f"path {'-'.join(path)}: dependence "
                f"{edge.src.uid}->{edge.dst.uid} needs {edge.latency} "
                f"cycles, got {c_n - c_m}"
            )
        elif c_n == c_m and edge.latency == 0 and s_n < s_m:
            problems.append(
                f"path {'-'.join(path)}: intra-group order violates "
                f"{edge.src.uid}->{edge.dst.uid}"
            )
    return problems
