"""Greedy global scheduler: a stronger heuristic baseline.

The paper compares against Intel's production compiler, which performs
*global* instruction scheduling heuristically. The plain per-block list
scheduler (:mod:`repro.sched.list_scheduler`) under-approximates that,
so this module adds the classic greedy layer on top: after local
compaction, speculative instructions are hoisted into predecessor blocks
whenever a free slot exists there and every dependence stays satisfied —
the "fill the empty slots upward" strategy production EPIC compilers use
(without compensation copies, without speculation conversion, and
without optimality, which is precisely the gap the ILP then closes).

Selecting it: ``ScheduleFeatures(baseline="greedy")`` or
``REPRO_BASELINE=greedy`` for the benchmark harness.

Restrictions (all conservative):

* only single-source hoisting: an instruction moves to a block that
  dominates its source block and is an immediate DAG predecessor chain
  member (no compensation code);
* only speculative instructions move (the heuristic has no ld.s
  machinery);
* an instruction moves only if the target block has a free issue slot in
  a dispersal-feasible cycle and all its dependence sources are already
  scheduled early enough;
* backedge-variant instructions never leave their loop.
"""

from __future__ import annotations

from repro.machine.itanium2 import ITANIUM2
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import Schedule


class GreedyGlobalScheduler:
    """List scheduling plus greedy upward code motion.

    ``schedule(fn, ddg, region)`` needs the region (for Θ sets and
    speculation classification); it returns a Schedule like the local
    baseline, with some instructions placed above their source blocks.
    """

    def __init__(self, machine=ITANIUM2, max_passes=3):
        self.machine = machine
        self.max_passes = max_passes

    def schedule(self, fn, ddg, region):
        cfg = region.cfg
        order = {name: i for i, name in enumerate(cfg.topo_order)}
        assignment = {}
        for block in fn.blocks:
            for instr in block.instructions:
                if not instr.is_nop:
                    assignment[instr] = block.name

        for _ in range(self.max_passes):
            placement = self._compact(fn, ddg, assignment)
            moved = False
            for instr in sorted(
                assignment, key=lambda i: order[assignment[i]]
            ):
                if not self._movable(instr, region):
                    continue
                target = self._hoist_target(instr, assignment[instr], region)
                if target is None:
                    continue
                cycle = self._free_cycle(instr, target, placement, ddg, cfg)
                if cycle is None:
                    continue
                placement[instr] = (target, cycle)
                assignment[instr] = target
                moved = True
            if not moved:
                break

        # Final compaction re-packs the vacated source blocks — without it
        # upward motion frees slots but never shortens anything.
        placement = self._compact(fn, ddg, assignment)
        return self._materialize(fn, ddg, placement)

    def _compact(self, fn, ddg, assignment):
        """Per-block critical-path list scheduling of the assigned sets."""
        by_block = {}
        for instr, block in assignment.items():
            by_block.setdefault(block, []).append(instr)
        placement = {}
        for block in fn.blocks:
            members = by_block.get(block.name, [])
            if not members:
                continue
            self._compact_block(block.name, members, ddg, placement)
        return placement

    def _compact_block(self, block_name, members, ddg, placement):
        member_set = set(members)
        preds = {
            i: [e for e in ddg.preds(i) if e.src in member_set and e.src is not i]
            for i in members
        }
        succs = {
            i: [e for e in ddg.succs(i) if e.dst in member_set and e.dst is not i]
            for i in members
        }
        priority = {}
        for instr in reversed(_topo(members, succs)):
            priority[instr] = max(
                (priority[e.dst] + max(e.latency, 1) for e in succs[instr]),
                default=0,
            )

        branches = [i for i in members if i.is_branch]
        remaining = {i for i in members if not i.is_branch}
        scheduled = {}
        cycle = 0
        while remaining:
            cycle += 1
            group = []
            ready = sorted(
                (
                    i
                    for i in remaining
                    if all(
                        scheduled.get(e.src, 10**9) + e.latency <= cycle
                        or (e.latency == 0 and scheduled.get(e.src) == cycle
                            and e.src in group)
                        for e in preds[i]
                        if e.src in remaining or e.src in scheduled
                    )
                ),
                key=lambda i: (-priority[i], i.uid),
            )
            for instr in ready:
                blocked = any(
                    e.src in remaining
                    or scheduled.get(e.src, -1) == cycle
                    and e.src not in group
                    and e.latency == 0
                    or scheduled.get(e.src, -(10**9)) + e.latency > cycle
                    for e in preds[instr]
                )
                if blocked:
                    continue
                candidate_units = [g.unit for g in group] + [instr.unit]
                if self.machine.group_feasible(candidate_units):
                    from repro.bundle import group_is_bundleable

                    if group_is_bundleable(group + [instr], []):
                        group.append(instr)
            if not group and cycle > 10 * len(members) + 64:
                raise RuntimeError(f"compaction stuck in {block_name}")
            for instr in group:
                scheduled[instr] = cycle
                remaining.discard(instr)
        if branches:
            earliest = max(
                [
                    scheduled.get(e.src, 0) + e.latency
                    for b in branches
                    for e in preds[b]
                ]
                + [cycle, 1]
            )
            for branch in branches:
                scheduled[branch] = earliest
        for instr, at in scheduled.items():
            placement[instr] = (block_name, at)

    # -- internals ------------------------------------------------------------
    @staticmethod
    def _movable(instr, region):
        if instr.is_branch or instr.is_call or instr.is_check:
            return False
        if not region.speculative.get(instr, False):
            return False
        if instr in region.backedge_variant:
            # never across its loops; conservative: keep put entirely
            return False
        return True

    def _hoist_target(self, instr, block, region):
        """The immediate DAG predecessor, when unique and allowed."""
        cfg = region.cfg
        preds = cfg.predecessors_in_dag(block)
        if len(preds) != 1:
            return None
        target = preds[0]
        if target not in region.theta.get(instr, ()):
            return None
        if cfg.innermost_loop(target) is not cfg.innermost_loop(block):
            # Never cross a loop boundary: hoisting into a loop would
            # re-execute the instruction per iteration.
            return None
        return target

    def _free_cycle(self, instr, target, placement, ddg, cfg):
        """Latest dispersal-feasible cycle in ``target`` respecting deps."""
        target_len = max(
            (c for i, (b, c) in placement.items() if b == target), default=0
        )
        if target_len == 0:
            return None  # do not grow empty blocks
        earliest = 1
        latest = target_len
        for edge in ddg.preds(instr):
            src = placement.get(edge.src)
            if src is None:
                continue
            src_block, src_cycle = src
            if src_block == target:
                earliest = max(earliest, src_cycle + edge.latency)
            elif not cfg.dominates(src_block, target):
                # The producer would not have run yet on every path.
                return None
        for edge in ddg.succs(instr):
            dst = placement.get(edge.dst)
            if dst is None:
                continue
            dst_block, dst_cycle = dst
            if dst_block == target:
                latest = min(latest, dst_cycle - edge.latency)
            elif not (
                cfg.reaches(target, dst_block) or dst_block == target
            ):
                # A consumer at or above the target: hoisting past it
                # would reorder the dependence.
                return None
        from repro.bundle import group_is_bundleable

        for cycle in range(min(latest, target_len), earliest - 1, -1):
            group = [
                i
                for i, (b, c) in placement.items()
                if b == target and c == cycle
            ]
            units = [i.unit for i in group] + [instr.unit]
            if self.machine.group_feasible(units) and group_is_bundleable(
                group + [instr], []
            ):
                return cycle
        return None

    def _materialize(self, fn, ddg, placement):
        schedule = Schedule([b.name for b in fn.blocks])
        by_spot = {}
        for instr, (block, cycle) in placement.items():
            by_spot.setdefault((block, cycle), []).append(instr)
        for (block, cycle), group in sorted(
            by_spot.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            ordered = self._topo_order(group, ddg)
            for instr in ordered:
                schedule.place(instr, block, cycle)
            index_of = {p: i for i, p in enumerate(ordered)}
            pairs = []
            for instr in ordered:
                for edge in ddg.succs(instr):
                    if edge.dst in index_of and edge.latency == 0:
                        pairs.append((index_of[instr], index_of[edge.dst]))
            schedule.order_pairs[(block, cycle)] = pairs
        return schedule

    @staticmethod
    def _topo_order(group, ddg):
        members = set(group)
        pred_count = {i: 0 for i in group}
        for instr in group:
            for edge in ddg.succs(instr):
                if edge.dst in members and edge.dst is not instr:
                    pred_count[edge.dst] += 1
        ready = sorted(
            (i for i in group if pred_count[i] == 0), key=lambda i: i.uid
        )
        order = []
        while ready:
            instr = ready.pop(0)
            order.append(instr)
            for edge in ddg.succs(instr):
                if edge.dst in members and edge.dst is not instr:
                    pred_count[edge.dst] -= 1
                    if pred_count[edge.dst] == 0:
                        ready.append(edge.dst)
        # Branches last (B slots sit at template ends anyway).
        return [i for i in order if not i.is_branch] + [
            i for i in order if i.is_branch
        ]
def _topo(members, succs):
    member_set = set(members)
    indegree = {i: 0 for i in members}
    for instr in members:
        for edge in succs[instr]:
            indegree[edge.dst] += 1
    ready = [i for i in members if indegree[i] == 0]
    order = []
    while ready:
        instr = ready.pop()
        order.append(instr)
        for edge in succs[instr]:
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0:
                ready.append(edge.dst)
    return order

