"""Input preparation for the postpass optimizer (paper Sec. 6.1).

The tool "reconstructs control flow, data dependences and ... execution
frequency estimates", then "undoes all uses of control and data
speculation ... and performs register renaming". This module holds the
undo step plus function cloning (the driver never mutates its caller's
IR).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.parser import parse_function
from repro.ir.printer import format_function


@dataclass
class UndoStats:
    """How much input speculation was reverted (Table 2 "Spec. in")."""

    spec_loads_reverted: int = 0
    checks_removed: int = 0

    @property
    def total(self):
        return self.spec_loads_reverted


def clone_function(fn):
    """Deep-copy a Function via a print/parse round trip."""
    return parse_function(format_function(fn))


def undo_speculation(fn):
    """Revert ld.s/ld.a to plain loads and drop their checks, in place.

    A speculative load is matched with its check through the checked
    register (the ``chk`` tests the load's destination). The reverted load
    is re-homed to the check's position — the check marks the original,
    non-speculative program point — so that the scheduler sees the program
    as it was before the input compiler speculated.
    """
    stats = UndoStats()
    position = {}
    for block in fn.blocks:
        for instr in block.instructions:
            if instr.is_check and instr.srcs:
                position[instr.srcs[0]] = (block, instr)

    for block in fn.blocks:
        for instr in list(block.instructions):
            op = instr.op
            if not (op.is_spec_load or op.is_adv_load):
                continue
            stats.spec_loads_reverted += 1
            instr.mnemonic = instr.mnemonic.split(".")[0]
            if not instr.dests:
                continue
            entry = position.get(instr.dests[0])
            if entry is None:
                continue
            home_block, check = entry
            block.instructions.remove(instr)
            at = home_block.instructions.index(check)
            home_block.instructions.insert(at, instr)

    for block in fn.blocks:
        kept = [i for i in block.instructions if not i.is_check]
        stats.checks_removed += len(block.instructions) - len(kept)
        block.instructions[:] = kept
    return stats
