"""Partial-ready code motion — paper Sec. 5.3.

Partial-ready motion lets an instruction move up along its *likely* path
by ignoring a dependence that only holds on another path, compensating
with a re-execution after the dependence source on that other path
(Fig. 6: the ld.s hoists above the join although a mov on the unlikely
side still redefines its address register; a compensation copy re-runs
the load after the mov).

Model mechanics, following the paper ("replacing the '=' by '<=' for
specific instances of equation (2), in the example for the edge A–B"):
for a candidate instruction n, dependence (m → n) and join J below s(m),
the flow equalities of n are relaxed to ``<=`` at every edge *into the
dependence side* — the blocks path-related to s(m) above J. The a-chain
may then "forget" a placement of n above s(m) on exactly that side:

* the join's own equalities (untouched) now demand a fresh copy of n on
  the forgotten side — the compensation copy, making n appear twice on
  that path (the weakening of Theorem 2's hypothesis);
* the precedence constraints (4)/(5) of the dependence stay *fully
  active*: wherever the a-value of n is honest (not forgotten), n must
  follow m — which pins the compensation copy after the mov while the
  forgotten hoisted copy escapes, because its side a-values are zero.

Because a relaxed equality only ever under-reports completion — forcing
*more* copies downstream, never fewer — no switch variable is needed and
the freedom composes safely with every other constraint.

Restrictions mirroring the paper's (Sec. 5.3): only speculative,
re-executable instructions (including Sec. 5.1 speculative loads); no
combination with predication; the dependence source strictly above the
join on one side.
"""

from __future__ import annotations

from repro.ir.ddg import DepKind


def find_partial_ready_sites(region):
    """Candidate (instruction, dependence, join) triples."""
    sites = []
    cfg = region.cfg
    for instr in region.instructions:
        if not region.speculative.get(instr, False):
            continue
        if not instr.multiply_executable:
            continue
        if instr in region.predicate_sources:
            continue
        source = region.source_block[instr]
        for edge in region.ddg.preds(instr):
            if edge.kind is not DepKind.TRUE:
                continue
            dep_block = region.source_block.get(edge.src)
            if dep_block is None:
                continue
            for join in _joins_between(cfg, dep_block, source):
                sites.append((instr, edge, join))
    return sites


def _joins_between(cfg, dep_block, source):
    """Join blocks J with dep_block strictly above J and J at/above source.

    These are the merge points where forgetting the dependence side opens
    placement above J on the other side.
    """
    joins = []
    candidates = {source} | {
        b for b in cfg.block_names if cfg.reaches(b, source)
    }
    for join in candidates:
        if len(cfg.predecessors_in_dag(join)) < 2:
            continue
        if join == dep_block:
            continue
        if not cfg.reaches(dep_block, join):
            continue
        # At least one incoming side must bypass the dependence source.
        bypass = any(
            pred != dep_block and not cfg.reaches(dep_block, pred)
            for pred in cfg.predecessors_in_dag(join)
        )
        if bypass:
            joins.append(join)
    return joins


def attach_partial_ready(ilp, spec_groups=(), max_sites=24):
    """Wire partial-ready freedom into the model (pre-generate).

    Sites are bounded by ``max_sites`` (nearest joins first) — the paper
    likewise notes the "increased search space and thereby the solution
    times" and imposes restrictions to cope.
    """
    region = ilp.region
    cfg = region.cfg
    sites = find_partial_ready_sites(region)
    sites += _spec_group_sites(ilp, spec_groups)
    sites.sort(key=lambda site: cfg.topo_index(site[2]), reverse=True)
    sites = sites[:max_sites]

    applied = []
    relaxed_instrs = set()
    for instr, edge, join in sites:
        dep_block = region.source_block.get(edge.src)
        side = _dependence_side(cfg, dep_block, join)
        for block in side:
            for pred in cfg.predecessors_in_dag(block):
                ilp.relaxed_flow.add((instr, pred, block))
        if instr not in relaxed_instrs:
            relaxed_instrs.add(instr)
            _limit_one_copy_per_block(ilp, instr)
        applied.append((instr, edge, join))
    return applied


def _dependence_side(cfg, dep_block, join):
    """Blocks path-related to the dependence source, strictly above the join.

    This is where the candidate's a-chain may forget placements: the
    source block itself, the side blocks above it, and the side blocks
    between it and the join.
    """
    side = {dep_block}
    for block in cfg.block_names:
        if block == join or cfg.reaches(join, block):
            continue  # at or below the join
        if cfg.reaches(block, dep_block):
            side.add(block)
        elif cfg.reaches(dep_block, block) and cfg.reaches(block, join):
            side.add(block)
    return side


def _limit_one_copy_per_block(ilp, instr):
    """Relaxed flow loses the implicit Σ_t x <= 1 — restore it explicitly."""

    def builder(ilp_):
        for block in ilp_.info[instr].theta:
            total = ilp_.x_sum(instr, block)
            ilp_.model.add_constraint(
                ilp_._as_expr(total) <= 1, name=f"once_{instr.uid}_{block}"
            )

    ilp.defer(builder)


def _spec_group_sites(ilp, spec_groups):
    """Partial-ready sites for the speculative loads of Sec. 5.1 groups."""
    region = ilp.region
    cfg = region.cfg
    sites = []
    for group in spec_groups:
        spec_load = group.spec_load
        info = ilp.info.get(spec_load)
        if info is None:
            continue
        for edge in ilp.extra_edges:
            if edge.dst is not spec_load or edge.kind is not DepKind.TRUE:
                continue
            dep_block = region.source_block.get(edge.src)
            if dep_block is None:
                continue
            for join in _joins_between(cfg, dep_block, info.source):
                sites.append((spec_load, edge, join))
    return sites
