"""The postpass optimizer driver (paper Sec. 6.1).

Pipeline: clone → undo input speculation → register renaming → CFG /
liveness / dependence analyses → baseline list schedule ("input
schedule") → region + cycle ranges → ILP (with enabled extensions) →
solve → reconstruct → bundling-cut loop → optional phase 2 → verify.

``ScheduleFeatures`` mirrors the paper's experiment axes (Fig. 7):
speculation, cyclic code motion and partial-ready code motion can be
switched individually; predication, branch-collapse modeling and the
phase-2 instruction-count cleanup are part of the base configuration.

Graceful degradation: rescheduling is a *postpass*, so it is optional by
contract — when the solver cannot deliver, the compiler's input schedule
is always a valid answer. ``optimize`` therefore never fails a routine;
it walks a fallback ladder instead, recorded in ``OptimizeResult.quality``:

``"optimal"``
    every solve contributing to the emitted schedule proved optimality;
``"incumbent"``
    the schedule comes from the ILP but at least one contributing solve
    hit a limit and returned its best incumbent unproven;
``"phase1"``
    phase 2 was requested but failed (timeout without a usable solution,
    infeasibility, or a discarded reconstruction); the bundled phase-1
    schedule is emitted;
``"fallback_input"``
    the ILP pipeline could not produce a verified schedule at all (no
    incumbent, cycle-range or bundling-cut budgets exhausted, wall-clock
    budget spent, or the verifier rejected the ILP schedule); the input
    list schedule is returned unchanged.

``OptimizeResult.fallback_reason`` carries the structured cause, and one
wall-clock :class:`~repro.tools.deadline.Deadline` built from
``ScheduleFeatures.time_limit`` is shared by phase 1, every bundling-cut
re-solve and phase 2, so each solve gets only the *remaining* budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.errors import BundlingError, SchedulingError
from repro.ilp import KNOWN_BACKENDS, SolveStatus, solve_model
from repro.ilp.portfolio import KNOWN_RUNNERS
from repro.obs import core as obs
from repro.obs import insight
from repro.ir.cfg import CfgInfo
from repro.ir.ddg import DepEdge, DepKind, build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.rename import rename_registers
from repro.machine.itanium2 import ITANIUM2
from repro.bundle import bundle_schedule
from repro.sched.cycles import grow_lengths, lengths_from_input
from repro.sched.ilp_formulation import SchedulingIlp
from repro.sched.list_scheduler import ListScheduler
from repro.sched.phase2 import minimize_instruction_count
from repro.sched.prep import clone_function, undo_speculation
from repro.sched.reconstruct import reconstruct_schedule
from repro.sched.regions import build_region
from repro.sched.speculation import (
    attach_speculation,
    find_speculation_candidates,
)
from repro.sched.verifier import VerificationReport, verify_schedule
from repro.tools import faults
from repro.tools.deadline import Deadline

QUALITY_TIERS = ("optimal", "incumbent", "phase1", "fallback_input")


@dataclass(frozen=True)
class FallbackReason:
    """Why the result sits below ``"optimal"`` on the fallback ladder.

    ``site`` is a :data:`repro.tools.faults.SITES` name (or ``"pipeline"``
    for an unexpected error), ``kind`` the failure class (``"timeout"``,
    ``"infeasible"``, ``"no_incumbent"``, ``"deadline"``,
    ``"retries_exhausted"``, ``"no_solution"``, ``"discarded"``,
    ``"unproven"``, ``"rejected"``, ``"error"``), ``detail`` free text.
    """

    site: str
    kind: str
    detail: str = ""

    def __str__(self):
        base = f"{self.site}:{self.kind}"
        return f"{base} ({self.detail})" if self.detail else base


class _Degrade(Exception):
    """Internal control flow: abandon the ILP pipeline, keep the input."""

    def __init__(self, reason):
        super().__init__(str(reason))
        self.reason = reason


@dataclass
class _PipelineResult:
    """What a successful ILP pipeline run hands back to ``optimize``."""

    ilp: object
    final_solution: object
    reconstruction: object
    spec_groups: list
    bundles_out: object
    phase1_size: dict
    phase2_applied: bool
    phase2_failure: FallbackReason | None
    statuses: list  # SolveStatus of solves contributing to the schedule
    unproven_site: str | None


@dataclass(frozen=True)
class ScheduleFeatures:
    """Optimizer configuration (paper defaults)."""

    speculation: bool = True  # control speculation groups (5.1)
    data_speculation: bool = True  # ld.a/chk.a groups (5.1/6.1)
    cyclic: bool = True  # cyclic code motion (5.2)
    partial_ready: bool = True  # partial-ready code motion (5.3)
    predication: bool = True  # predication via code motion (Sec. 4)
    collapse_branches: bool = True  # block-collapse modeling (5.4)
    two_phase: bool = True  # instruction-count cleanup (5.5)
    incremental_cuts: bool = True  # append cut rows / reuse built model
    phase2_objective: str = "instructions"  # | "register_pressure" | "stalls"
    baseline: str = "local"  # input-schedule heuristic: "local" | "greedy"
    tight_lengths: bool = True  # OASIC-grade length linking vs compact rows
    verify: bool = True
    backend: str = "highs"
    time_limit: float | None = 120.0
    # Share of solve time HiGHS spends on primal heuristics (None = the
    # HiGHS default). Ignored by the "bb" backend. See HighsSolver.
    heuristic_effort: float | None = 0.5
    # backend="portfolio" only: the runner roster raced on every solve
    # (entries from repro.ilp.portfolio.KNOWN_RUNNERS — single-backend
    # names plus "ordered:<backend>" for the order/disjunctive encoding),
    # the tie-break seed that keeps tia-opt output byte-identical
    # run-to-run, and the cap on concurrently racing lanes (None = all).
    portfolio_backends: tuple = ("highs", "bb", "ordered:highs")
    portfolio_seed: int = 0
    portfolio_threads: int | None = None
    reserve: int = 1  # G_A head-room (Sec. 6.1, k)
    freq_cap: float = 5.0  # speculation frequency factor (5.1)
    speculation_cost: float = 0.0  # Sec. 5.1 cost model weight (paper: unused)
    max_hops: int | None = None  # optional code-motion distance bound
    max_resize_attempts: int = 3
    max_bundle_retries: int = 4
    # Verified rollback: when the path verifier rejects the ILP schedule,
    # return the input schedule (quality "fallback_input") instead of the
    # unproven ILP one. Disable only for debugging the verifier itself.
    rollback_on_verify_failure: bool = True
    # Region decomposition (repro.sched.decompose): partition large
    # routines at legal cut blocks and solve one ILP per partition.
    # Routines below the instruction threshold — and routines where no
    # boundary survives the cut-legality rule — solve whole-function,
    # bit-identically to decompose=False.
    decompose: bool = True
    decompose_min_instructions: int = 100
    # Software pipelining (repro.sched.modulo): after the acyclic global
    # schedule is produced, modulo-schedule every counted single-block
    # inner loop through the II ladder (modulo ILP from MII upward, then
    # the time-indexed formulation, then the unpipelined loop).  Off by
    # default: the pipelined routine is attached as per-loop
    # ``OptimizeResult.swp_outcomes`` records, never spliced into the
    # acyclic ``output_schedule``.
    swp: bool = False
    swp_max_ii: int = 32  # II ladder ceiling
    swp_max_stages: int = 4  # stage-count / register-pressure bound
    swp_time_limit: float = 10.0  # per-loop ladder budget (seconds)

    def __post_init__(self):
        # Fail at construction with the full menu, not deep inside
        # _optimize_impl on an unknown string (and not per-lane inside a
        # race for a bad roster entry).
        if self.backend not in KNOWN_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(expected one of {', '.join(KNOWN_BACKENDS)})"
            )
        roster = tuple(self.portfolio_backends)
        object.__setattr__(self, "portfolio_backends", roster)
        if self.backend == "portfolio":
            if not roster:
                raise ValueError(
                    "backend='portfolio' requires a non-empty "
                    "portfolio_backends roster"
                )
            unknown = [r for r in roster if r not in KNOWN_RUNNERS]
            if unknown:
                raise ValueError(
                    f"unknown portfolio runner(s) {unknown!r} "
                    f"(expected one of {', '.join(KNOWN_RUNNERS)})"
                )
        if self.portfolio_threads is not None and self.portfolio_threads < 1:
            raise ValueError("portfolio_threads must be >= 1 (or None)")
        if self.swp_max_ii < 1:
            raise ValueError("swp_max_ii must be >= 1")
        if self.swp_max_stages < 1:
            raise ValueError("swp_max_stages must be >= 1")

    @classmethod
    def baseline_ilp(cls):
        """Fig. 7 level 0: global motion only, no extensions."""
        return cls(
            speculation=False,
            data_speculation=False,
            cyclic=False,
            partial_ready=False,
        )


@dataclass
class OptimizeResult:
    """Everything the benchmarks and reports read."""

    fn: object  # the (prepared, renamed) routine actually scheduled
    input_schedule: object
    output_schedule: object
    reconstruction: object
    region: object
    solution: object
    spec_groups: list
    bundles_in: object
    bundles_out: object
    verification: object = None
    phase2_applied: bool = False
    undo_stats: object = None
    ilp_size: dict = field(default_factory=dict)
    messages: list = field(default_factory=list)
    # Fallback-ladder tier ("optimal" | "incumbent" | "phase1" |
    # "fallback_input") and the structured cause when below "optimal".
    quality: str = "optimal"
    fallback_reason: FallbackReason | None = None
    # Per-routine span tree (repro.obs.Trace), recorded unconditionally:
    # the source of the phase-timing breakdown below and — when global
    # observability is on — of the routine's lane in the Chrome trace.
    trace: object = None
    # The exact edge set/scopes verification ran with.  Cyclic flipped
    # dependences are verify-exempt or scoped; a bare ``verify_schedule``
    # call over the full DDG would falsely reject such schedules, so
    # consumers that re-verify (the serving cache) must replay these.
    verify_edges: object = None
    verify_scopes: object = None
    # Software-pipelining post-step (features.swp): one
    # repro.sched.modulo.ladder.LoopPipelineOutcome per counted loop.
    # The acyclic output_schedule is never altered by this step.
    swp_outcomes: list = field(default_factory=list)

    # -- headline metrics -------------------------------------------------------
    @property
    def weighted_length_in(self):
        return self.input_schedule.weighted_length(self.fn)

    @property
    def weighted_length_out(self):
        return self.output_schedule.weighted_length(self.fn)

    @property
    def static_reduction(self):
        before = self.weighted_length_in
        if before <= 0:
            return 0.0
        return 1.0 - self.weighted_length_out / before

    @property
    def spec_possible(self):
        return len(self.spec_groups)

    @property
    def spec_used(self):
        if self.solution is None:
            return 0
        return sum(
            1
            for g in self.spec_groups
            if self.solution.value_of(g.usespec) >= 1
        )

    def report(self):
        lines = [
            f"routine {self.fn.name}:",
            f"  weighted schedule length {self.weighted_length_in:g} -> "
            f"{self.weighted_length_out:g} "
            f"({self.static_reduction:.1%} reduction)",
            f"  instructions {self.input_schedule.instruction_count} -> "
            f"{self.output_schedule.instruction_count}",
            f"  bundles {self.bundles_in.total_bundles} -> "
            f"{self.bundles_out.total_bundles}",
            f"  speculation possible/used: {self.spec_possible}/{self.spec_used}",
            f"  ILP: {self.ilp_size.get('constraints', '?')} constraints, "
            f"{self.ilp_size.get('variables', '?')} variables, "
            f"{self.ilp_size.get('nodes', '?')} B&B nodes, "
            f"{self.ilp_size.get('time', 0):.2f}s",
        ]
        gap = self.ilp_size.get("gap")
        if gap is not None:
            lines.append(f"  final optimality gap: {gap:.2%}")
        breakdown = self.phase_breakdown()
        if breakdown:
            lines.append("  phases: " + breakdown)
        if self.verification is not None:
            status = "passed" if self.verification.ok else "FAILED"
            lines.append(
                f"  verification {status} "
                f"({self.verification.paths_checked} paths)"
            )
        lines.append(f"  quality: {self.quality}")
        if self.fallback_reason is not None:
            lines.append(f"  fallback reason: {self.fallback_reason}")
        lines.extend(f"  {o.summary()}" for o in self.swp_outcomes)
        lines.extend(f"  note: {m}" for m in self.messages)
        return "\n".join(lines)

    # Report labels for the trace's pipeline-stage spans, in display order.
    _PHASE_LABELS = (
        ("analyze", "analyze"),
        ("input_schedule", "input schedule"),
        ("ilp.build", "ilp build"),
        ("solve.phase1", "phase 1"),
        ("solve.cut_resolve", "cut re-solves"),
        ("bundle", "bundle"),
        ("solve.phase2", "phase 2"),
        ("verify", "verify"),
        ("swp.ladder", "swp ladder"),
        ("swp.fallback", "swp fallback"),
        ("swp.materialize", "swp materialize"),
        ("swp.oracle", "swp oracle"),
    )

    def phase_breakdown(self):
        """One-line per-phase timing summary from the span tree.

        ``""`` when the result predates the trace (old pickles) — report()
        then simply omits the line.
        """
        if self.trace is None:
            return ""
        durations = self.trace.durations()
        parts = []
        for name, label in self._PHASE_LABELS:
            agg = durations.get(name)
            if agg is None:
                continue
            text = f"{label} {agg['seconds']:.2f}s"
            if agg["count"] > 1:
                text += f" (x{agg['count']})"
            parts.append(text)
        return " | ".join(parts)

    def phase_timings(self):
        """Machine-readable ``{span name: {"seconds", "count"}}`` map."""
        return {} if self.trace is None else self.trace.durations()


class IlpScheduler:
    """ILP-based global scheduler with the paper's extensions."""

    def __init__(self, machine=ITANIUM2, features=None, partition_store=None):
        self.machine = machine
        self.features = features or ScheduleFeatures()
        # Optional repro.serve.store.ScheduleStore: the decomposed
        # pipeline publishes/consumes per-partition length hints here.
        self.partition_store = partition_store

    # -- public -----------------------------------------------------------------
    def optimize(self, fn, length_hint=None):
        """Schedule ``fn``; never raises for pipeline failures — degrades
        along the fallback ladder (see the module docstring).  The one
        deliberate exception is :class:`repro.tools.faults.FaultConfigError`
        (a malformed ``REPRO_FAULTS`` spec): that is a configuration bug in
        the *driver*, and swallowing it would silently turn every routine
        into ``fallback_input`` while injecting nothing, so it propagates.

        ``length_hint`` is an optional ``{block name: cycles}`` map of
        block lengths achieved by a structurally similar routine (a
        cache-family near miss, :mod:`repro.serve.service`).  Hinted
        blocks get their initial cycle range *tightened* to the hint
        (never widened), shrinking the ILP; if the hint turns out
        infeasible for this routine, the normal cycle-range growth
        ladder recovers."""
        deadline = Deadline(self.features.time_limit)
        trace = obs.Trace()
        with trace.span("optimize", routine=fn.name) as root_span:
            result = self._optimize_impl(fn, deadline, trace, length_hint)
            if self.features.swp:
                self._run_swp(result, deadline, trace)
            # Paper-metric analytics ride the trace (and, when recording,
            # the optimize span) so Table 1/2-shaped numbers survive the
            # pool fan-out and land in the Chrome trace for dashboards.
            try:
                trace.paper_metrics = insight.paper_metrics(result)
            except Exception as exc:  # never fail a routine over analytics
                result.messages.append(
                    f"paper-metric analytics failed: "
                    f"{type(exc).__name__}: {exc}"
                )
            else:
                root_span.set_attr("quality", result.quality)
                root_span.set_attr("paper_metrics", trace.paper_metrics)
        self._publish_routine_metrics(result, trace, deadline)
        return result

    def _optimize_impl(self, fn, deadline, trace, length_hint=None):
        features = self.features
        with trace.span("analyze"):
            work = clone_function(fn)
            undo_stats = undo_speculation(work)
            rename_registers(work)
            cfg = CfgInfo(work)
            liveness = compute_liveness(work)
            ddg = build_dependence_graph(work, cfg, liveness)

            region = build_region(
                work,
                cfg,
                ddg,
                max_hops=features.max_hops,
                freq_cap=features.freq_cap,
                allow_predication=features.predication,
            )
        with trace.span("input_schedule", baseline=features.baseline):
            if features.baseline == "greedy":
                from repro.sched.greedy_global import GreedyGlobalScheduler

                input_schedule = GreedyGlobalScheduler(self.machine).schedule(
                    work, ddg, region
                )
            else:
                input_schedule = ListScheduler(self.machine).schedule(work, ddg)
            bundles_in = bundle_schedule(input_schedule)

        messages = []
        try:
            pieces = None
            if features.decompose:
                from repro.sched.decompose import try_decomposed_pipeline

                pieces = try_decomposed_pipeline(
                    self, work, liveness, ddg, region, deadline, messages,
                    trace,
                )
            if pieces is None:
                pieces = self._run_pipeline(
                    work, region, input_schedule, deadline, messages, trace,
                    length_hint=length_hint,
                )
        except faults.FaultConfigError:
            raise  # driver misconfiguration, not a routine failure
        except _Degrade as exc:
            return self._input_fallback(
                work, region, input_schedule, bundles_in, undo_stats,
                deadline, messages, exc.reason, trace=trace,
            )
        except Exception as exc:  # graceful floor: a routine never fails
            return self._input_fallback(
                work, region, input_schedule, bundles_in, undo_stats,
                deadline, messages,
                FallbackReason(
                    "pipeline", "error", f"{type(exc).__name__}: {exc}"
                ),
                trace=trace,
            )

        quality, fallback_reason = self._grade(pieces)

        verification = None
        verify_edges = None
        verify_scopes = None
        if features.verify:
            if getattr(pieces, "stitched", False):
                # Decomposed results pre-merge their per-partition
                # verifiable edges (plus cross-partition DDG edges).
                verify_edges = pieces.verify_edges
                verify_scopes = pieces.verify_scopes
            else:
                verify_edges = _verifiable_edges(
                    pieces.ilp, pieces.final_solution
                )
                verify_scopes = {
                    e: scope
                    for e, scope in pieces.ilp.verify_scopes.items()
                    if e in set(verify_edges)
                }
            with trace.span("verify"):
                verification = verify_schedule(
                    pieces.reconstruction.schedule,
                    region,
                    pieces.reconstruction,
                    machine=self.machine,
                    dep_edges=verify_edges,
                    edge_scopes=verify_scopes,
                )
            injected = faults.fire("verify")
            if injected is not None:
                verification = VerificationReport(
                    ok=False,
                    problems=[f"injected verification fault ({injected})"],
                    paths_checked=verification.paths_checked,
                    exhaustive=verification.exhaustive,
                )
            if not verification.ok and features.rollback_on_verify_failure:
                # Verified rollback: an unproven schedule is never emitted.
                messages.append(
                    "verification rejected the ILP schedule; "
                    "rolled back to the input schedule"
                )
                problem = (
                    verification.problems[0]
                    if verification.problems
                    else "schedule failed path verification"
                )
                return self._input_fallback(
                    work, region, input_schedule, bundles_in, undo_stats,
                    deadline, messages,
                    FallbackReason("verify", "rejected", problem),
                    ilp_size=pieces.phase1_size,
                    trace=trace,
                )

        return OptimizeResult(
            fn=work,
            input_schedule=input_schedule,
            output_schedule=pieces.reconstruction.schedule,
            reconstruction=pieces.reconstruction,
            region=region,
            solution=pieces.final_solution,
            spec_groups=pieces.spec_groups,
            bundles_in=bundles_in,
            bundles_out=pieces.bundles_out,
            verification=verification,
            phase2_applied=pieces.phase2_applied,
            undo_stats=undo_stats,
            ilp_size=pieces.phase1_size,
            messages=messages,
            quality=quality,
            fallback_reason=fallback_reason,
            trace=trace,
            verify_edges=verify_edges,
            verify_scopes=verify_scopes,
        )

    def _run_swp(self, result, deadline, trace):
        """Software-pipelining post-step (``features.swp``).

        Runs the II ladder (:func:`repro.sched.modulo.ladder.pipeline_loop`)
        over every natural loop of the *scheduled* routine and attaches the
        per-loop outcomes.  The acyclic schedule, its verification, and the
        quality tier are untouched — a loop that cannot be pipelined simply
        reports itself unpipelined.  Like the main pipeline, this step never
        raises (only a malformed ``REPRO_FAULTS`` spec propagates).
        """
        from repro.sched.modulo.ladder import pipeline_loop

        features = self.features
        try:
            fn = result.fn
            cfg = CfgInfo(fn)
            ddg = build_dependence_graph(fn, cfg, compute_liveness(fn))
            solve_extra = _solve_extra(features)
            for loop in cfg.loops:
                result.swp_outcomes.append(pipeline_loop(
                    fn, cfg, ddg, loop,
                    machine=self.machine,
                    backend=features.backend,
                    deadline=deadline,
                    max_ii=features.swp_max_ii,
                    max_stages=features.swp_max_stages,
                    time_limit=features.swp_time_limit,
                    solve_extra=solve_extra,
                    features=features,
                    store=self.partition_store,
                    trace=trace,
                ))
        except faults.FaultConfigError:
            raise  # driver misconfiguration, not a routine failure
        except Exception as exc:  # the post-step never fails a routine
            result.messages.append(
                f"software pipelining failed: {type(exc).__name__}: {exc}"
            )

    # Pipeline sites whose share of the wall-clock budget is worth a
    # histogram: one observation per routine per site that actually ran.
    _DEADLINE_SITES = (
        "solve.phase1", "solve.cut_resolve", "solve.phase2", "bundle", "verify",
    )

    def _publish_routine_metrics(self, result, trace, deadline):
        """Fold one routine's outcome into the process metrics registry.

        Published for *every* tier — degraded routines included — so the
        metrics dump always answers "which tier did each routine land on".
        Reads the trace's plain counters, which survive a mid-pipeline
        ``_Degrade`` (unlike pipeline locals).
        """
        if not obs.ENABLED:
            return
        name = result.fn.name
        obs.counter("routine_fallback_total", 1, routine=name, tier=result.quality)
        nodes = result.ilp_size.get("nodes") or 0
        if nodes:
            obs.counter("routine_nodes_total", nodes, routine=name)
        hits = trace.counters.get("warm_start_hits", 0)
        misses = trace.counters.get("warm_start_misses", 0)
        if hits:
            obs.counter("routine_warm_start_hits_total", hits, routine=name)
        if misses:
            obs.counter("routine_warm_start_misses_total", misses, routine=name)
        cuts = trace.counters.get("bundling_cuts", 0)
        if cuts:
            obs.counter("bundling_cuts_total", cuts, routine=name)
        obs.histogram("bundling_cuts_per_routine", float(cuts))
        gap = result.ilp_size.get("gap")
        if gap is not None:
            obs.gauge("routine_final_gap", float(gap), routine=name)
        paper = trace.paper_metrics
        if paper:
            obs.gauge(
                "routine_static_reduction",
                float(paper["static_reduction"]),
                routine=name,
            )
            obs.gauge(
                "routine_weighted_ipc_out",
                float(paper["weighted_ipc_out"]),
                routine=name,
            )
            obs.gauge(
                "routine_nop_density_out",
                float(paper["nop_density_out"]),
                routine=name,
            )
            if paper["compensation_copies"]:
                obs.counter(
                    "compensation_copies_total",
                    paper["compensation_copies"],
                    routine=name,
                )
        budget = deadline.budget
        if budget:
            durations = trace.durations()
            for site in self._DEADLINE_SITES:
                agg = durations.get(site)
                if agg is not None:
                    obs.histogram(
                        "deadline_fraction_consumed",
                        agg["seconds"] / budget,
                        site=site,
                    )

    # -- pipeline ---------------------------------------------------------------
    def _run_pipeline(
        self, work, region, input_schedule, deadline, messages, trace,
        length_hint=None,
    ):
        """Phase 1 + bundling-cut loop + phase 2; raises ``_Degrade`` when
        no ILP schedule can be produced within the budgets."""
        features = self.features
        lengths = lengths_from_input(
            input_schedule, work, reserve=features.reserve
        )
        if length_hint:
            tightened = apply_length_hint(lengths, length_hint)
            if tightened is not None:
                lengths = tightened
                trace.count("family_hint_applied")
                messages.append(
                    "seeded cycle ranges from a cache-family near miss"
                )
        bundling_cuts = []
        # Decoupled retry budgets: cycle-range growths are counted per
        # INFEASIBLE verdict and bundling retries per BundlingError, so cut
        # re-solves no longer consume ``max_resize_attempts``.
        resize_attempts = 0
        bundle_retries = 0
        # The built (ilp, model) pair is cached across cut-loop re-solves:
        # a violated bundle only appends its cut rows to the existing model
        # (and its cached matrix form) instead of regenerating the whole
        # formulation. A cycle-range growth changes the variable set, so it
        # invalidates the cache and rebuilds.
        ilp = model = None
        spec_groups = []
        prev_values = None
        # Cut-effectiveness attribution: the objective before a cut was
        # appended, resolved against the next successful re-solve.
        pending_cut = None
        solve_extra = _solve_extra(features)
        while True:
            site = "solve.cut_resolve" if bundle_retries else "solve.phase1"
            if deadline.expired:
                raise _Degrade(FallbackReason(
                    site, "deadline",
                    f"wall-clock budget ({deadline.budget:g}s) exhausted",
                ))
            if ilp is None:
                with trace.span("ilp.build"):
                    build = self._ilp_factory(region, lengths, bundling_cuts)
                    ilp, spec_groups = build()
                    model = ilp.generate()
            if features.backend == "portfolio":
                # The ordered lanes re-encode from the formulation that
                # owns *this* model (rebuilds swap both together).
                solve_extra["scheduling_ilp"] = ilp
            # A seeded re-solve is a warm-start hit; anything solved cold
            # (first solve, or after a rebuild dropped the incumbent) a miss.
            trace.count(
                "warm_start_hits" if prev_values is not None
                else "warm_start_misses"
            )
            with trace.span(site, backend=features.backend) as solve_span:
                solution = solve_model(
                    model,
                    backend=features.backend,
                    deadline=deadline,
                    incumbent=prev_values,
                    fault_site=site,
                    **solve_extra,
                )
                solve_span.set_attr("status", solution.status.name)
                solve_span.set_attr("nodes", solution.stats.nodes)
                if solution.stats.gap is not None:
                    solve_span.set_attr("gap", solution.stats.gap)
                timeline = solution.stats.gap_timeline
                if timeline is not None and len(timeline):
                    solve_span.set_attr("gap_timeline", timeline.as_dict())
            trace.solves.append(
                insight.solve_telemetry(site, features.backend, solution)
            )
            if solution.status is SolveStatus.INFEASIBLE:
                resize_attempts += 1
                if resize_attempts > features.max_resize_attempts:
                    raise _Degrade(FallbackReason(
                        site, "infeasible",
                        f"{work.name}: model stays infeasible after "
                        f"{features.max_resize_attempts} cycle-range growths",
                    ))
                lengths = grow_lengths(lengths)
                ilp = model = None
                prev_values = None
                # A rebuild with grown ranges confounds the attribution.
                pending_cut = None
                messages.append("grew cycle ranges after infeasibility")
                continue
            if not solution:
                raise _Degrade(FallbackReason(
                    site, "no_incumbent",
                    f"{work.name}: solver returned {solution.status.name} "
                    "without an incumbent",
                ))
            if pending_cut is not None:
                effect = insight.cut_effect(
                    pending_cut["index"],
                    pending_cut["members"],
                    pending_cut["prev_objective"],
                    solution,
                    site,
                )
                trace.cuts.append(effect)
                if obs.ENABLED:
                    obs.event("cut.effect", **effect)
                pending_cut = None
            reconstruction = reconstruct_schedule(ilp, solution, spec_groups)
            injected = faults.fire("bundle")
            try:
                with trace.span("bundle"):
                    if injected is not None:
                        raise BundlingError(
                            f"injected bundle fault ({injected})"
                        )
                    bundles_out = bundle_schedule(reconstruction.schedule)
                break
            except BundlingError as exc:
                bundle_retries += 1
                if bundle_retries > features.max_bundle_retries:
                    raise _Degrade(FallbackReason(
                        "bundle", "retries_exhausted",
                        f"bundling still failing after "
                        f"{features.max_bundle_retries} retries: {exc}",
                    ))
                members = getattr(exc, "instructions", [])
                placed = {
                    (p.root_origin, blk)
                    for blk in reconstruction.schedule.block_order
                    for p in reconstruction.schedule.instructions_in(blk)
                }
                cut = [
                    (i.root_origin, blk)
                    for i in members
                    for blk in reconstruction.schedule.block_order
                    if (i.root_origin, blk) in placed
                ]
                if cut:
                    bundling_cuts.append(cut)
                    trace.count("bundling_cuts")
                    pending_cut = {
                        "index": len(bundling_cuts) - 1,
                        "members": len(cut),
                        "prev_objective": solution.objective,
                    }
                    if features.incremental_cuts:
                        ilp.append_bundling_cut(cut)
                        # The previous optimum seeds the re-solve; it violates
                        # the cut just added, so validation drops it then — but
                        # a re-solve after several stacked cuts can reuse it.
                        prev_values = solution.values
                    else:
                        ilp = model = None
                    messages.append(f"added bundling constraint: {exc}")
                else:
                    # No offending group attached (an injected fault): retry
                    # the unchanged model, seeded with its own optimum.
                    if features.incremental_cuts:
                        prev_values = solution.values
                    messages.append(f"bundling failed without a cut: {exc}")

        statuses = [solution.status]
        unproven_site = (
            site if solution.status is not SolveStatus.OPTIMAL else None
        )
        phase1_objective = solution.objective
        phase1_size = {
            "constraints": model.num_constraints,
            "variables": model.num_variables,
            "nodes": solution.stats.nodes,
            "time": solution.stats.time_seconds,
            "objective": phase1_objective,
            "gap": solution.stats.gap,
        }
        final_solution = solution
        phase2_applied = False
        phase2_failure = None
        if features.two_phase and deadline.expired:
            phase2_failure = FallbackReason(
                "solve.phase2", "deadline", "no budget left for phase 2"
            )
            messages.append("phase 2 skipped: wall-clock budget exhausted")
        elif features.two_phase:
            phase1_lengths = {
                name: reconstruction.schedule.block_length(name)
                for name in reconstruction.schedule.block_order
            }

            def rebuild():
                ilp2, groups2 = self._ilp_factory(
                    region, lengths, bundling_cuts
                )()
                rebuild.groups = groups2
                return ilp2

            with trace.span(
                "solve.phase2", reused_model=features.incremental_cuts
            ) as p2span:
                if features.incremental_cuts:
                    # Reuse the phase-1 model: pin lengths / swap the
                    # objective in place and seed with the phase-1 optimum
                    # (feasible for the pinned model by construction).
                    rebuild.groups = spec_groups
                    trace.count("warm_start_hits")
                    outcome = minimize_instruction_count(
                        rebuild,
                        phase1_lengths,
                        backend=features.backend,
                        objective=features.phase2_objective,
                        ilp=ilp,
                        incumbent=solution.values,
                        heuristic_effort=features.heuristic_effort,
                        deadline=deadline,
                        solve_extra=solve_extra,
                    )
                else:
                    trace.count("warm_start_misses")
                    outcome = minimize_instruction_count(
                        rebuild,
                        phase1_lengths,
                        backend=features.backend,
                        objective=features.phase2_objective,
                        heuristic_effort=features.heuristic_effort,
                        deadline=deadline,
                        solve_extra=solve_extra,
                    )
                if outcome is not None:
                    p2stats = outcome[1].stats
                    p2span.set_attr("status", outcome[1].status.name)
                    p2span.set_attr("nodes", p2stats.nodes)
                    if p2stats.gap is not None:
                        p2span.set_attr("gap", p2stats.gap)
                    p2timeline = p2stats.gap_timeline
                    if p2timeline is not None and len(p2timeline):
                        p2span.set_attr(
                            "gap_timeline", p2timeline.as_dict()
                        )
            if outcome is not None:
                trace.solves.append(
                    insight.solve_telemetry(
                        "solve.phase2", features.backend, outcome[1]
                    )
                )
            if outcome is None:
                phase2_failure = FallbackReason(
                    "solve.phase2", "no_solution",
                    "phase-2 solve returned no usable solution",
                )
                messages.append("phase 2 failed: no usable solution")
            else:
                ilp2, solution2 = outcome
                try:
                    recon2 = reconstruct_schedule(
                        ilp2, solution2, rebuild.groups
                    )
                    bundles2 = bundle_schedule(recon2.schedule)
                except (BundlingError, SchedulingError) as exc:
                    phase2_failure = FallbackReason(
                        "solve.phase2", "discarded", str(exc)
                    )
                    messages.append(f"phase 2 discarded: {exc}")
                else:
                    # keep phase-1 solver stats; swap the schedule pieces
                    ilp = ilp2
                    final_solution = solution2
                    reconstruction = recon2
                    spec_groups = rebuild.groups
                    bundles_out = bundles2
                    phase2_applied = True
                    statuses.append(solution2.status)
                    if (
                        solution2.status is not SolveStatus.OPTIMAL
                        and unproven_site is None
                    ):
                        unproven_site = "solve.phase2"

        return _PipelineResult(
            ilp=ilp,
            final_solution=final_solution,
            reconstruction=reconstruction,
            spec_groups=spec_groups,
            bundles_out=bundles_out,
            phase1_size=phase1_size,
            phase2_applied=phase2_applied,
            phase2_failure=phase2_failure,
            statuses=statuses,
            unproven_site=unproven_site,
        )

    def _grade(self, pieces):
        """Map pipeline outcomes to (quality tier, fallback reason)."""
        if self.features.two_phase and not pieces.phase2_applied:
            return "phase1", pieces.phase2_failure
        if all(s is SolveStatus.OPTIMAL for s in pieces.statuses):
            return "optimal", None
        return "incumbent", FallbackReason(
            pieces.unproven_site or "solve.phase1",
            "unproven",
            "accepted best incumbent; optimality not proven within budget",
        )

    def _input_fallback(
        self, work, region, input_schedule, bundles_in, undo_stats,
        deadline, messages, reason, ilp_size=None, trace=None,
    ):
        """The ladder's floor: return the (verified) input list schedule."""
        features = self.features
        messages = list(messages)
        messages.append(f"degraded to the input schedule ({reason})")
        verification = None
        if features.verify:
            span = trace.span("verify") if trace is not None else obs.NOOP_SPAN
            with span:
                verification = verify_schedule(
                    input_schedule, region, machine=self.machine
                )
        size = {
            "constraints": 0,
            "variables": 0,
            "nodes": 0,
            "time": deadline.elapsed(),
            "objective": None,
            "gap": None,
        }
        if ilp_size:
            size.update(ilp_size)
        return OptimizeResult(
            fn=work,
            input_schedule=input_schedule,
            output_schedule=input_schedule,
            reconstruction=None,
            region=region,
            solution=None,
            spec_groups=[],
            bundles_in=bundles_in,
            bundles_out=bundles_in,
            verification=verification,
            phase2_applied=False,
            undo_stats=undo_stats,
            ilp_size=size,
            messages=messages,
            quality="fallback_input",
            fallback_reason=reason,
            trace=trace,
        )

    # -- construction ----------------------------------------------------------
    def _ilp_factory(self, region, lengths, bundling_cuts):
        features = self.features

        def build():
            ilp = SchedulingIlp(
                region,
                dict(lengths),
                self.machine,
                tight_lengths=features.tight_lengths,
            )
            ilp.bundling_cuts = list(bundling_cuts)
            spec_groups = []
            if features.speculation or features.data_speculation:
                candidates = find_speculation_candidates(
                    region,
                    allow_control=features.speculation,
                    allow_data=features.data_speculation,
                )
                used = _used_registers(region.fn)
                spec_groups = attach_speculation(
                    ilp, candidates, used, cost_weight=features.speculation_cost
                )
            if features.cyclic:
                from repro.sched.cyclic import attach_cyclic_motion

                attach_cyclic_motion(ilp)
            if features.partial_ready:
                from repro.sched.partial_ready import attach_partial_ready

                attach_partial_ready(ilp, spec_groups)
            if features.collapse_branches:
                _mark_collapsible_branches(ilp)
            _add_guard_dependences(ilp)
            return ilp, spec_groups

        return build


def _solve_extra(features):
    """Backend-specific ``solve_model`` kwargs for one feature set.

    For the portfolio the caller must still inject ``scheduling_ilp``
    per solve (the ordered lanes re-encode from the live formulation,
    which cycle-range growths rebuild mid-pipeline).
    """
    if features.backend == "highs":
        return {"heuristic_effort": features.heuristic_effort}
    if features.backend == "portfolio":
        return {
            "backends": features.portfolio_backends,
            "seed": features.portfolio_seed,
            "threads": features.portfolio_threads,
            "heuristic_effort": features.heuristic_effort,
        }
    return {}


def apply_length_hint(lengths, hint):
    """Tighten initial cycle ranges toward a family near-miss's achieved
    block lengths.

    Applied only when the hint covers exactly the same block set — a
    sibling with different blocks says nothing about this routine.  Each
    hinted length only ever *shrinks* a range (``min``), so the model
    never gets larger than the cold-start one; a hint that proves too
    tight surfaces as INFEASIBLE and the growth ladder recovers.
    Returns the tightened map, or ``None`` when the hint is unusable.
    """
    try:
        cleaned = {name: int(value) for name, value in hint.items()}
    except (TypeError, ValueError, AttributeError):
        return None
    if set(cleaned) != set(lengths):
        return None
    return {
        name: max(1, min(own, max(cleaned[name], 1)))
        for name, own in lengths.items()
    }


def _verifiable_edges(ilp, solution):
    """Dependence edges the path verifier should check.

    Edges registered as verify-exempt are dropped when their controlling
    expression is active in the solution: those encode *cross-iteration*
    semantics (cyclic code motion) that the last-copy path rule cannot
    express. Everything else — including partially-relaxed partial-ready
    edges, whose compensation copies satisfy the last-copy rule — stays.
    """
    from repro.ilp.expr import LinExpr, Var

    def active(expr):
        if isinstance(expr, Var):
            return solution.value_of(expr) >= 0.5
        if isinstance(expr, LinExpr):
            return expr.value(solution.values) >= 0.5
        return float(expr) >= 0.5

    skip = {edge for edge, expr in ilp.verify_exempt if active(expr)}
    return [e for e in ilp.dep_edges() if e not in skip]


def _used_registers(fn):
    used = set(fn.live_in) | set(fn.live_out)
    for instr in fn.all_instructions():
        used.update(instr.regs_read())
        used.update(instr.regs_written())
    return used


def _mark_collapsible_branches(ilp):
    """Unconditional-branch-only blocks may empty and drop their branch.

    Backedge branches are excluded: removing one would dissolve the loop,
    not merely redirect a fall-through.
    """
    region = ilp.region
    cfg = region.cfg
    for block in region.fn.blocks:
        branches = block.branches
        if len(branches) != 1:
            continue
        branch = branches[0]
        op = branch.op
        if branch.pred is not None or op.is_return or op.is_call:
            continue
        if (block.name, branch.target) in cfg.back_edges:
            continue
        ilp.collapsible_branches.add(branch)


def _add_guard_dependences(ilp):
    """Predication extension: guarded copies depend on their compare."""
    region = ilp.region
    seen = set()
    for (instr, _target), compare in region.guard_compare.items():
        key = (compare, instr)
        if key in seen:
            continue
        seen.add(key)
        ilp.add_edge(DepEdge(compare, instr, DepKind.TRUE, 1))


def optimize_function(
    fn, features=None, machine=ITANIUM2, length_hint=None,
    partition_store=None,
):
    """One-call entry point: schedule ``fn`` and return an OptimizeResult."""
    return IlpScheduler(
        machine=machine, features=features, partition_store=partition_store
    ).optimize(fn, length_hint=length_hint)
