"""Global instruction scheduling (the paper's contribution).

Module map (paper section in parentheses):

* :mod:`repro.sched.regions` — destination-block sets Θ(n)/Θ_spec(n),
  predication-extended destinations (4),
* :mod:`repro.sched.cycles` — per-block cycle ranges G(A) (4.2),
* :mod:`repro.sched.schedule` — the Schedule value type,
* :mod:`repro.sched.ilp_formulation` — x/a/B variables and constraints
  (2)–(7) with resource and bundling constraints (4–4.3),
* :mod:`repro.sched.speculation` — control/data speculation groups with
  ``usespec`` switches (5.1),
* :mod:`repro.sched.cyclic` — cyclic code motion (5.2),
* :mod:`repro.sched.partial_ready` — partial-ready code motion (5.3),
* :mod:`repro.sched.phase2` — second ILP minimizing instruction count (5.5),
* :mod:`repro.sched.reconstruct` — solution → Schedule with compensation
  copies and recovery stubs,
* :mod:`repro.sched.verifier` — path-based correctness checker
  (Theorem 1; also usable on heuristic schedules, Sec. 7),
* :mod:`repro.sched.list_scheduler` — the heuristic baseline standing in
  for the production compiler,
* :mod:`repro.sched.scheduler` — the postpass driver tying it together.
"""

from repro.sched.schedule import Schedule
from repro.sched.regions import SchedulingRegion, build_region
from repro.sched.scheduler import IlpScheduler, ScheduleFeatures, optimize_function
from repro.sched.list_scheduler import ListScheduler
from repro.sched.greedy_global import GreedyGlobalScheduler
from repro.sched.swp import ModuloScheduler, ModuloSchedule
from repro.sched.swp_materialize import (
    materialize_counted_loop,
    recognize_counted_loop,
)
from repro.sched.verifier import verify_schedule

__all__ = [
    "Schedule",
    "SchedulingRegion",
    "build_region",
    "IlpScheduler",
    "ScheduleFeatures",
    "optimize_function",
    "ListScheduler",
    "GreedyGlobalScheduler",
    "ModuloScheduler",
    "ModuloSchedule",
    "materialize_counted_loop",
    "recognize_counted_loop",
    "verify_schedule",
]
