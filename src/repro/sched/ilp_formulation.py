"""The global scheduling ILP — equations (2)–(7) of the paper.

Variable classes (Sec. 4):

* ``x[n,A,t]`` — binary: a copy of instruction n is scheduled at cycle t
  of block A; generated for A ∈ Θ(n), t ∈ G(A).
* ``a[n,B]`` — binary: a copy of n is scheduled *on all program paths
  through s(n) before B*; generated for B related to s(n) plus the
  pseudo exit block Ω. Constant-valued ``a``s (provably 0, or the pinned
  shortcut) are folded away, one of the paper's "fully automated
  optimizations to make the search space compact".
* ``B[A,t]`` — binary block-length indicators, t ∈ {0} ∪ G(A); linked
  tightly to the x variables (OASIC-style) and carrying objective (7).

Extensions (speculation, cyclic, partial-ready) hook in *before*
:meth:`SchedulingIlp.generate` by

* adding instructions (with their own Θ sets) via :meth:`add_instruction`,
* overriding an instruction's assignment right-hand side (eq. (3)) via
  ``assign_rhs`` — e.g. ``1 - usespec``,
* registering relaxation terms added to the RHS of precedence
  constraints (4)/(5) for specific dependence edges via ``relax_edge``,
* adding/removing dependence edges via ``extra_edges``/``dropped_edges``,
* relaxing specific instances of the flow equality (2) to ``<=`` via
  ``relaxed_flow`` (partial-ready code motion, Sec. 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.ilp import Model, lin_sum
from repro.ir.ddg import DepEdge, DepKind
from repro.machine.units import UnitKind


@dataclass
class _InstrInfo:
    """Per-instruction formulation data."""

    theta: set
    related: set  # a-variable domain (w/o Ω)
    source: str
    pinned: bool
    assign_rhs: object = 1  # number | Var | LinExpr


class SchedulingIlp:
    """Builds and owns the scheduling model for one region."""

    OMEGA = "__omega__"

    def __init__(self, region, lengths, machine, name="sched", tight_lengths=True):
        self.region = region
        self.lengths = lengths
        self.machine = machine
        # Tight mode links every x variable to the block-length suffix
        # individually (OASIC-grade LP bound, ~|x| extra rows); compact
        # mode aggregates per (block, cycle) through the width constraint
        # (far fewer rows, weaker relaxation). Both are exact as ILPs.
        self.tight_lengths = tight_lengths
        self.model = Model(name)

        self.x = {}  # (instr, block, t) -> Var
        self.a = {}  # (instr, block) -> Var
        self.blen = {}  # (block, t) -> Var
        self.info = {}  # instr -> _InstrInfo
        # edge -> list of (term, blocks | None): term is added to the RHS of
        # the edge's precedence constraints, either everywhere (None) or only
        # for constraint instances anchored at a block in ``blocks``.
        self.relax_terms = {}
        self.local_only_edges = set()  # edges with (5) instances but no (4)
        self.extra_edges = []
        self.dropped_edges = set()
        self.relaxed_flow = set()  # (instr, pred_block, block) flow edges -> "<="
        # (edge, controlling expr): the verifier skips the edge when the
        # expression evaluates >= 0.5 in the solution (cross-iteration
        # semantics the last-copy path rule cannot express).
        self.verify_exempt = []
        # edge -> frozenset(blocks): the verifier checks the edge only
        # between copies inside those blocks (cyclic flipped edges exist
        # within the loop only; the pre-loop copy legitimately precedes
        # its in-loop operand writers).
        self.verify_scopes = {}
        self.forced_copies = []  # (instr, block, condition) copy requirements
        self.deferred_builders = []  # callables run once x/blen vars exist
        self.objective_extras = []  # expressions added to objective (7)
        self.bundling_cuts = []  # lists of (instr, block) sets to forbid per-cycle
        self.collapsible_branches = set()  # unconditional brs of removable blocks
        self._generated = False

        for instr in region.instructions:
            self.info[instr] = _InstrInfo(
                theta=set(region.theta[instr]),
                related=set(region.theta_spec[instr]),
                source=region.source_block[instr],
                pinned=(instr in region.pinned),
            )

    # -- extension hooks -------------------------------------------------------
    def add_instruction(self, instr, theta, related, source, pinned=False, rhs=1):
        """Register an instruction created by an extension (e.g. an ld.s)."""
        self.info[instr] = _InstrInfo(
            theta=set(theta),
            related=set(related),
            source=source,
            pinned=pinned,
            assign_rhs=rhs,
        )

    def set_assign_rhs(self, instr, rhs):
        self.info[instr].assign_rhs = rhs

    def relax_edge(self, edge, term, blocks=None):
        """Add ``term`` to the RHS of the edge's precedence constraints.

        With ``blocks`` given, only the constraint instances anchored at one
        of those blocks are relaxed (partial-ready and cyclic motion relax
        a dependence on one *side* of the CFG only).
        """
        self.relax_terms.setdefault(edge, []).append(
            (term, frozenset(blocks) if blocks is not None else None)
        )

    def drop_edge(self, edge):
        self.dropped_edges.add(edge)

    def add_edge(self, edge):
        self.extra_edges.append(edge)

    def defer(self, builder):
        """Run ``builder(self)`` during generate(), after variable creation.

        Extensions attach before the x/B variables exist; anything that
        needs ``x_sum`` or ``blen`` registers a deferred builder instead.
        """
        self.deferred_builders.append(builder)

    # -- variable access -----------------------------------------------------------
    def instructions(self):
        return list(self.info)

    def x_var(self, instr, block, t):
        return self.x[(instr, block, t)]

    def x_sum(self, instr, block):
        """Σ_t x[n,A,t] as an expression (0 if A ∉ Θ(n))."""
        info = self.info[instr]
        if block not in info.theta:
            return 0
        return lin_sum(
            self.x[(instr, block, t)] for t in self._grange(block)
        )

    def a_expr(self, instr, block):
        """The ``a[n,B]`` value: a Var, a constant, or the pinned shortcut."""
        info = self.info[instr]
        if info.pinned:
            # n sits in s(n) (if scheduled at all): complete before every
            # strict DAG-descendant of s(n) and before Ω; nowhere else.
            if block == self.OMEGA or self.region.cfg.reaches(info.source, block):
                return info.assign_rhs
            return 0
        if block != self.OMEGA and not self._a_can_be_one(instr, block):
            return 0
        key = (instr, block)
        if key not in self.a:
            self.a[key] = self.model.add_binary(f"a_{instr.uid}_{block}")
        return self.a[key]

    def _a_can_be_one(self, instr, block):
        """Can some copy of n precede ``block``? (Θ(n) ∩ strict ancestors)"""
        cfg = self.region.cfg
        return any(
            cfg.reaches(candidate, block) for candidate in self.info[instr].theta
        )

    def _grange(self, block):
        return range(1, self.lengths[block] + 1)

    # -- dependence edges ------------------------------------------------------------
    def dep_edges(self):
        for edge in self.region.ddg.edges:
            if edge not in self.dropped_edges:
                yield edge
        for edge in self.extra_edges:
            if edge not in self.dropped_edges:
                yield edge

    def _relax_expr(self, edge, block):
        entries = self.relax_terms.get(edge)
        if not entries:
            return 0
        terms = [
            term
            for term, blocks in entries
            if blocks is None or block in blocks
        ]
        if not terms:
            return 0
        return lin_sum(terms)

    # -- model generation ---------------------------------------------------------------
    def generate(self):
        """Emit all constraints and the objective. Idempotence-guarded."""
        if self._generated:
            raise SchedulingError("model already generated")
        self._generated = True
        self._create_x_variables()
        self._create_length_variables()
        for branch in self.collapsible_branches:
            # Sec. 5.4: if the solver empties a block, its unconditional
            # branch disappears (the predecessor falls through / retargets).
            source = self.info[branch].source
            self.set_assign_rhs(branch, 1 - self.blen[(source, 0)])
        for builder in self.deferred_builders:
            builder(self)
        self._flow_constraints()  # eq (2) + (3)
        self._global_precedence()  # eq (4)
        self._local_precedence()  # eq (5)
        self._resource_constraints()  # eq (6)
        self._length_linking()
        self._branch_constraints()
        self._forced_copy_constraints()
        self._bundling_constraints()
        self._objective()  # eq (7)
        return self.model

    # -- pieces ----------------------------------------------------------------------------
    def _create_x_variables(self):
        for instr, info in self.info.items():
            for block in sorted(info.theta):
                for t in self._grange(block):
                    self.x[(instr, block, t)] = self.model.add_binary(
                        f"x_{instr.uid}_{block}_{t}"
                    )

    def _create_length_variables(self):
        for block in self.region.fn.blocks:
            name = block.name
            for t in range(0, self.lengths[name] + 1):
                self.blen[(name, t)] = self.model.add_binary(f"len_{name}_{t}")
            self.model.add_constraint(
                lin_sum(
                    self.blen[(name, t)] for t in range(0, self.lengths[name] + 1)
                )
                == 1,
                name=f"onelen_{name}",
            )

    def _flow_constraints(self):
        """Equations (2) (inductive a/x coupling) and (3) (assignment)."""
        cfg = self.region.cfg
        for instr, info in self.info.items():
            if info.pinned:
                rhs = info.assign_rhs
                total = self.x_sum(instr, info.source)
                if isinstance(total, int) and total == 0:
                    raise SchedulingError(
                        f"pinned instruction {instr!r} has no x variables"
                    )
                self.model.add_constraint(
                    total == rhs, name=f"assign_{instr.uid}"
                )
                continue

            domain = sorted(info.related) + [self.OMEGA]
            source = info.source
            for block in domain:
                lhs = self.a_expr(instr, block)
                preds = (
                    cfg.dag_sinks
                    if block == self.OMEGA
                    else cfg.predecessors_in_dag(block)
                )
                for pred in preds:
                    if pred not in info.related and pred not in info.theta:
                        continue
                    # Only CFG edges that lie on some program path *through
                    # s(n)* constrain a[n,B]: the edge must leave a block at
                    # or below s(n), or enter a block at or above it.
                    on_path = (
                        pred == source
                        or cfg.reaches(source, pred)
                        or (
                            block != self.OMEGA
                            and (block == source or cfg.reaches(block, source))
                        )
                    )
                    if not on_path:
                        continue
                    rhs = self.a_expr(instr, pred) + self.x_sum(instr, pred)
                    if self._is_const_zero(lhs) and self._is_const_zero(rhs):
                        continue
                    relaxed = (instr, pred, block) in self.relaxed_flow
                    if relaxed:
                        constraint = self._as_expr(lhs) <= rhs
                    else:
                        constraint = self._as_expr(lhs) == rhs
                    self.model.add_constraint(
                        constraint, name=f"flow_{instr.uid}_{pred}_{block}"
                    )
            # eq (3): every path through s(n) executes n (or its group's rhs).
            omega = self.a_expr(instr, self.OMEGA)
            self.model.add_constraint(
                self._as_expr(omega) == info.assign_rhs,
                name=f"assign_{instr.uid}",
            )

    @staticmethod
    def _is_const_zero(value):
        if isinstance(value, (int, float)):
            return value == 0
        return False

    @staticmethod
    def _as_expr(value):
        from repro.ilp.expr import LinExpr, Var

        if isinstance(value, (LinExpr, Var)):
            return value if isinstance(value, LinExpr) else value.to_expr()
        return LinExpr(constant=float(value))

    def _global_precedence(self):
        """Equation (4): a[n,A] <= a[m,A] (+ relaxations) for deps (m, n)."""
        for edge in self.dep_edges():
            if edge.src not in self.info or edge.dst not in self.info:
                continue
            if edge in self.local_only_edges:
                continue
            info_m, info_n = self.info[edge.src], self.info[edge.dst]
            common = (info_m.related | {self.OMEGA}) & (
                info_n.related | {self.OMEGA}
            )
            common.discard(self.OMEGA)  # both sides are fixed there
            for block in sorted(common):
                relax = self._relax_expr(edge, block)
                lhs = self.a_expr(edge.dst, block)
                rhs = self.a_expr(edge.src, block)
                if self._is_const_zero(lhs):
                    continue
                if isinstance(rhs, (int, float)) and rhs >= 1:
                    continue  # trivially satisfied (binary lhs)
                self.model.add_constraint(
                    self._as_expr(lhs) <= self._as_expr(rhs) + relax,
                    name=f"gprec_{edge.src.uid}_{edge.dst.uid}_{block}",
                )

    def _local_precedence(self):
        """Equation (5): tight OASIC in-block precedence constraints."""
        for edge in self.dep_edges():
            if edge.src not in self.info or edge.dst not in self.info:
                continue
            info_m, info_n = self.info[edge.src], self.info[edge.dst]
            lat = edge.latency
            for block in sorted(info_m.theta & info_n.theta):
                relax = self._relax_expr(edge, block)
                length = self.lengths[block]
                for t in self._grange(block):
                    n_window = [
                        self.x[(edge.dst, block, tn)]
                        for tn in range(1, t + 1)
                    ]
                    m_lo = max(t - lat + 1, 1)
                    m_window = [
                        self.x[(edge.src, block, tm)]
                        for tm in range(m_lo, length + 1)
                    ]
                    if not n_window or not m_window:
                        continue
                    self.model.add_constraint(
                        lin_sum(n_window) + lin_sum(m_window)
                        <= self._as_expr(1) + relax,
                        name=f"lprec_{edge.src.uid}_{edge.dst.uid}_{block}_{t}",
                    )

    def _resource_constraints(self):
        """Equation (6) + unit-class limits for the Itanium 2 dispersal."""
        ports = self.machine.ports
        hosting = {}
        for instr, info in self.info.items():
            for block in info.theta:
                hosting.setdefault(block, []).append(instr)
        for block, instrs in hosting.items():
            for t in self._grange(block):
                entries = [(i, self.x[(i, block, t)]) for i in instrs]
                total = lin_sum(
                    (2.0 if i.unit is UnitKind.L else 1.0) * v for i, v in entries
                )
                self.model.add_constraint(
                    total <= ports.issue_width, name=f"width_{block}_{t}"
                )
                self._unit_cap(entries, (UnitKind.M,), ports.m_ports, block, t, "m")
                self._unit_cap(
                    entries, (UnitKind.I, UnitKind.L), ports.i_ports, block, t, "i"
                )
                self._unit_cap(entries, (UnitKind.F,), ports.f_ports, block, t, "f")
                self._unit_cap(entries, (UnitKind.B,), ports.b_ports, block, t, "b")

    def _unit_cap(self, entries, kinds, cap, block, t, tag):
        members = [v for i, v in entries if i.unit in kinds]
        if len(members) > cap:
            self.model.add_constraint(
                lin_sum(members) <= cap, name=f"unit{tag}_{block}_{t}"
            )

    def _length_linking(self):
        """x[n,A,t] == 1 forces length(A) >= t.

        Tight form: one row per x variable against the B-suffix sum.
        Compact form: one row per (block, cycle) bounding the cycle's
        total occupancy by width · suffix.
        """
        suffix = {}
        for block in self.region.fn.blocks:
            name = block.name
            length = self.lengths[name]
            running = None
            for t in range(length, 0, -1):
                term = self.blen[(name, t)]
                running = term.to_expr() if running is None else running + term
                suffix[(name, t)] = running
        if self.tight_lengths:
            for (instr, block, t), var in self.x.items():
                self.model.add_constraint(
                    var.to_expr() <= suffix[(block, t)],
                    name=f"len_link_{instr.uid}_{block}_{t}",
                )
            return
        by_cycle = {}
        for (instr, block, t), var in self.x.items():
            by_cycle.setdefault((block, t), []).append(var)
        width = self.machine.issue_width
        for (block, t), members in by_cycle.items():
            self.model.add_constraint(
                lin_sum(members) <= width * suffix[(block, t)],
                name=f"len_link_{block}_{t}",
            )

    def _branch_constraints(self):
        """Branches sit exactly in the last cycle of their block (Sec. 5.4)."""
        for instr, info in self.info.items():
            if not instr.is_branch:
                continue
            block = info.source
            for t in self._grange(block):
                key = (instr, block, t)
                if key not in self.x:
                    continue
                self.model.add_constraint(
                    self.x[key].to_expr() <= self.blen[(block, t)].to_expr(),
                    name=f"br_last_{instr.uid}_{t}",
                )

    def _forced_copy_constraints(self):
        """Extensions may force a copy in a block (cyclic motion latches)."""
        for instr, block, condition in self.forced_copies:
            total = self.x_sum(instr, block)
            self.model.add_constraint(
                self._as_expr(total) >= self._as_expr(condition),
                name=f"force_{instr.uid}_{block}",
            )

    def _bundling_constraints(self):
        """Forbid instruction sets no template sequence can encode (4.2)."""
        for idx, members in enumerate(self.bundling_cuts):
            self._emit_bundling_cut(idx, members)

    def append_bundling_cut(self, members):
        """Add one Sec. 4.2 cut to an already-generated model.

        The cut loop only discovers violated instruction sets after a
        solve, so re-solves append the few new rows to the built model
        (and its cached matrix form) instead of regenerating the whole
        formulation from scratch.
        """
        if not self._generated:
            raise SchedulingError(
                "append_bundling_cut requires a generated model"
            )
        idx = len(self.bundling_cuts)
        self.bundling_cuts.append(list(members))
        self._emit_bundling_cut(idx, members)

    def _emit_bundling_cut(self, idx, members):
        by_block = {}
        for instr, block in members:
            by_block.setdefault(block, []).append(instr)
        for block, instrs in by_block.items():
            if len(instrs) < 2:
                continue
            for t in self._grange(block):
                terms = [
                    self.x[(i, block, t)]
                    for i in instrs
                    if (i, block, t) in self.x
                ]
                if len(terms) == len(instrs):
                    self.model.add_constraint(
                        lin_sum(terms) <= len(terms) - 1,
                        name=f"bundle_cut{idx}_{block}_{t}",
                    )

    def _objective(self):
        """Equation (7): frequency-weighted sum of block lengths.

        Extensions may register additional cost terms (e.g. the Sec. 5.1
        speculation cost model) through ``objective_extras``.
        """
        terms = []
        for block in self.region.fn.blocks:
            for t in self._grange(block.name):
                terms.append(block.freq * t * self.blen[(block.name, t)])
        terms.extend(self.objective_extras)
        self.model.set_objective(lin_sum(terms))
