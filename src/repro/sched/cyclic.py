"""Cyclic code motion — paper Sec. 5.2.

An instruction is *cyclically moved* when it leaves the loop upward while
a copy stays on every backedge: iteration i then computes the value that
iteration i+1 needs, and the pre-loop copy feeds the first iteration.
Fig. 5's ``op rX = rZ`` is the canonical case: its operand is produced
late in the body (previous iteration's load), so plain hoisting is
impossible, but the latch copy overlaps the computation with the
previous iteration and shortens the header's critical path.

Implementation (paper restrictions: upward only, innermost loop only,
speculative and multiply-executable instructions only — ``add r1=r1,..``
style self-overlap is excluded by ``multiply_executable``):

For each eligible instruction n in loop L (header H, latches T) a binary
``cyc_n`` selects the transformation:

* ``a[n,H] >= cyc``   — copies above the loop cover every entering path;
* ``Σ_t x[n,latch,t] >= cyc`` for every latch — the recomputation;
* ``Σ_t x[n,B,t] <= 1 - cyc`` for in-loop non-latch blocks — no stray
  in-loop copies whose ordering nothing would protect;
* outgoing true dependences (n → u) to in-loop consumers are relaxed by
  ``cyc`` inside the loop: consumers read the previous iteration's value;
* each loop-carried operand writer w (the DDG's in-loop anti edge n → w)
  is handled by relaxing that anti edge inside the loop by ``cyc`` and
  adding a *local-only* edge (w → n) with w's latency, active only when
  ``cyc`` is set: the latch copy reads this iteration's w result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ddg import DepEdge, DepKind


@dataclass
class CyclicSite:
    """One cyclic-motion alternative wired into the model."""

    instr: object
    loop: object
    cyc: object = None  # ilp binary, set by attach_cyclic_motion
    carried_writers: list = field(default_factory=list)


def find_cyclic_candidates(region):
    """Eligible instructions with their innermost loops.

    Only *backedge-variant* instructions qualify: loop-invariant code is
    already hoisted by the base model, and variant code is exactly what
    the base model's Θ exclusion pinned inside the loop.
    """
    sites = []
    cfg = region.cfg
    for instr in region.instructions:
        if not region.speculative.get(instr, False):
            continue
        if not instr.multiply_executable:
            continue
        if instr.is_load or instr.is_check or instr in region.predicate_sources:
            continue
        source = region.source_block[instr]
        loop = cfg.innermost_loop(source)
        if loop is None or not loop.latches:
            continue
        if loop not in region.backedge_variant.get(instr, []):
            continue
        sites.append(CyclicSite(instr, loop))
    return sites


def attach_cyclic_motion(ilp, max_sites=16):
    """Wire cyclic-motion alternatives into the model (pre-generate)."""
    region = ilp.region
    sites = find_cyclic_candidates(region)[:max_sites]
    for site in sites:
        _wire_site(ilp, site)
    return sites


def candidate_extension(region, site):
    """Above-loop blocks a cyclic site may re-open for placement.

    The base model excluded them for this backedge-variant instruction;
    cyclic motion re-opens everything that reaches the source — but never
    above an *outer* loop the instruction is also variant for. Shared
    with :mod:`repro.sched.decompose`, whose cut-legality rule must see
    the same effective placement domain the wired model would get.
    """
    cfg = region.cfg
    instr = site.instr
    loop = site.loop
    source = region.source_block[instr]
    outer_variant = [
        other
        for other in region.backedge_variant.get(instr, [])
        if other is not loop
    ]
    return {
        block
        for block in cfg.block_names
        if block not in loop.blocks
        and block not in region.forbidden_blocks
        and cfg.reaches(block, source)
        and all(
            block in outer.blocks or not cfg.reaches(block, outer.header)
            for outer in outer_variant
        )
    }


def _wire_site(ilp, site):
    region = ilp.region
    instr = site.instr
    loop = site.loop
    cyc = ilp.model.add_binary(f"cyc_{instr.uid}")
    site.cyc = cyc
    in_loop = frozenset(loop.blocks)
    cfg = region.cfg

    ilp.info[instr].theta |= candidate_extension(region, site)

    # Paper Sec. 5.2: the instruction is cyclically moved *iff* it is
    # complete before the header — copies above the loop on every
    # entering path, and (below) a recomputation in every latch.
    header_a = ilp.a_expr(instr, loop.header)
    ilp.model.add_constraint(
        ilp._as_expr(header_a) >= cyc.to_expr(), name=f"cyc_head_{instr.uid}"
    )
    ilp.model.add_constraint(
        ilp._as_expr(header_a) <= cyc.to_expr(), name=f"cyc_head2_{instr.uid}"
    )
    # Cyclic motion places the instruction twice on in-loop paths
    # (pre-loop copy + latch copy), so the flow equalities (2) must relax
    # to "<=" inside the loop and on the latch→Ω edges (the weakening of
    # Theorem 2's no-duplicate hypothesis, as for partial-ready motion).
    for block in loop.blocks:
        for pred in cfg.predecessors_in_dag(block):
            ilp.relaxed_flow.add((instr, pred, block))
        for succ in cfg.successors_in_dag(block):
            ilp.relaxed_flow.add((instr, block, succ))
        ilp.relaxed_flow.add((instr, block, ilp.OMEGA))
    # A copy in every latch; no other in-loop copies while cyclic.
    theta = ilp.info[instr].theta
    for latch in loop.latches:
        if latch in theta:
            ilp.forced_copies.append((instr, latch, cyc))
        else:
            # Latch unreachable for placement: the site cannot be used.
            ilp.model.add_constraint(cyc.to_expr() <= 0)
            return
    def forbid_stray_copies(ilp_):
        for block in loop.blocks:
            if block in loop.latches or block not in theta:
                continue
            total = ilp_.x_sum(instr, block)
            ilp_.model.add_constraint(
                ilp_._as_expr(total) <= 1 - cyc,
                name=f"cyc_off_{instr.uid}_{block}",
            )
        # Relaxed flow loses the implicit one-copy-per-block bound.
        for block in ilp_.info[instr].theta:
            total = ilp_.x_sum(instr, block)
            ilp_.model.add_constraint(
                ilp_._as_expr(total) <= 1, name=f"cyc_once_{instr.uid}_{block}"
            )

    ilp.defer(forbid_stray_copies)

    # In-loop consumers read the previous iteration's value. Speculation
    # groups attach *extra* edges (e.g. shladd → ld.s) before cyclic
    # motion runs; they need the same treatment or the model stays
    # over-strict and the verifier mis-attributes the ordering.
    outgoing = list(region.ddg.succs(instr)) + [
        e for e in ilp.extra_edges if e.src is instr
    ]
    for edge in outgoing:
        if edge.kind is not DepKind.TRUE:
            continue
        consumer_block = region.source_block.get(edge.dst)
        if consumer_block is None:
            info = ilp.info.get(edge.dst)
            consumer_block = info.source if info is not None else None
        if consumer_block in in_loop:
            ilp.relax_edge(edge, cyc, blocks=in_loop)
            ilp.verify_exempt.append((edge, cyc))

    # Out-of-loop dependence successors must stay *below* the loop while
    # the motion is active. The pre-loop copy satisfies the acyclic
    # precedence (4), so without this a consumer of n could ride that
    # copy above the loop and read iteration 0's value instead of the
    # last latch copy's (a real miscompile the differential suite
    # caught: ``or r44 = r42, ...`` hoisted past the loop recomputing
    # r42). Anti/output successors have the mirrored hazard — hoisted
    # above the loop, the latch copies would clobber/read them out of
    # order — so every out-of-loop successor is confined.
    above = frozenset(
        b
        for b in cfg.block_names
        if b not in in_loop and cfg.reaches(b, loop.header)
    )
    confined = set()
    for edge in outgoing:
        succ = edge.dst
        succ_block = region.source_block.get(succ)
        if succ_block is None or succ_block in in_loop:
            continue
        if succ is instr or succ in confined or succ not in ilp.info:
            continue
        confined.add(succ)

        def confine_succ(ilp_, succ=succ):
            for block in ilp_.info[succ].theta:
                if block not in above and block not in in_loop:
                    continue
                total = ilp_.x_sum(succ, block)
                ilp_.model.add_constraint(
                    ilp_._as_expr(total) <= 1 - cyc,
                    name=f"cyc_below_{instr.uid}_{succ.uid}_{block}",
                )

        ilp.defer(confine_succ)

    # Loop-carried operand writers: the anti edge n→w flips into a
    # local-only true-like edge w→n while cyclic motion is active.
    for edge in outgoing:
        if edge.kind is not DepKind.ANTI:
            continue
        writer = edge.dst
        writer_block = region.source_block.get(writer)
        if writer_block not in in_loop:
            continue
        if edge.reg not in [s for s in instr.regs_read()]:
            continue
        ilp.relax_edge(edge, cyc, blocks=in_loop)
        ilp.verify_exempt.append((edge, cyc))
        flipped = DepEdge(writer, instr, DepKind.TRUE, max(writer.latency, 0))
        ilp.add_edge(flipped)
        ilp.local_only_edges.add(flipped)
        # Active only while cyclic motion is selected, and only inside the
        # loop — outside it the edge does not exist at all.
        ilp.relax_edge(flipped, 1 - cyc, blocks=in_loop)
        outside = frozenset(
            b for b in region.cfg.block_names if b not in in_loop
        )
        ilp.relax_edge(flipped, 1, blocks=outside)
        ilp.verify_exempt.append((flipped, 1 - cyc))
        ilp.verify_scopes[flipped] = in_loop
        # The flipped edge is local-only, so nothing global would stop the
        # writer from leaving the loop while the latch copy still reads it:
        # confine the writer to the loop whenever cyclic motion is active.
        if writer in ilp.info:

            def confine_writer(ilp_, writer=writer):
                for block in ilp_.info[writer].theta:
                    if block in in_loop:
                        continue
                    total = ilp_.x_sum(writer, block)
                    ilp_.model.add_constraint(
                        ilp_._as_expr(total) <= 1 - cyc,
                        name=f"cyc_confine_{instr.uid}_{writer.uid}_{block}",
                    )

            ilp.defer(confine_writer)
        site.carried_writers.append(writer)
