"""The Schedule value type: placed instruction copies per block and cycle."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Placement:
    """One scheduled copy: where an instruction instance sits."""

    instr: object  # Instruction (possibly a compensation copy)
    block: str
    cycle: int  # 1-based within the block

    def __repr__(self):
        return f"Placement({self.instr!r} @ {self.block}[{self.cycle}])"


class Schedule:
    """A global schedule: per block, cycles 1..length with instruction groups.

    The same *original* instruction may appear in several blocks
    (compensation copies); each appearance is a distinct Instruction object
    whose ``origin`` chain leads back to the original. Intra-cycle list
    order is the intra-group (slot) order the bundler must respect.
    """

    def __init__(self, block_order):
        self.block_order = list(block_order)
        self._cycles = {name: {} for name in self.block_order}
        self._lengths = {name: 0 for name in self.block_order}
        # (block, cycle) -> list of (i, j) index pairs: group[i] must stay
        # before group[j] in slot order (zero-latency intra-group deps).
        # The bundler may permute a group within these constraints; a group
        # without an entry is treated as fully ordered (conservative).
        self.order_pairs = {}

    # -- construction ----------------------------------------------------------
    def place(self, instr, block, cycle):
        if block not in self._cycles:
            raise KeyError(f"unknown block {block!r}")
        if cycle < 1:
            raise ValueError(f"cycle must be >= 1, got {cycle}")
        self._cycles[block].setdefault(cycle, []).append(instr)
        self._lengths[block] = max(self._lengths[block], cycle)
        return Placement(instr, block, cycle)

    def set_block_length(self, block, length):
        """Pin a block's length (>= its last occupied cycle)."""
        occupied = max(self._cycles[block], default=0)
        if length < occupied:
            raise ValueError(
                f"length {length} below last occupied cycle {occupied} in {block}"
            )
        self._lengths[block] = length

    def sort_groups(self, key):
        """Re-order instructions within every cycle by ``key`` (slot order)."""
        for cycles in self._cycles.values():
            for group in cycles.values():
                group.sort(key=key)

    # -- queries -----------------------------------------------------------------
    def cycles_of(self, block):
        return self._cycles[block]

    def group(self, block, cycle):
        return self._cycles[block].get(cycle, [])

    def block_length(self, block):
        return self._lengths[block]

    def placements(self):
        for block in self.block_order:
            for cycle in sorted(self._cycles[block]):
                for instr in self._cycles[block][cycle]:
                    yield Placement(instr, block, cycle)

    def instructions_in(self, block):
        for cycle in sorted(self._cycles[block]):
            yield from self._cycles[block][cycle]

    def copies_of(self, original):
        """All placements whose origin chain leads to ``original``."""
        return [
            p for p in self.placements() if p.instr.root_origin is original.root_origin
        ]

    # -- metrics --------------------------------------------------------------------
    @property
    def total_length(self):
        return sum(self._lengths.values())

    def weighted_length(self, fn):
        return sum(
            fn.block(name).freq * self._lengths[name] for name in self.block_order
        )

    @property
    def instruction_count(self):
        """Scheduled instructions, nops excluded."""
        return sum(
            1 for p in self.placements() if not p.instr.is_nop
        )

    def collapsed_blocks(self):
        return [name for name in self.block_order if self._lengths[name] == 0]

    def __repr__(self):
        return (
            f"Schedule(blocks={len(self.block_order)}, "
            f"total_length={self.total_length}, "
            f"instructions={self.instruction_count})"
        )
