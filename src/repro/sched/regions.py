"""Scheduling regions: destination-block sets Θ(n) and Θ_spec(n).

Implements Sec. 4 of the paper:

* ``theta_spec(n)`` — every DAG ancestor and descendant of the source
  block (plus the source block itself): the *speculative* destination
  candidates.
* ``theta(n)`` — the actual candidates. For non-speculative instructions,
  predecessors not postdominated by s(n) and successors not dominated by
  s(n) are removed; branches, calls and checks are pinned to s(n).
* the predication extension: a non-speculative instruction may still move
  above a branch when guarded by the qualifying predicate of the edge it
  would otherwise speculate across (the destination→predicate map is
  exposed as ``guard_for``); the guarding compare then must not be
  speculated itself.

An instruction is *speculative* (safe to execute on paths where it did
not originally occur) when it cannot trap, is not a store/branch/call,
and its destination registers are "exclusive": written by no other
instruction and not live into/out of the routine. Everything else must
not execute unnecessarily (paper Sec. 5.1 reasons: exceptions and live
value clobbering / UD chains).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError


@dataclass
class SchedulingRegion:
    """All placement-related facts for one routine."""

    fn: object
    cfg: object
    ddg: object
    instructions: list = field(default_factory=list)
    source_block: dict = field(default_factory=dict)  # Instruction -> block name
    theta: dict = field(default_factory=dict)  # Instruction -> set[str]
    theta_spec: dict = field(default_factory=dict)
    guard_for: dict = field(default_factory=dict)  # (Instruction, block) -> Register
    guard_compare: dict = field(default_factory=dict)  # (Instruction, block) -> cmp
    speculative: dict = field(default_factory=dict)  # Instruction -> bool
    pinned: set = field(default_factory=set)  # instructions fixed to s(n)
    predicate_sources: set = field(default_factory=set)  # compares used as guards
    freq_cap: float = 5.0  # the paper's factor k for speculative loads
    backedge_variant: dict = field(default_factory=dict)  # instr -> [Loop]
    # Blocks visible to the analyses (paths, a-variables, liveness) but
    # closed to *placement*: partition exit stubs in the decomposed
    # pipeline (repro.sched.decompose). Every Θ-extension (speculation,
    # cyclic motion, predication) must respect this set.
    forbidden_blocks: frozenset = frozenset()
    # Lazy Θ⁻¹ index; invalidated whenever theta is mutated post-build.
    _hosting_index: dict | None = field(default=None, repr=False)

    OMEGA = "__omega__"

    def blocks_hosting(self, block_name):
        """Θ⁻¹(A): instructions that may be placed in ``block_name``.

        Served from a precomputed block→instructions index (built lazily
        on first call, in ``instructions`` order so callers see the same
        deterministic ordering as the old linear scan). The formulation
        calls this once per block while emitting resource rows, which
        made the O(instructions) scan quadratic on large routines.
        """
        index = self._hosting_index
        if index is None:
            index = {}
            for instr in self.instructions:
                for name in self.theta[instr]:
                    index.setdefault(name, []).append(instr)
            self._hosting_index = index
        return list(index.get(block_name, ()))

    def invalidate_hosting_index(self):
        """Drop the Θ⁻¹ index after a post-build mutation of ``theta``."""
        self._hosting_index = None

    def dag_preds(self, block):
        if block == self.OMEGA:
            return list(self.cfg.dag_sinks)
        return self.cfg.predecessors_in_dag(block)

    def a_blocks(self, instr):
        """Blocks for which an ``a`` variable exists: Θ_spec(n) ∪ {Ω}."""
        return list(self.theta_spec[instr]) + [self.OMEGA]


def build_region(
    fn,
    cfg,
    ddg,
    max_hops=None,
    freq_cap=5.0,
    allow_predication=True,
):
    """Compute Θ/Θ_spec for every instruction.

    ``max_hops`` optionally bounds the code-motion distance (in DAG edges)
    to keep the ILP compact — one of the paper's "fully automated
    optimizations to make the search space compact". ``freq_cap`` is the
    paper's factor k: speculative placement into blocks whose frequency
    exceeds k times the source block's is excluded (k = 5 in the
    experiments).
    """
    region = SchedulingRegion(fn=fn, cfg=cfg, ddg=ddg)
    region.freq_cap = freq_cap if freq_cap is not None else float("inf")
    exclusive = _exclusive_defs(fn)

    for block in fn.blocks:
        for instr in block.instructions:
            if instr.is_nop:
                continue
            region.instructions.append(instr)
            region.source_block[instr] = block.name

    for instr in region.instructions:
        source = region.source_block[instr]
        speculative = _is_speculative(instr, exclusive)
        region.speculative[instr] = speculative

        if instr.is_branch or instr.is_call or instr.is_check:
            # Pinned to the source block — but the a-domain must still span
            # the related set so precedence constraints (4) reach the blocks
            # other instructions could move to.
            region.pinned.add(instr)
            region.theta_spec[instr] = (
                {b for b in cfg.block_names if cfg.reaches(b, source)}
                | {b for b in cfg.block_names if cfg.reaches(source, b)}
                | {source}
            )
            region.theta[instr] = {source}
            continue

        full_ancestors = {b for b in cfg.block_names if cfg.reaches(b, source)}
        full_descendants = {b for b in cfg.block_names if cfg.reaches(source, b)}
        # Θ_spec — the a-variable domain — always covers the full related
        # set: paths through s(n) must be tracked even where placement is
        # forbidden (pinned/capped instructions included).
        region.theta_spec[instr] = full_ancestors | full_descendants | {source}

        ancestors = _bounded(full_ancestors, source, cfg, max_hops)
        descendants = _bounded(full_descendants, source, cfg, max_hops)
        placement = ancestors | descendants | {source}

        if speculative:
            theta = _apply_freq_cap(placement, source, fn, freq_cap, instr)
        else:
            theta = {source}
            for block in placement:
                if block == source:
                    continue
                if block in ancestors and cfg.postdominates(source, block):
                    theta.add(block)
                elif block in descendants and cfg.dominates(source, block):
                    theta.add(block)
        # Backedge-variant instructions (an operand is redefined inside a
        # containing loop, reaching only through the back edge) are
        # *confined* to that loop in the base model: hoisting above it
        # would miss the per-iteration recomputation the acyclic view
        # cannot see, and sinking below it would compute with the final
        # operand value instead of the last iteration's pre-update value
        # (the induction load ``ld [rIV]`` is the canonical victim in both
        # directions). The cyclic-code-motion extension (Sec. 5.2) reopens
        # above-loop blocks under its own conditions (copy above the loop
        # AND in every latch).
        for loop in _variant_loops(region, instr, source):
            region.backedge_variant.setdefault(instr, []).append(loop)
            theta = {b for b in theta if b in loop.blocks}
        # Motion INTO a foreign loop (paper Sec. 5.2): only for speculative,
        # multiply-executable non-loads — the instruction then re-executes
        # every iteration — and only when no loop member rewrites one of
        # its operands (re-execution must see unchanged values).
        theta = _filter_into_loop_motion(region, instr, source, theta)
        region.theta[instr] = theta

    if allow_predication:
        _extend_with_predication(region)
    return region


def _bounded(blocks, source, cfg, max_hops):
    if max_hops is None:
        return blocks
    kept = set()
    for block in blocks:
        distance = abs(cfg.topo_index(block) - cfg.topo_index(source))
        if distance <= max_hops:
            kept.add(block)
    return kept


def _apply_freq_cap(blocks, source, fn, freq_cap, instr):
    """Paper Sec. 5.1: forbid likely-useless speculation of loads."""
    if freq_cap is None or not instr.is_load:
        return blocks
    limit = freq_cap * fn.block(source).freq
    return {b for b in blocks if b == source or fn.block(b).freq <= limit}


def _filter_into_loop_motion(region, instr, source, theta):
    """Drop foreign-loop blocks from Θ unless Sec. 5.2's conditions hold."""
    cfg = region.cfg
    foreign = {}
    for block in theta:
        loop = cfg.innermost_loop(block)
        while loop is not None:
            if source not in loop.blocks:
                foreign.setdefault(id(loop), loop)
            loop = loop.parent
    if not foreign:
        return theta
    eligible = (
        region.speculative.get(instr, False)
        and instr.multiply_executable
        and not instr.is_load
    )
    reads = set(instr.regs_read())
    for loop in foreign.values():
        allowed = eligible and not _loop_writes(region, loop, reads)
        if not allowed:
            theta = {
                b
                for b in theta
                if b == source or b not in loop.blocks
            }
    return theta


def _loop_writes(region, loop, registers):
    """Does any instruction of ``loop`` write one of ``registers``?"""
    if not registers:
        return False
    for name in loop.blocks:
        for member in region.fn.block(name).instructions:
            if registers & set(member.regs_written()):
                return True
    return False


def _variant_loops(region, instr, source):
    """Containing loops whose back edge redefines one of n's operands.

    Detected through the DDG's anti edges (n reads r → d writes r later on
    a path) with the writer inside the loop, plus the self-overlap case
    (``add r1 = r1, ...``) which is variant in every containing loop.
    """
    cfg = region.cfg
    loops = []
    loop = cfg.innermost_loop(source)
    containing = []
    while loop is not None:
        containing.append(loop)
        loop = loop.parent
    if not containing:
        return loops

    reads = set(instr.regs_read())
    self_variant = bool(reads & set(instr.regs_written()))
    in_loop_writers = set()
    for edge in region.ddg.succs(instr):
        if edge.kind.name != "ANTI":
            continue
        writer_block = region.source_block.get(edge.dst)
        if writer_block is not None and edge.reg in reads:
            in_loop_writers.add(writer_block)

    for loop in containing:
        if self_variant or any(b in loop.blocks for b in in_loop_writers):
            loops.append(loop)
    return loops


def _exclusive_defs(fn):
    """Registers written exactly once and not live across the boundary."""
    counts = {}
    for instr in fn.all_instructions():
        for dst in instr.regs_written():
            counts[dst] = counts.get(dst, 0) + 1
    return {
        regname
        for regname, count in counts.items()
        if count == 1 and regname not in fn.live_in and regname not in fn.live_out
    }


def _is_speculative(instr, exclusive):
    if instr.may_trap or instr.is_store or instr.is_branch or instr.is_call:
        return False
    if instr.is_check:
        return False
    if instr.pred is not None:
        # A predicated instruction is already guarded; moving it anywhere its
        # predicate is available keeps semantics, but we keep the paper's
        # conservative line: treat it as non-speculative placement-wise.
        return False
    written = instr.regs_written()
    if not written:
        return False
    return all(dst in exclusive for dst in written)


def _extend_with_predication(region):
    """Allow guarded upward motion across edges leaving s(n)'s postdom set.

    For control-flow edges (A, B) where B is postdominated by s(n) and A is
    not, the qualifying predicate of that edge (from A's conditional branch)
    guards the instruction: it may then be placed in A and A's DAG
    ancestors. A new dependence on the guarding compare is recorded via
    ``predicate_sources`` (the formulation adds the precedence edges), and
    that compare is excluded from being speculated itself.
    """
    fn, cfg = region.fn, region.cfg
    edge_guards = _edge_qualifying_predicates(fn)

    for instr in list(region.instructions):
        if region.speculative[instr] or instr in region.pinned:
            continue
        if instr.is_store or instr.may_trap:
            continue  # guarded stores work on IA-64 but stay out of scope
        source = region.source_block[instr]
        for (a_block, b_block), (guard, compare) in edge_guards.items():
            if not cfg.postdominates(source, b_block):
                continue
            if cfg.postdominates(source, a_block):
                continue
            if instr.pred is not None and instr.pred != guard:
                continue  # cannot stack a second qualifying predicate
            if compare is instr:
                continue
            targets = {a_block} | {
                blk for blk in cfg.block_names if cfg.reaches(blk, a_block)
            }
            targets &= region.theta_spec[instr]
            for target in targets:
                if target in region.theta[instr]:
                    continue
                if target in region.forbidden_blocks:
                    continue
                region.theta[instr].add(target)
                region.guard_for[(instr, target)] = guard
                region.guard_compare[(instr, target)] = compare
                region.predicate_sources.add(compare)
    region.invalidate_hosting_index()


def _edge_qualifying_predicates(fn):
    """Map CFG edge -> (guard predicate, defining compare), where known.

    The taken edge of ``(pX) br.cond T`` is guarded by pX; the fall-through
    edge by pX's *complement*, available when the compare writes a predicate
    pair (``cmp.eq p6, p7 = ...``).
    """
    guards = {}
    compare_of = {}
    complement_of = {}
    for block in fn.blocks:
        for instr in block.instructions:
            if instr.op.is_compare and len(instr.dests) == 2:
                p_true, p_false = instr.dests
                compare_of[p_true] = instr
                compare_of[p_false] = instr
                complement_of[p_true] = p_false
                complement_of[p_false] = p_true

    for block in fn.blocks:
        term_edges = fn.out_edges(block.name)
        branches = block.branches
        cond = [b for b in branches if b.pred is not None and b.target]
        if len(cond) != 1:
            continue
        branch = cond[0]
        guard = branch.pred
        compare = compare_of.get(guard)
        if compare is None:
            continue
        for edge in term_edges:
            if edge.dst == branch.target:
                guards[(block.name, edge.dst)] = (guard, compare)
            elif guard in complement_of:
                guards[(block.name, edge.dst)] = (
                    complement_of[guard],
                    compare,
                )
    return guards
