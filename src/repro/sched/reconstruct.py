"""Building the optimal schedule from an ILP solution.

"After CPLEX has finished, the optimal schedule is constructed from the
delivered solution" (paper Sec. 6.1). Placement copies are materialized
for every ``x`` variable at 1; copies outside the source block become
compensation code, copies in predication-extended destinations receive
their qualifying predicate, and selected speculation groups replace their
original loads (with recovery stubs recorded for emission).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.sched.schedule import Schedule


@dataclass
class RecoveryStub:
    """Recovery code attached to a used speculation check (Sec. 5.1)."""

    check: object
    load: object
    reexecuted_uses: list = field(default_factory=list)

    @property
    def label(self):
        return self.check.target


@dataclass
class ReconstructionResult:
    schedule: Schedule
    active_instructions: list  # instructions required to execute
    selected_groups: list
    recovery_stubs: list
    source_block: dict  # active instruction -> source block name
    guards: dict  # (instruction, block) -> qualifying predicate


def reconstruct_schedule(ilp, solution, spec_groups=()):
    """Translate a feasible solution into a :class:`Schedule`.

    Exclusive uses of selected mov-carrying speculation groups are placed
    as *rewritten copies* reading the temporary register; the canonical
    function is never mutated (it stays the semantic reference for the
    differential tests, and phase 1/phase 2 may select different groups).
    """
    region = ilp.region
    schedule = Schedule([b.name for b in region.fn.blocks])

    selected, inactive = [], set()
    for group in spec_groups:
        if solution.value_of(group.usespec) >= 1:
            selected.append(group)
            inactive.add(group.original)
        else:
            inactive.update(
                m for m in (group.spec_load, group.check, group.mov) if m is not None
            )

    # Collapsed blocks drop their unconditional branch (Sec. 5.4): the
    # branch is then unscheduled by design and must not count as required.
    for branch in ilp.collapsible_branches:
        block = ilp.info[branch].source
        if solution.value_of(ilp.blen[(block, 0)]) >= 1:
            inactive.add(branch)

    active = [i for i in ilp.info if i not in inactive]
    source_block = {i: ilp.info[i].source for i in active}

    rewrites = _exclusive_use_rewrites(selected)

    placed_in_source = set()
    for (instr, block, t), var in sorted(
        ilp.x.items(), key=lambda kv: (kv[0][0].uid, kv[0][1], kv[0][2])
    ):
        if instr in inactive or solution.value_of(var) < 1:
            continue
        guard = region.guard_for.get((instr, block))
        if instr in rewrites:
            placed = _rewrite_use_copy(instr, rewrites[instr])
        elif block == ilp.info[instr].source and instr not in placed_in_source:
            placed_in_source.add(instr)
            placed = instr
        else:
            placed = instr.copy()
        if guard is not None:
            placed.pred = guard
        schedule.place(placed, block, t)

    for fn_block in region.fn.blocks:
        name = fn_block.name
        length = None
        for t in range(0, ilp.lengths[name] + 1):
            if solution.value_of(ilp.blen[(name, t)]) >= 1:
                length = t
                break
        if length is None:
            raise SchedulingError(f"no block-length indicator set for {name}")
        schedule.set_block_length(name, length)

    _order_groups(ilp, schedule, solution)

    stubs = [
        RecoveryStub(
            check=group.check,
            load=group.original,
            reexecuted_uses=list(group.exclusive_uses),
        )
        for group in selected
    ]
    guards = {
        key: guard
        for key, guard in region.guard_for.items()
        if key[0] in source_block
    }
    return ReconstructionResult(
        schedule=schedule,
        active_instructions=active,
        selected_groups=selected,
        recovery_stubs=stubs,
        source_block=source_block,
        guards=guards,
    )


def _exclusive_use_rewrites(selected):
    """use instruction -> (old register, temp register) for selected
    mov-carrying groups (the uses read the speculated temp directly)."""
    rewrites = {}
    for group in selected:
        if group.mov is None:
            continue
        old = group.original.dests[0]
        new = group.spec_load.dests[0]
        for use in group.exclusive_uses:
            rewrites[use] = (old, new)
    return rewrites


def _rewrite_use_copy(use, mapping):
    """A copy of ``use`` reading the temp instead of the original register."""
    from repro.ir.instruction import MemRef

    old, new = mapping
    copy = use.copy()
    copy.srcs = [new if s == old else s for s in copy.srcs]
    if copy.mem is not None and copy.mem.base == old:
        copy.mem = MemRef(new, copy.mem.offset, copy.mem.alias_class, copy.mem.size)
    if copy.pred == old:
        copy.pred = new
    return copy


def _order_groups(ilp, schedule, solution):
    """Topologically order each cycle's group by zero-latency dependences.

    The slot order within an instruction group must respect intra-group
    register-anti and memory dependences (paper Sec. 1); the bundler then
    preserves this order when assigning template slots. Edges whose
    relaxation is *active* in the solution (switched-off speculation
    alternatives, cyclic-motion anti edges) impose no order — including
    them could even fabricate cycles against their flipped counterparts.
    """
    from repro.ilp.expr import LinExpr, Var

    def relax_active(edge, block):
        entries = ilp.relax_terms.get(edge)
        if not entries:
            return False
        total = 0.0
        for term, blocks in entries:
            if blocks is not None and block not in blocks:
                continue
            if isinstance(term, Var):
                total += solution.value_of(term)
            elif isinstance(term, LinExpr):
                total += term.value(solution.values)
            else:
                total += float(term)
        return total >= 0.5

    all_edges = list(ilp.dep_edges())

    def edges_by_pair_for(block):
        mapping = {}
        for edge in all_edges:
            if relax_active(edge, block):
                continue
            mapping.setdefault(edge.src, set()).add(edge.dst)
        return mapping

    def key_node(placed):
        return placed if placed in ilp.info else placed.origin

    for block in schedule.block_order:
        edges_by_pair = edges_by_pair_for(block)
        for cycle, group in schedule.cycles_of(block).items():
            if len(group) < 2:
                continue
            nodes = {key_node(p): p for p in group}
            pred_count = {n: 0 for n in nodes}
            for node in nodes:
                for succ in edges_by_pair.get(node, ()):
                    if succ in pred_count and succ is not node:
                        pred_count[succ] += 1
            ready = [n for n in nodes if pred_count[n] == 0]
            order = []
            while ready:
                node = ready.pop(0)
                order.append(nodes[node])
                for succ in edges_by_pair.get(node, ()):
                    if succ in pred_count and succ is not node:
                        pred_count[succ] -= 1
                        if pred_count[succ] == 0:
                            ready.append(succ)
            if len(order) != len(nodes):
                raise SchedulingError(
                    f"cyclic intra-group dependences in {block}[{cycle}]"
                )
            branches = [p for p in order if p.is_branch]
            rest = [p for p in order if not p.is_branch]
            group[:] = rest + branches
            # Record the *required* order (zero-latency dependences only) so
            # the bundler may permute the group within it.
            index_of = {p: i for i, p in enumerate(group)}
            pairs = []
            for node, placed in nodes.items():
                for succ in edges_by_pair.get(node, ()):
                    if succ in nodes and succ is not node:
                        pairs.append((index_of[placed], index_of[nodes[succ]]))
            schedule.order_pairs[(block, cycle)] = pairs
