"""Region decomposition: independently-solved sub-ILPs per CFG partition.

BENCH_solver.json's scale ceiling is *model size*, not solver speed: the
phase-1 row count grows superlinearly with routine size, so one large
routine dominates sweep wall time. This module breaks a big routine into
contiguous topological intervals at *cut blocks*, solves one complete
phase-1/phase-2 pipeline per partition (fanned out over threads — the
LP/MIP kernels release the GIL), and stitches the per-partition
schedules into one whole-function :class:`~repro.sched.schedule.Schedule`
that the existing verifier checks against the whole-function region.

Cut legality
============

The decomposed model is a *restriction* of the whole-function model:
every placement it can choose is one the whole model could also choose,
but cross-cut code motion is forfeited. A topological boundary (between
topo positions ``k-1`` and ``k``; ``C = topo_order[k]`` is the cut
block) is legal when:

* **structure** — every forward edge crossing the boundary lands exactly
  on ``C`` (so the suffix is entered through the cut alone and the
  partition's sub-CFG keeps the whole function's dominance shape), and
  no back edge crosses (loops stay whole inside one partition);
* **profitable-motion loss** — no instruction's *effective* placement
  domain (``Θ(n)`` plus the speculative domain of candidate loads plus
  the cyclic-motion extension) contains a cross-boundary block with
  strictly lower frequency than its source block. When
  ``features.max_hops`` is set, the test considers domain blocks within
  that topological distance of the source — the same bound Θ itself
  uses — so an ``ld.s`` placement many blocks away (which
  ``_speculative_theta`` admits unbounded) is sacrificed rather than
  vetoing the cut. Losing only equal-or-higher-frequency or
  beyond-the-bound destinations keeps the decomposed optimum's quality
  no worse in practice; the ``decompose`` benchmark section gates this
  empirically (bundle counts no worse, wall time better).

This deliberately deviates from the literal "no Θ(n) spans the cut"
rule: on a connected CFG with speculation enabled *every* boundary is
spanned by some Θ, so the literal rule admits no cuts at all (see
``docs/decomposition.md``).

Boundary constraints are realized by :mod:`repro.ilp.boundary`: pinned
cross-cut live ranges (whole-function liveness restricted to the cut)
and an exit stub absorbing crossing edges so sub-CFG dominance *and*
postdominance agree exactly with the whole function restricted to the
partition. Stubs are ``forbidden_blocks`` — analyses see them, placement
never does.

Failure discipline: any partition failure — degrade, infeasibility,
verifier-relevant inconsistency, an injected ``decompose.stitch`` fault —
abandons decomposition and falls back to the whole-function pipeline.
The caller (:class:`repro.sched.scheduler.IlpScheduler`) treats ``None``
as "solve whole".

Per-partition caching: when the scheduler carries a ``partition_store``
(:class:`repro.serve.store.ScheduleStore`), each partition gets its own
fingerprint (:func:`repro.serve.fingerprint.partition_fingerprint`) and
its achieved block lengths are published under it. A later solve of the
same partition — e.g. after editing one block of a large routine, which
leaves the other partitions' fingerprints untouched — seeds its cycle
ranges from the stored lengths, exactly like a serve family near miss.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.bundle import bundle_schedule
from repro.ilp.boundary import (
    build_partition_function,
    partition_specs,
    stub_frequency,
)
from repro.ilp.status import SolverStats, SolveStatus
from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.obs import core as obs
from repro.sched.cyclic import candidate_extension, find_cyclic_candidates
from repro.sched.list_scheduler import ListScheduler
from repro.sched.reconstruct import ReconstructionResult
from repro.sched.regions import build_region
from repro.sched.schedule import Schedule
from repro.sched.speculation import (
    _speculative_theta,
    find_speculation_candidates,
    region_freq_cap,
)
from repro.tools import faults


class StitchedSolution:
    """The union of the per-partition solutions, shaped like a Solution.

    ``values`` merges the partitions' variable assignments (ILP ``Var``
    objects hash by identity, so distinct models never collide), the
    status is the worst contributing status, the objective and search
    stats are summed (``gap`` is the worst partition gap). Plain data —
    pickles across the serve store like a single-model solution.
    """

    def __init__(self, parts):
        self.parts = list(parts)
        self.values = {}
        stats = SolverStats()
        status = SolveStatus.OPTIMAL
        objective = 0.0
        has_objective = False
        gaps = []
        for sol in self.parts:
            self.values.update(sol.values)
            if sol.status is not SolveStatus.OPTIMAL:
                status = SolveStatus.FEASIBLE
            if sol.objective is not None:
                objective += sol.objective
                has_objective = True
            stats.nodes += sol.stats.nodes
            stats.lp_solves += sol.stats.lp_solves
            stats.simplex_iterations += sol.stats.simplex_iterations
            stats.time_seconds += sol.stats.time_seconds
            stats.unknown_lps += sol.stats.unknown_lps
            stats.warm_starts += sol.stats.warm_starts
            stats.backend = sol.stats.backend or stats.backend
            if sol.stats.gap is not None:
                gaps.append(sol.stats.gap)
        stats.gap = max(gaps) if gaps else None
        self.status = status
        self.objective = objective if has_objective else None
        self.stats = stats

    def value_of(self, var):
        raw = self.values[var]
        if var.is_integer:
            return int(round(raw))
        return raw

    def __bool__(self):
        return self.status.has_solution


@dataclass
class StitchedPieces:
    """A stitched result, shaped like the scheduler's ``_PipelineResult``.

    ``stitched`` tells ``_optimize_impl`` to take verification inputs
    from here instead of from a (single) model: ``verify_edges`` carries
    each partition's verifiable edges plus every cross-partition DDG
    edge (satisfied by block order — the machine flushes latencies at
    block boundaries, and a producer's partition precedes its cross-cut
    consumers on every path).
    """

    ilp: object
    final_solution: object
    reconstruction: object
    spec_groups: list
    bundles_out: object
    phase1_size: dict
    phase2_applied: bool
    phase2_failure: object
    statuses: list
    unproven_site: object
    verify_edges: list
    verify_scopes: dict
    partitions: int
    stitched: bool = True


@dataclass
class _Partition:
    """One partition's solve-ready bundle."""

    spec: object  # BoundarySpec
    fn: object  # sub-Function (shared blocks + exit stub)
    region: object  # sub-SchedulingRegion, stub in forbidden_blocks
    input_schedule: object
    cache_key: str | None = None
    hint: dict | None = None
    messages: list = field(default_factory=list)


# -- cut legality -------------------------------------------------------------


def find_cut_blocks(region, features):
    """Legal cut blocks of ``region`` under ``features``, in topo order.

    Returns the (possibly empty) list of blocks that may open a new
    partition. Empty means whole-function solving: multiple entries,
    a topo order incoherent with the DAG edges, or simply no boundary
    that survives the legality rule.
    """
    cfg = region.cfg
    fn = region.fn
    order = list(cfg.topo_order)
    count = len(order)
    if count < 2 or len(fn.entry_blocks) != 1:
        return []
    index = {name: position for position, name in enumerate(order)}
    if index.get(fn.entry_blocks[0]) != 0:
        return []
    legal = [position > 0 for position in range(count)]

    def forbid_span(left, right):
        low, high = (left, right) if left <= right else (right, left)
        for position in range(low + 1, high + 1):
            if position < count:
                legal[position] = False

    back = set(cfg.back_edges)
    for edge in fn.edges:
        src = index.get(edge.src)
        dst = index.get(edge.dst)
        if src is None or dst is None:
            return []
        if (edge.src, edge.dst) in back:
            if dst > src:
                return []
            # no boundary inside a loop: the back edge must not cross
            for position in range(dst + 1, src + 1):
                legal[position] = False
        elif dst <= src:
            return []  # forward edge against topo order: bail entirely
        else:
            # a forward edge may cross only by landing exactly on the cut
            for position in range(src + 1, dst):
                legal[position] = False

    # Profitable-motion loss: effective domains (Θ plus what speculation
    # and cyclic motion would re-open at ILP build time) must not reach a
    # strictly colder block across the boundary.
    extra = {}
    if features.speculation or features.data_speculation:
        for _kind, load, _broken in find_speculation_candidates(
            region,
            allow_control=features.speculation,
            allow_data=features.data_speculation,
        ):
            extra.setdefault(load, set()).update(
                _speculative_theta(region, load, region.source_block[load])
            )
    if features.cyclic:
        for site in find_cyclic_candidates(region):
            extra.setdefault(site.instr, set()).update(
                candidate_extension(region, site)
            )
    # Θ is already hop-bounded when max_hops is set; apply the same
    # distance bound to the speculative/cyclic extras, so a far ld.s
    # placement is sacrificed instead of vetoing every cut between.
    hops = features.max_hops
    for instr in region.instructions:
        source = region.source_block[instr]
        source_position = index[source]
        source_freq = fn.block(source).freq
        domain = set(region.theta[instr]) | extra.get(instr, set())
        for block in domain:
            position = index.get(block)
            if position is None or position == source_position:
                continue
            if hops is not None and abs(position - source_position) > hops:
                continue
            if fn.block(block).freq < source_freq:
                forbid_span(source_position, position)

    return [order[position] for position in range(1, count) if legal[position]]


def plan_partitions(region, features):
    """Greedy partition plan: contiguous topo intervals at legal cuts.

    Boundaries are taken left to right once the accumulating partition
    holds at least ``decompose_min_instructions // 4`` instructions, so
    tiny partitions never pay the per-partition analysis overhead; an
    undersized final partition is merged backwards. Returns a list of
    block-name lists (each starting at its cut) or ``None`` when fewer
    than two partitions survive.
    """
    cuts = set(find_cut_blocks(region, features))
    if not cuts:
        return None
    floor = max(1, features.decompose_min_instructions // 4)
    sizes = {
        block.name: len(block.instructions) for block in region.fn.blocks
    }
    partitions = []
    current = []
    current_size = 0
    for name in region.cfg.topo_order:
        if current and name in cuts and current_size >= floor:
            partitions.append(current)
            current = []
            current_size = 0
        current.append(name)
        current_size += sizes.get(name, 0)
    if current:
        if partitions and current_size < floor:
            partitions[-1].extend(current)
        else:
            partitions.append(current)
    if len(partitions) < 2:
        return None
    return partitions


# -- partition construction ---------------------------------------------------


def _build_partition(scheduler, work, spec, stub_freq):
    """Analyze one partition: sub-function, sub-region, input schedule."""
    features = scheduler.features
    sub_fn = build_partition_function(work, spec, stub_freq)
    sub_cfg = CfgInfo(sub_fn)
    sub_liveness = compute_liveness(sub_fn)
    sub_ddg = build_dependence_graph(sub_fn, sub_cfg, sub_liveness)
    sub_region = build_region(
        sub_fn,
        sub_cfg,
        sub_ddg,
        max_hops=features.max_hops,
        freq_cap=features.freq_cap,
        allow_predication=features.predication,
    )
    stub = spec.exit
    if stub is not None:
        # The stub hosts analyses, never placements. build_region ran
        # before the ban could be recorded, so strip what it admitted
        # (predication may have targeted the stub's incoming edges).
        sub_region.forbidden_blocks = frozenset({stub})
        for instr in sub_region.instructions:
            sub_region.theta[instr].discard(stub)
        for key in [k for k in sub_region.guard_for if k[1] == stub]:
            del sub_region.guard_for[key]
        for key in [k for k in sub_region.guard_compare if k[1] == stub]:
            del sub_region.guard_compare[key]
        sub_region.invalidate_hosting_index()
    sub_input = ListScheduler(scheduler.machine).schedule(sub_fn, sub_ddg)
    return _Partition(
        spec=spec, fn=sub_fn, region=sub_region, input_schedule=sub_input
    )


def _attach_cache(scheduler, parts, trace):
    """Assign per-partition fingerprints and load length hints."""
    store = getattr(scheduler, "partition_store", None)
    if store is None:
        return
    from repro.serve.fingerprint import CODE_VERSION, partition_fingerprint

    for part in parts:
        try:
            part.cache_key = partition_fingerprint(
                part.fn, scheduler.features, scheduler.machine
            )
        except Exception:
            part.cache_key = None
            continue
        header = store.load_header(part.cache_key)
        hint = None
        if (
            header
            and header.get("code_version") == CODE_VERSION
            and header.get("kind") == "partition"
        ):
            lengths = header.get("block_lengths")
            if isinstance(lengths, dict) and lengths:
                hint = lengths
        part.hint = hint
        name = "partition_cache_hits" if hint else "partition_cache_misses"
        trace.count(name)
        if obs.ENABLED:
            obs.counter(name + "_total")


def _store_partition(store, part, pieces):
    """Publish a solved partition's achieved block lengths as a hint."""
    if store is None or part.cache_key is None:
        return
    from repro.serve.fingerprint import CODE_VERSION

    schedule = pieces.reconstruction.schedule
    lengths = {
        name: schedule.block_length(name) for name in schedule.block_order
    }
    quality = (
        "optimal"
        if all(s is SolveStatus.OPTIMAL for s in pieces.statuses)
        else "incumbent"
    )
    meta = {
        "code_version": CODE_VERSION,
        "kind": "partition",
        "routine": part.fn.name,
        "quality": quality,
        "block_lengths": lengths,
    }
    payload = json.dumps({"block_lengths": lengths}).encode("utf-8")
    try:
        store.put(part.cache_key, "", payload, meta=meta)
    except OSError:
        pass  # a failed cache fill is never a routine failure


# -- solving ------------------------------------------------------------------


def _solve_partitions(scheduler, parts, deadline, trace, messages):
    """Solve every partition (threaded); ``None`` if any one fails.

    Partitions and routines share the machine: inside a routine-pool
    worker the fan-out collapses to one thread (see
    :func:`repro.tools.parallel.partition_workers`). The solver kernels
    release the GIL, so threads suffice and instruction/block identity
    is preserved for stitching — a process pool would pickle the
    partitions into disconnected copies.
    """
    from repro.tools.parallel import partition_workers

    def solve_one(part):
        sub_trace = obs.Trace()
        started = time.perf_counter()
        pieces = scheduler._run_pipeline(
            part.fn,
            part.region,
            part.input_schedule,
            deadline,
            part.messages,
            sub_trace,
            length_hint=part.hint,
        )
        return pieces, sub_trace, time.perf_counter() - started

    workers = partition_workers(len(parts))
    runs = []
    if workers <= 1:
        for part in parts:
            try:
                runs.append(solve_one(part))
            except faults.FaultConfigError:
                raise
            except Exception as exc:
                runs.append(exc)
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(solve_one, part) for part in parts]
            for future in futures:
                try:
                    runs.append(future.result())
                except faults.FaultConfigError:
                    raise
                except Exception as exc:
                    runs.append(exc)

    solved = []
    for part, run in zip(parts, runs):
        if isinstance(run, Exception):
            messages.append(
                f"partition {part.spec.index} ({part.spec.entry}) failed: "
                f"{run}"
            )
            return None
        pieces, sub_trace, elapsed = run
        _merge_trace(trace, sub_trace)
        messages.extend(part.messages)
        if obs.ENABLED:
            obs.counter("decompose_partitions_total")
            obs.histogram("partition_solve_seconds", elapsed)
        solved.append(pieces)
    return solved


def _merge_trace(trace, sub_trace):
    """Fold a partition's trace into the routine trace (plain data)."""
    trace.records.extend(sub_trace.records)
    for name, value in sub_trace.counters.items():
        trace.count(name, value)
    trace.solves.extend(sub_trace.solves)
    trace.cuts.extend(sub_trace.cuts)


# -- stitching ----------------------------------------------------------------


def _stitch(work, region, ddg, parts, solved):
    """Merge per-partition pipeline results into one StitchedPieces.

    Raises :class:`SchedulingError` on any inconsistency (including an
    injected ``decompose.stitch`` fault); the caller falls back to the
    whole-function model.
    """
    injected = faults.fire("decompose.stitch")
    if injected is not None:
        raise SchedulingError(f"injected stitch fault ({injected})")

    owner = {}
    for position, part in enumerate(parts):
        for instr in part.region.instructions:
            owner[instr] = position
    if set(owner) != set(region.instructions):
        raise SchedulingError(
            "partition instruction sets do not cover the routine"
        )

    merged = Schedule([block.name for block in work.blocks])
    active = []
    selected = []
    recovery = []
    source_block = {}
    guards = {}
    spec_groups = []
    statuses = []
    verify_edges = []
    verify_scopes = {}
    phase2_failure = None
    unproven_site = None
    size = {"constraints": 0, "variables": 0, "nodes": 0, "time": 0.0}
    objective = 0.0
    has_objective = False
    gaps = []

    from repro.sched.scheduler import _verifiable_edges

    for part, pieces in zip(parts, solved):
        stub = part.spec.exit
        recon = pieces.reconstruction
        sub_schedule = recon.schedule
        for name in sub_schedule.block_order:
            if name == stub:
                if sub_schedule.cycles_of(name):
                    raise SchedulingError(
                        f"partition {part.spec.index} placed instructions "
                        f"in its exit stub {name}"
                    )
                continue  # the stub's real schedule belongs to the next part
            for cycle in sorted(sub_schedule.cycles_of(name)):
                for instr in sub_schedule.group(name, cycle):
                    merged.place(instr, name, cycle)
            merged.set_block_length(name, sub_schedule.block_length(name))
        for key, pairs in sub_schedule.order_pairs.items():
            if key[0] != stub:
                merged.order_pairs[key] = list(pairs)

        active.extend(recon.active_instructions)
        selected.extend(recon.selected_groups)
        recovery.extend(recon.recovery_stubs)
        source_block.update(recon.source_block)
        guards.update(recon.guards)
        spec_groups.extend(pieces.spec_groups)
        statuses.extend(pieces.statuses)
        if phase2_failure is None:
            phase2_failure = pieces.phase2_failure
        if unproven_site is None:
            unproven_site = pieces.unproven_site

        edges = _verifiable_edges(pieces.ilp, pieces.final_solution)
        verify_edges.extend(edges)
        edge_set = set(edges)
        verify_scopes.update(
            {
                edge: scope
                for edge, scope in pieces.ilp.verify_scopes.items()
                if edge in edge_set
            }
        )

        part_size = pieces.phase1_size or {}
        for key in ("constraints", "variables", "nodes", "time"):
            size[key] += part_size.get(key) or 0
        if part_size.get("objective") is not None:
            objective += part_size["objective"]
            has_objective = True
        if part_size.get("gap") is not None:
            gaps.append(part_size["gap"])

        # The emitted schedule follows the partitions' speculation
        # decisions; fold them into the whole region so the verifier's
        # dominance/postdominance checks grade each placement by the
        # rule it was actually scheduled under.
        region.speculative.update(part.region.speculative)

    # Cross-partition dependences: every producer's partition precedes
    # its consumers' on all paths, so the path verifier's block-order
    # rule discharges them — include them so it actually checks that.
    for instr in region.instructions:
        for edge in ddg.succs(instr):
            src_owner = owner.get(edge.src)
            dst_owner = owner.get(edge.dst)
            if src_owner is None or dst_owner is None:
                continue
            if src_owner != dst_owner:
                verify_edges.append(edge)

    size["objective"] = objective if has_objective else None
    size["gap"] = max(gaps) if gaps else None

    reconstruction = ReconstructionResult(
        schedule=merged,
        active_instructions=active,
        selected_groups=selected,
        recovery_stubs=recovery,
        source_block=source_block,
        guards=guards,
    )
    return StitchedPieces(
        ilp=None,
        final_solution=StitchedSolution(
            [pieces.final_solution for pieces in solved]
        ),
        reconstruction=reconstruction,
        spec_groups=spec_groups,
        bundles_out=bundle_schedule(merged),
        phase1_size=size,
        phase2_applied=all(pieces.phase2_applied for pieces in solved),
        phase2_failure=phase2_failure,
        statuses=statuses,
        unproven_site=unproven_site,
        verify_edges=verify_edges,
        verify_scopes=verify_scopes,
        partitions=len(parts),
    )


# -- driver -------------------------------------------------------------------


def try_decomposed_pipeline(
    scheduler, work, liveness, ddg, region, deadline, messages, trace
):
    """Attempt the decomposed pipeline; ``None`` means "solve whole".

    Never raises for pipeline failures (a partition degrade, a stitch
    fault, an analysis error all return ``None`` with a message); the
    one exception is :class:`~repro.tools.faults.FaultConfigError`,
    which is a driver misconfiguration and must propagate.
    """
    features = scheduler.features
    if not features.decompose:
        return None
    total = sum(len(block.instructions) for block in work.blocks)
    if total < features.decompose_min_instructions:
        return None
    try:
        partitions = plan_partitions(region, features)
        if partitions is None:
            return None
        specs = partition_specs(work, liveness, partitions)
        stub_freq = stub_frequency(work, region_freq_cap(region))
        with trace.span("decompose", partitions=len(specs)) as span:
            parts = [
                _build_partition(scheduler, work, spec, stub_freq)
                for spec in specs
            ]
            _attach_cache(scheduler, parts, trace)
            solved = _solve_partitions(
                scheduler, parts, deadline, trace, messages
            )
            if solved is None:
                messages.append(
                    "decomposition abandoned; solving the whole function"
                )
                return None
            pieces = _stitch(work, region, ddg, parts, solved)
            store = getattr(scheduler, "partition_store", None)
            for part, part_pieces in zip(parts, solved):
                _store_partition(store, part, part_pieces)
            span.set_attr("stitched", True)
    except faults.FaultConfigError:
        raise
    except Exception as exc:
        messages.append(
            f"decomposition abandoned ({type(exc).__name__}: {exc}); "
            "solving the whole function"
        )
        return None
    trace.count("decompose_partitions", len(parts))
    messages.append(f"decomposed into {len(parts)} partitions")
    return pieces
