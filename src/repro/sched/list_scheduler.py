"""Heuristic baseline: local list scheduling per basic block.

This produces the *input schedules* of the experiments — the stand-in for
the production compiler whose output the paper's postpass optimizer
consumes. It is a classical critical-path list scheduler honoring the
Itanium 2 dispersal constraints, with branches pinned to the final cycle
of their block. No global code motion is performed, so the gap to the ILP
scheduler measures exactly what the paper's Tables 1/2 measure: the value
of globally optimal motion, speculation and compensation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.machine.itanium2 import ITANIUM2
from repro.sched.schedule import Schedule


@dataclass
class _Node:
    instr: object
    preds: list
    succs: list
    priority: int = 0
    scheduled_cycle: int | None = None


class ListScheduler:
    """Critical-path local list scheduler.

    ``schedule(fn, ddg)`` returns a :class:`~repro.sched.schedule.Schedule`
    placing every non-nop instruction in its original block.
    """

    def __init__(self, machine=ITANIUM2):
        self.machine = machine

    def schedule(self, fn, ddg):
        schedule = Schedule([b.name for b in fn.blocks])
        for block in fn.blocks:
            self._schedule_block(block, ddg, schedule)
        return schedule

    # -- internals ---------------------------------------------------------------
    def _schedule_block(self, block, ddg, schedule):
        instrs = [i for i in block.instructions if not i.is_nop]
        if not instrs:
            return
        in_block = set(instrs)
        nodes = {}
        for instr in instrs:
            preds = [
                e for e in ddg.preds(instr) if e.src in in_block and e.src is not instr
            ]
            succs = [
                e for e in ddg.succs(instr) if e.dst in in_block and e.dst is not instr
            ]
            nodes[instr] = _Node(instr, preds, succs)

        self._assign_priorities(instrs, nodes)

        branches = [i for i in instrs if i.is_branch]
        work = [i for i in instrs if not i.is_branch]
        remaining = set(work)
        cycle = 0
        guard = 0
        while remaining:
            cycle += 1
            guard += 1
            if guard > 10 * len(instrs) + 64:
                raise SchedulingError(
                    f"list scheduler failed to converge in block {block.name}"
                )
            group = []
            ready = sorted(
                (i for i in remaining if self._earliest(nodes[i], nodes) <= cycle),
                key=lambda i: (-nodes[i].priority, i.uid),
            )
            for instr in ready:
                candidate = group + [instr]
                if not self.machine.group_feasible([c.unit for c in candidate]):
                    continue
                if not self._intra_group_ok(instr, nodes, group, cycle):
                    continue
                # Dispersal feasibility does not imply template
                # encodability (two F ops + a movl need three bundles):
                # keep the baseline's groups honest too.
                from repro.bundle import group_is_bundleable

                if group_is_bundleable(candidate, []):
                    group.append(instr)
            for instr in group:
                nodes[instr].scheduled_cycle = cycle
                schedule.place(instr, block.name, cycle)
                remaining.discard(instr)

        # Record required slot-order pairs (zero-latency same-cycle deps) so
        # the bundler may permute groups within them.
        for cyc, group_list in schedule.cycles_of(block.name).items():
            index_of = {p: i for i, p in enumerate(group_list)}
            pairs = []
            for member in group_list:
                for edge in nodes[member].succs:
                    other = edge.dst
                    if other in index_of and edge.latency == 0:
                        pairs.append((index_of[member], index_of[other]))
            schedule.order_pairs[(block.name, cyc)] = pairs

        # Branches: one final cycle, no earlier than their dependences allow.
        if branches:
            earliest = max(
                [self._earliest(nodes[b], nodes) for b in branches] + [cycle]
            )
            branch_cycle = max(earliest, cycle if cycle else 1, 1)
            if not self.machine.group_feasible(
                [b.unit for b in branches]
                + [i.unit for i in schedule.group(block.name, branch_cycle)]
            ):
                branch_cycle += 1
            for branch in branches:
                nodes[branch].scheduled_cycle = branch_cycle
                schedule.place(branch, block.name, branch_cycle)

    @staticmethod
    def _assign_priorities(instrs, nodes):
        """Longest-path-to-sink priorities (classic critical path)."""
        order = _topological(instrs, nodes)
        for instr in reversed(order):
            node = nodes[instr]
            node.priority = max(
                (
                    nodes[e.dst].priority + max(e.latency, 1)
                    for e in node.succs
                ),
                default=0,
            )

    @staticmethod
    def _earliest(node, nodes):
        """Earliest feasible cycle given scheduled predecessors.

        Unscheduled predecessors make the node not ready (infinity);
        zero-latency predecessors allow the same cycle, where the
        intra-group check enforces slot order.
        """
        earliest = 1
        for edge in node.preds:
            pred_cycle = nodes[edge.src].scheduled_cycle
            if pred_cycle is None:
                return float("inf")
            earliest = max(earliest, pred_cycle + edge.latency)
        return earliest

    def _intra_group_ok(self, instr, nodes, group, cycle):
        """Zero-latency predecessors in the same cycle must already be in
        the group (so intra-group slot order can satisfy them)."""
        for edge in nodes[instr].preds:
            pred_cycle = nodes[edge.src].scheduled_cycle
            if pred_cycle == cycle and edge.src not in group:
                return False
        return True


def _topological(instrs, nodes):
    indegree = {i: 0 for i in instrs}
    for instr in instrs:
        for edge in nodes[instr].succs:
            indegree[edge.dst] += 1
    ready = [i for i in instrs if indegree[i] == 0]
    order = []
    while ready:
        instr = ready.pop()
        order.append(instr)
        for edge in nodes[instr].succs:
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0:
                ready.append(edge.dst)
    if len(order) != len(instrs):
        raise SchedulingError("cycle in intra-block dependence graph")
    return order
