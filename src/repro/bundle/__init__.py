"""IA-64 bundling: packing instruction groups into templates.

The scheduler decides *cycles*; this package decides *encoding*: each
cycle's instruction group is packed into at most two 3-slot bundles whose
templates must (a) offer type-compatible slots in an order compatible
with the group's internal dependences, and (b) place an instruction-group
stop at the group boundary. Mid-bundle stops (``M;MI``, ``MI;I``) let two
adjacent groups share a bundle, which is exactly why the paper's larger
groups cost almost no extra bundles ("Delta Bundl." of Table 1).

The dynamic program follows the two-phase bundler the paper credits to
Ingmar Stein: per-group packings are enumerated against precomputed
template shapes, and a DP over the group sequence picks the globally
minimal bundle count.
"""

from repro.bundle.bundler import (
    Bundle,
    BundleResult,
    bundle_block,
    bundle_schedule,
    group_is_bundleable,
    pack_groups,
)

__all__ = [
    "Bundle",
    "BundleResult",
    "bundle_block",
    "bundle_schedule",
    "group_is_bundleable",
    "pack_groups",
]
