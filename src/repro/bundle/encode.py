"""Structural encoding of bundles into 128-bit images.

Produces the byte-level artifact the bundling story is about: code size.
Each bundle is 16 bytes regardless of how many real instructions it
carries — which is exactly why the paper's +15 % instruction growth cost
only +2 % code size: the new instructions displace nops inside existing
bundles.

The template field uses the architectural 5-bit codes. Slot encoding is
*structural*, not ISA-exact: a 41-bit field packs a 9-bit operation tag
(stable hash of the mnemonic), the qualifying predicate, one destination
and up to two source register numbers, and a 12-bit immediate window.
This is sufficient for deterministic round-tripping of the scheduling-
relevant content (and for measuring code bytes); producing bit-exact
IA-64 machine code is out of scope.
"""

from __future__ import annotations

import hashlib

from repro.errors import BundlingError
from repro.ir.registers import Register

# Architectural template codes: (slots, has_mid_stop, has_end_stop) -> code.
TEMPLATE_CODES = {
    ("MII", False, False): 0x00,
    ("MII", False, True): 0x01,
    ("MII", True, False): 0x02,
    ("MII", True, True): 0x03,
    ("MLX", False, False): 0x04,
    ("MLX", False, True): 0x05,
    ("MMI", False, False): 0x08,
    ("MMI", False, True): 0x09,
    ("MMI", True, False): 0x0A,
    ("MMI", True, True): 0x0B,
    ("MFI", False, False): 0x0C,
    ("MFI", False, True): 0x0D,
    ("MMF", False, False): 0x0E,
    ("MMF", False, True): 0x0F,
    ("MIB", False, False): 0x10,
    ("MIB", False, True): 0x11,
    ("MBB", False, False): 0x12,
    ("MBB", False, True): 0x13,
    ("BBB", False, False): 0x16,
    ("BBB", False, True): 0x17,
    ("MMB", False, False): 0x18,
    ("MMB", False, True): 0x19,
    ("MFB", False, False): 0x1C,
    ("MFB", False, True): 0x1D,
}

_SLOT_BITS = 41
_TAG_BITS = 9


def _operation_tag(mnemonic):
    """Stable 9-bit operation tag."""
    digest = hashlib.blake2s(mnemonic.encode(), digest_size=2).digest()
    return int.from_bytes(digest, "big") & ((1 << _TAG_BITS) - 1)


def encode_slot(entry):
    """41-bit integer for one slot entry (Instruction or nop mnemonic)."""
    if isinstance(entry, str):
        return _operation_tag(entry) << (_SLOT_BITS - _TAG_BITS)
    value = _operation_tag(entry.mnemonic) << (_SLOT_BITS - _TAG_BITS)
    pred = entry.pred.index if entry.pred is not None else 0
    value |= (pred & 0x3F) << 26
    dest = entry.dests[0].index if entry.dests else 0
    value |= (dest & 0x7F) << 19
    sources = [s for s in entry.srcs if isinstance(s, Register)][:2]
    for i, src in enumerate(sources):
        value |= (src.index & 0x7F) << (12 - 7 * i)
    if entry.imms:
        value ^= entry.imms[0] & 0xFFF
    return value & ((1 << _SLOT_BITS) - 1)


def encode_bundle(bundle):
    """16-byte image: 5-bit template code + three 41-bit slots."""
    has_mid = (bundle.mid_stop is not None and bundle.mid_stop < 2) or (
        bundle.stop_after is not None and bundle.stop_after < 2
    )
    has_end = bundle.stop_after == 2
    code = TEMPLATE_CODES.get((bundle.template, has_mid, has_end))
    if code is None:
        raise BundlingError(
            f"no architectural template for {bundle.template} with "
            f"stops mid={key[1]} end={key[2]}"
        )
    image = code
    for position, entry in enumerate(bundle.slots):
        image |= encode_slot(entry) << (5 + position * _SLOT_BITS)
    return image.to_bytes(16, "little")


def encode_bundles(bundles):
    """Concatenated images; len() is the routine's code size in bytes."""
    return b"".join(encode_bundle(b) for b in bundles)


def code_bytes(bundle_result):
    """Total code size in bytes for a BundleResult."""
    return sum(
        len(encode_bundles(bundles))
        for bundles in bundle_result.bundles.values()
    )


def decode_template(image):
    """Template code and name from a 16-byte image (round-trip checks)."""
    value = int.from_bytes(image, "little")
    code = value & 0x1F
    for (name, _mid, _end), candidate in TEMPLATE_CODES.items():
        if candidate == code:
            return code, name
    raise BundlingError(f"unknown template code {code:#x}")
