"""Dynamic-programming bundler for Itanium 2.

Definitions:

* a *group* is one cycle's instructions in their required slot order
  (the scheduler emits a topological order of the intra-group
  dependences; the bundler preserves it, which is always sufficient);
* a *state* between groups is either ``CLOSED`` (next group starts a new
  bundle) or an open mid-stop bundle: ``("MMI", 1)`` after an ``M;MI``
  stop, ``("MII", 2)`` after an ``MI;I`` stop — the next group continues
  in the same bundle at the given slot;
* a group may span at most two bundles (the dispersal window is two
  bundles wide; spanning three would split the cycle).

Feasibility of placing an ordered unit sequence into a slot sequence is
checked greedily (earliest compatible slot), which is exact for
order-preserving matching when every slot may alternatively hold a nop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import BundlingError
from repro.machine.templates import TEMPLATES_BY_NAME, nop_for_slot, slot_accepts
from repro.machine.units import UnitKind

CLOSED = "closed"

# Mid-stop resume states: template name -> resume slot index.
_MID_STOP_STATES = (("MMI", 1), ("MII", 2))

_TEMPLATE_NAMES = ("MII", "MLX", "MMI", "MFI", "MMF", "MIB", "MBB", "BBB", "MMB", "MFB")


@dataclass
class Bundle:
    """One 128-bit bundle: template, three slot entries, stop marker.

    ``slots`` holds Instruction objects or nop mnemonics (strings);
    ``stop_after`` is the slot index after which the ``;;`` falls, or
    None when the group continues into the next bundle.
    """

    template: str
    slots: list
    stop_after: int | None
    mid_stop: int | None = None  # internal ;; when two groups share the bundle

    @property
    def nop_count(self):
        return sum(1 for s in self.slots if isinstance(s, str))

    def __repr__(self):
        names = [
            s if isinstance(s, str) else s.mnemonic for s in self.slots
        ]
        stop = f";;@{self.stop_after}" if self.stop_after is not None else ""
        return f"Bundle({self.template}: {', '.join(names)}{stop})"


@dataclass
class BundleResult:
    """Bundles per block plus the counters Table 1 reports."""

    bundles: dict = field(default_factory=dict)  # block -> list[Bundle]

    @property
    def total_bundles(self):
        return sum(len(v) for v in self.bundles.values())

    @property
    def total_nops(self):
        return sum(b.nop_count for v in self.bundles.values() for b in v)

    def bundles_of(self, block):
        return self.bundles.get(block, [])


def _unit_signature(group):
    return tuple(i.unit for i in group)


@lru_cache(maxsize=100000)
def _packings_for(units, state):
    """All ways to pack an ordered unit tuple starting from ``state``.

    Returns a list of ``(bundles_used, out_state, layout)`` where
    ``layout`` is a tuple of per-bundle slot assignments: each entry is
    ``(template_name, start_slot, ((slot_index, unit_position | None), ...),
    stop_after)``. ``bundles_used`` counts *newly opened* bundles (a
    continued open bundle costs 0 — it was counted by the group that
    opened it).
    """
    options = []
    heads = []  # (consumed_prefix_len, opened_bundles, partial_layout)
    if state == CLOSED:
        heads.append((0, 0, ()))
    else:
        template_name, resume = state
        template = TEMPLATES_BY_NAME[template_name]
        tail_slots = list(range(resume, len(template.slots)))
        for consumed, assignment in _fill_slots(units, 0, template, tail_slots):
            heads.append(
                (
                    consumed,
                    0,
                    ((template_name, resume, assignment, 2),),
                )
            )
        # The continuation bundle always ends with a stop at its end: the
        # next group may not resume inside it (it would be a third group
        # in one bundle boundary chain, which the state machine forbids).

    for consumed0, opened0, layout0 in heads:
        remaining0 = len(units) - consumed0
        if remaining0 == 0 and consumed0 > 0 or (len(units) == 0 and layout0):
            options.append((opened0, CLOSED, layout0))
        if remaining0 == 0:
            if not layout0:
                # Empty group: no encoding needed.
                options.append((0, CLOSED, ()))
            continue
        max_new = 2 - len(layout0)
        # A continuation bundle that does not finish the group has no end
        # stop — the group flows into the next bundle.
        layout_open = tuple(
            (t, s, a, None) if i == len(layout0) - 1 else (t, s, a, st)
            for i, (t, s, a, st) in enumerate(layout0)
        )
        for name1 in _TEMPLATE_NAMES:
            template1 = TEMPLATES_BY_NAME[name1]
            all_slots = list(range(len(template1.slots)))
            for consumed1, assign1 in _fill_slots(
                units, consumed0, template1, all_slots
            ):
                total1 = consumed0 + consumed1
                remaining1 = len(units) - total1
                if remaining1 == 0:
                    # Close with an end stop...
                    options.append(
                        (
                            opened0 + 1,
                            CLOSED,
                            layout_open + ((name1, 0, assign1, 2),),
                        )
                    )
                    # ...or leave a mid-stop open for the next group.
                    for mid_name, resume in _MID_STOP_STATES:
                        if name1 != mid_name:
                            continue
                        stop_at = resume - 1
                        if all(
                            pos is None or slot <= stop_at
                            for slot, pos in assign1
                        ):
                            trimmed = tuple(
                                (slot, pos)
                                for slot, pos in assign1
                                if slot <= stop_at
                            )
                            options.append(
                                (
                                    opened0 + 1,
                                    (mid_name, resume),
                                    layout_open + ((name1, 0, trimmed, stop_at),),
                                )
                            )
                    continue
                if max_new < 2:
                    continue  # already spans two bundles
                if consumed1 == 0:
                    continue
                for name2 in _TEMPLATE_NAMES:
                    template2 = TEMPLATES_BY_NAME[name2]
                    slots2 = list(range(len(template2.slots)))
                    for consumed2, assign2 in _fill_slots(
                        units, total1, template2, slots2
                    ):
                        if total1 + consumed2 != len(units):
                            continue
                        options.append(
                            (
                                opened0 + 2,
                                CLOSED,
                                layout_open
                                + (
                                    (name1, 0, assign1, None),
                                    (name2, 0, assign2, 2),
                                ),
                            )
                        )
                        for mid_name, resume in _MID_STOP_STATES:
                            if name2 != mid_name:
                                continue
                            stop_at = resume - 1
                            if all(
                                pos is None or slot <= stop_at
                                for slot, pos in assign2
                            ):
                                trimmed = tuple(
                                    (s, p) for s, p in assign2 if s <= stop_at
                                )
                                options.append(
                                    (
                                        opened0 + 2,
                                        (mid_name, resume),
                                        layout_open
                                        + (
                                            (name1, 0, assign1, None),
                                            (name2, 0, trimmed, stop_at),
                                        ),
                                    )
                                )
    return options


def _fill_slots(units, start, template, slot_indices):
    """Greedy order-preserving placements of ``units[start:]`` into slots.

    Yields ``(consumed, assignment)`` for every *prefix length* that can be
    placed; assignment is a tuple of (slot_index, unit_position) — slots
    not listed become nops. The maximal greedy assignment dominates, but
    shorter prefixes matter when the remainder flows into a second bundle.
    """
    placements = []
    position = start
    for slot in slot_indices:
        slot_type = template.slots[slot]
        if slot_type == "X":
            # Consumed by a movl in the preceding L slot, or nop.
            continue
        if position < len(units) and slot_accepts(slot_type, units[position]):
            placements.append((slot, position))
            position += 1
    # Every prefix of the greedy placement is itself feasible.
    for cut in range(len(placements) + 1):
        consumed = cut
        assignment = tuple(placements[:cut])
        yield consumed, assignment


_MAX_ORDERS = 64


def _linear_extensions(units, pairs):
    """Distinct unit-sequence linear extensions of the partial order.

    ``pairs`` is an iterable of (i, j) index pairs (i before j); ``None``
    means "preserve the given order exactly". Returns a list of
    ``(unit_tuple, perm)`` where ``perm[pos]`` is the original index of
    the unit placed at ``pos``. Orders whose unit signature repeats are
    deduplicated; enumeration is capped at ``_MAX_ORDERS`` signatures.
    """
    n = len(units)
    identity = tuple(range(n))
    if pairs is None or n <= 1:
        return [(tuple(units), identity)]
    succs = {}
    pred_count = [0] * n
    for i, j in pairs:
        succs.setdefault(i, []).append(j)
        pred_count[j] += 1

    results = []
    seen_signatures = {}
    order = []

    def dfs(counts, available):
        if len(results) >= _MAX_ORDERS:
            return
        if len(order) == n:
            signature = tuple(units[i] for i in order)
            if signature not in seen_signatures:
                seen_signatures[signature] = True
                results.append((signature, tuple(order)))
            return
        for idx in sorted(available):
            order.append(idx)
            available.discard(idx)
            released = []
            for succ in succs.get(idx, ()):  # release successors
                counts[succ] -= 1
                if counts[succ] == 0:
                    available.add(succ)
                    released.append(succ)
            dfs(counts, available)
            for succ in succs.get(idx, ()):
                counts[succ] += 1
            for succ in released:
                available.discard(succ)
            available.add(idx)
            order.pop()

    dfs(list(pred_count), {i for i in range(n) if pred_count[i] == 0})
    if not results:
        return [(tuple(units), identity)]
    return results


def pack_groups(groups, order_pairs=None, machine=None):
    """DP over a block's cycle groups; returns list of Bundle per block.

    ``groups``: list of instruction lists (cycle order, slot order within).
    ``order_pairs``: per-group lists of (i, j) index pairs the slot order
    must respect; ``None`` entries preserve the given order exactly.
    Raises :class:`BundlingError` naming the first unpackable group.
    """
    states = {CLOSED: (0, None, None, None)}  # state -> (cost, bp, layout, perm)
    history = [states]
    for index, group in enumerate(groups):
        if not group:
            # A stall cycle needs no encoding: the in-order pipeline stalls
            # on the unavailable operand by itself. Identity transition so
            # the backtracking chain stays aligned with group indices.
            states = {
                state: (cost, state, (), None)
                for state, (cost, _bp, _layout, _perm) in states.items()
            }
            history.append(states)
            continue
        pairs = order_pairs[index] if order_pairs is not None else None
        pairs_key = tuple(sorted(set(pairs))) if pairs is not None else None
        units = _unit_signature(group)
        orders = _linear_extensions(units, pairs_key)
        new_states = {}
        for state, (cost, _bp, _layout, _perm) in states.items():
            for signature, perm in orders:
                for opened, out_state, layout in _packings_for(signature, state):
                    total = cost + opened
                    best = new_states.get(out_state)
                    if best is None or total < best[0]:
                        new_states[out_state] = (total, state, layout, perm)
        if not new_states:
            error = BundlingError(
                f"group {index} ({[i.mnemonic for i in group]}) fits no "
                "template sequence"
            )
            error.instructions = list(group)
            error.group_index = index
            raise error
        states = new_states
        history.append(states)

    # Backtrack from the cheapest final state.
    final_state = min(states, key=lambda s: states[s][0])
    chain = []
    state = final_state
    for index in range(len(groups), 0, -1):
        cost, back, layout, perm = history[index][state]
        chain.append((index - 1, layout, perm))
        state = back
    chain.reverse()
    return _materialize(groups, chain)


def _materialize(groups, chain):
    """Turn DP layouts into concrete Bundle objects."""
    bundles = []
    open_bundle = None
    for index, layout, perm in chain:
        group = groups[index]
        if perm is not None:
            group = [group[i] for i in perm]
        for template_name, start_slot, assignment, stop_after in layout or ():
            template = TEMPLATES_BY_NAME[template_name]
            if start_slot > 0 and open_bundle is not None:
                bundle = open_bundle
                bundle.mid_stop = bundle.stop_after
            else:
                bundle = Bundle(
                    template_name,
                    [nop_for_slot(t) for t in template.slots],
                    None,
                )
                bundles.append(bundle)
            for slot, pos in assignment:
                bundle.slots[slot] = group[pos]
            if stop_after == 2:
                bundle.stop_after = 2
                open_bundle = None
            elif stop_after is None:
                bundle.stop_after = None
                open_bundle = None
            else:
                bundle.stop_after = stop_after  # mid stop: bundle stays open
                open_bundle = bundle
    return bundles


def bundle_block(schedule, block, machine=None):
    """Bundle one block of a schedule."""
    groups = []
    pairs = []
    for cycle in range(1, schedule.block_length(block) + 1):
        groups.append(schedule.group(block, cycle))
        pairs.append(schedule.order_pairs.get((block, cycle)))
    return pack_groups(groups, pairs, machine)


def bundle_schedule(schedule, machine=None):
    """Bundle every block; returns a :class:`BundleResult`."""
    result = BundleResult()
    for block in schedule.block_order:
        result.bundles[block] = bundle_block(schedule, block, machine)
    return result


def group_is_bundleable(group, order_pairs=None, machine=None):
    """Advance check used to generate bundling constraints (Sec. 4.2)."""
    try:
        pack_groups([list(group)], [order_pairs], machine)
        return True
    except BundlingError:
        return False
