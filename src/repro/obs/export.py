"""Exporters: JSONL event log, Chrome ``trace_event`` JSON, metrics dumps.

Three output formats, all derived from the same recorder state:

* **JSONL** — one JSON object per line, first line a ``meta`` record
  (pid, wall epoch, snapshot version), then every span/instant event in
  recording order.  The append-friendly format for per-routine event
  logs and offline analysis (``jq``-able).
* **Chrome trace** — the ``trace_event`` array format understood by
  ``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): spans as
  complete (``"ph": "X"``) events with microsecond timestamps, instants
  as ``"ph": "i"``, plus ``"M"`` metadata naming each process lane.
  Worker events merged via :func:`repro.obs.merge_snapshot` keep their
  own pid and therefore render as separate process tracks.
* **Metrics** — either a flat JSON dict (counters / gauges / histograms
  with cumulative bucket counts) or Prometheus exposition text when the
  target filename ends in ``.prom``.

The ``validate_*`` functions are the schema checks used by both the
test-suite and the CI obs-smoke job; they return a list of problems
(empty = valid) so CI can print every violation at once.
"""

from __future__ import annotations

import json

from repro.obs import core


def _require_recorder(recorder):
    rec = recorder if recorder is not None else core.recorder()
    if rec is None:
        raise RuntimeError(
            "observability is not enabled: call repro.obs.enable() or set "
            f"{core.ENV_VAR}=1 before exporting"
        )
    return rec


# -- JSONL --------------------------------------------------------------------
def jsonl_lines(recorder=None):
    """The event log as a list of JSON strings (meta line first)."""
    rec = _require_recorder(recorder)
    meta = {
        "type": "meta",
        "version": core.SNAPSHOT_VERSION,
        "pid": rec.pid,
        "epoch_wall": rec.epoch_wall,
    }
    with rec._lock:
        events = [dict(ev) for ev in rec.events]
    return [json.dumps(meta)] + [
        json.dumps(ev, sort_keys=True, default=str) for ev in events
    ]


def write_jsonl(path, recorder=None):
    lines = jsonl_lines(recorder)
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    return len(lines)


# -- Chrome trace_event -------------------------------------------------------
def chrome_trace(recorder=None):
    """The recorder's events in Chrome ``trace_event`` JSON form.

    Spans carrying a distributed-trace context (``trace``,
    ``remote_parent`` — see :func:`repro.obs.core.trace_scope`) are
    *stitched*: every cross-process parent link becomes a Perfetto flow
    event pair (``ph: "s"`` at the parent, ``ph: "f"`` at the child),
    so one client request renders as a single connected arrow chain
    across the client, daemon and worker process lanes.
    """
    rec = _require_recorder(recorder)
    with rec._lock:
        events = [dict(ev) for ev in rec.events]
        labels = dict(rec.process_labels)
        thread_labels = dict(rec.thread_labels)
    trace_events = []
    for pid in sorted({ev["pid"] for ev in events} | set(labels)):
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": labels.get(pid, f"pid {pid}")},
        })
    for (pid, tid), label in sorted(thread_labels.items()):
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": label},
        })
    spans_by_ref = {}  # "pid.span_id" -> exported X event
    stitches = []  # (child out-event, parent ref)
    for ev in events:
        out = {
            "name": ev["name"],
            "cat": "repro",
            "pid": ev["pid"],
            "tid": ev.get("tid", 0),
            "ts": round(ev["ts"] * 1e6, 3),  # microseconds
            "args": ev.get("args", {}),
        }
        if "trace" in ev:
            out["args"] = dict(out["args"], trace_id=ev["trace"])
        if ev.get("type") == "span":
            out["ph"] = "X"
            out["dur"] = round(max(ev["dur"], 0.0) * 1e6, 3)
            if "id" in ev:
                out["args"] = dict(out["args"], span_id=ev["id"])
                spans_by_ref[f"{ev['pid']}.{ev['id']}"] = out
            if "parent" in ev:
                out["args"]["parent_span_id"] = ev["parent"]
            if "remote_parent" in ev:
                out["args"]["remote_parent"] = ev["remote_parent"]
                stitches.append((out, ev["remote_parent"]))
            if "error" in ev:
                out["args"]["error"] = ev["error"]
        else:
            out["ph"] = "i"
            out["s"] = "t"  # thread-scoped instant
        trace_events.append(out)
    # Cross-process stitching: one flow arrow per remote parent link.
    # The start binds to the parent span's slice, the finish (bp="e")
    # encloses the child slice, which is what makes Perfetto draw the
    # arrow into the child span rather than after it.
    for flow_id, (child, parent_ref) in enumerate(stitches, start=1):
        parent = spans_by_ref.get(str(parent_ref))
        if parent is None:
            continue  # parent process's snapshot was not merged
        common = {
            "name": "trace",
            "cat": "trace",
            "id": flow_id,
        }
        trace_events.append(dict(
            common, ph="s", pid=parent["pid"], tid=parent["tid"],
            ts=parent["ts"],
        ))
        trace_events.append(dict(
            common, ph="f", bp="e", pid=child["pid"], tid=child["tid"],
            ts=child["ts"],
        ))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, recorder=None):
    trace = chrome_trace(recorder)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])


# -- metrics ------------------------------------------------------------------
def metrics_dict(recorder=None):
    return _require_recorder(recorder).metrics.as_dict()


def write_metrics(path, recorder=None):
    """Write the metrics dump; Prometheus text for ``*.prom``, else JSON."""
    rec = _require_recorder(recorder)
    path = str(path)
    if path.endswith(".prom"):
        text = rec.metrics.prometheus_text()
        with open(path, "w") as handle:
            handle.write(text)
        return text
    payload = rec.metrics.as_dict()
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


# -- schema validation --------------------------------------------------------
_PHASES_WITH_DUR = {"X", "B", "E"}


def validate_chrome_trace(obj):
    """Problems with a Chrome ``trace_event`` document (empty = valid)."""
    problems = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["document is not an object with a 'traceEvents' array"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                problems.append(f"{where}: missing {field!r}")
        ph = ev.get("ph")
        if ph == "M":
            continue
        if "ts" not in ev or not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs 'dur' >= 0")
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                problems.append(f"{where}: flow event needs 'id'")
        elif ph not in ("i", "I", "B", "E", "b", "e", "n", "C"):
            problems.append(f"{where}: unexpected phase {ph!r}")
    try:
        json.dumps(obj)
    except (TypeError, ValueError) as exc:
        problems.append(f"document is not JSON-serializable: {exc}")
    return problems


def validate_metrics(obj):
    """Problems with a flat metrics dump (empty = valid)."""
    problems = []
    if not isinstance(obj, dict):
        return ["metrics dump is not an object"]
    for section in ("counters", "gauges", "histograms"):
        if section not in obj:
            problems.append(f"missing section {section!r}")
        elif not isinstance(obj[section], dict):
            problems.append(f"section {section!r} is not an object")
    for name, value in obj.get("counters", {}).items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"counter {name}: not a non-negative number")
    for name, value in obj.get("gauges", {}).items():
        if not isinstance(value, (int, float)):
            problems.append(f"gauge {name}: not a number")
    for name, hist in obj.get("histograms", {}).items():
        if not isinstance(hist, dict):
            problems.append(f"histogram {name}: not an object")
            continue
        for field in ("buckets", "sum", "count"):
            if field not in hist:
                problems.append(f"histogram {name}: missing {field!r}")
        buckets = hist.get("buckets", {})
        if "+Inf" not in buckets:
            problems.append(f"histogram {name}: missing '+Inf' bucket")
        # JSON object key order is not semantic (and json.dump may sort
        # keys lexicographically), so order buckets by their numeric
        # upper bound before checking cumulativity.
        try:
            ordered = sorted(
                buckets.items(),
                key=lambda item: (
                    float("inf") if item[0] == "+Inf" else float(item[0])
                ),
            )
        except ValueError:
            problems.append(f"histogram {name}: non-numeric bucket bound")
            continue
        counts = [count for _, count in ordered]
        if any(a > b for a, b in zip(counts, counts[1:])):
            problems.append(f"histogram {name}: bucket counts not cumulative")
        if buckets and hist.get("count") != counts[-1]:
            problems.append(
                f"histogram {name}: count != cumulative '+Inf' bucket"
            )
    return problems


# -- distributed-trace connectivity -------------------------------------------
def trace_forest(obj):
    """Group a Chrome trace's spans by distributed trace id.

    Returns ``{trace_id: {"spans": {ref: event}, "roots": [ref],
    "unreachable": [ref]}}`` where ``ref`` is the global
    ``"pid.span_id"`` span reference.  A span's parent edge is its
    in-process ``parent_span_id`` when present, else its cross-process
    ``remote_parent``.  ``roots`` are spans with no resolvable parent;
    ``unreachable`` are spans not reachable from the first root — a
    connected trace has exactly one root and no unreachable spans.
    """
    traces = {}
    for ev in obj.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {}) or {}
        trace_id = args.get("trace_id")
        span_id = args.get("span_id")
        if trace_id is None or span_id is None:
            continue
        ref = f"{ev.get('pid')}.{span_id}"
        traces.setdefault(trace_id, {})[ref] = ev
    out = {}
    for trace_id, spans in traces.items():
        children = {ref: [] for ref in spans}
        roots = []
        for ref, ev in spans.items():
            args = ev.get("args", {}) or {}
            parent = args.get("parent_span_id")
            parent_ref = (
                f"{ev.get('pid')}.{parent}" if parent is not None
                else args.get("remote_parent")
            )
            if parent_ref is not None and str(parent_ref) in spans:
                children[str(parent_ref)].append(ref)
            else:
                roots.append(ref)
        reached = set()
        if roots:
            stack = [roots[0]]
            while stack:
                ref = stack.pop()
                if ref in reached:
                    continue
                reached.add(ref)
                stack.extend(children[ref])
        out[trace_id] = {
            "spans": spans,
            "roots": sorted(roots),
            "unreachable": sorted(set(spans) - reached),
        }
    return out


def validate_trace_connectivity(obj, expect_pids=None):
    """Problems with cross-process trace stitching (empty = valid).

    Every distributed trace id in the document must form one connected
    span tree: a single root, every other span reachable from it
    through in-process parents or stitched remote parents.
    ``expect_pids`` (iterable, optional) additionally requires at least
    one trace to span all the given pids — the CI telemetry-smoke check
    that a client request really crossed into the daemon's process.
    """
    problems = []
    forest = trace_forest(obj)
    if expect_pids is not None and not forest:
        return ["no distributed-trace spans in the document"]
    for trace_id, tree in forest.items():
        if len(tree["roots"]) != 1:
            problems.append(
                f"trace {trace_id}: {len(tree['roots'])} roots "
                f"({', '.join(tree['roots'][:4])}) — expected exactly 1"
            )
        if tree["unreachable"]:
            problems.append(
                f"trace {trace_id}: {len(tree['unreachable'])} span(s) "
                f"unreachable from the root: "
                + ", ".join(tree["unreachable"][:4])
            )
    if expect_pids is not None:
        want = {int(p) for p in expect_pids}
        if not any(
            want <= {ev.get("pid") for ev in tree["spans"].values()}
            for tree in forest.values()
        ):
            problems.append(
                f"no single trace spans all of pids {sorted(want)}"
            )
    return problems
