"""Self-contained HTML dashboard over the observability artifacts.

Renders, from a recorder (live) or from exported artifact files
(Chrome trace / JSONL event log / metrics dump), a single static HTML
page with:

* a per-process **span waterfall** (the phase breakdown of every routine
  lane, pool workers included),
* **gap-timeline** charts — one incumbent/best-bound convergence plot
  per solve span that carried a ``gap_timeline`` attribute,
* **cut-effectiveness bars** from ``cut.effect`` instant events (bound
  delta and re-solve cost per appended bundling cut),
* the **paper-metric table** (Table 1/2 shape) aggregated from the
  ``paper_metrics`` attribute of every ``optimize`` span,
* the **schedule-cache panel** (:mod:`repro.serve` hit mix, coalescing
  and store health, from :func:`repro.obs.insight.serve_summary`),
* the **fleet-telemetry panel** — outcome mix, reconstructed counters
  and per-family activity from a telemetry-journal rollup
  (:func:`repro.obs.telemetry.journal_rollup`), when one is given,
* counter / gauge / histogram tables from the metrics dump.

The page is **zero-dependency and self-contained by construction**: all
styling is one inline ``<style>`` block, all charts are inline SVG, and
there is no JavaScript, no external fetch, no image, no font.  CI builds
it from the traced smoke run and :func:`validate_self_contained` rejects
any external reference that would make the artifact phone home.
"""

from __future__ import annotations

import html
import json

from repro.obs.insight import (
    aggregate_paper_metrics,
    decompose_summary,
    portfolio_summary,
    serve_summary,
    swp_summary,
)

# Substrings that would make the page reach outside itself. ``src=`` and
# ``url(`` cover images/fonts/CSS imports; ``<script`` bans JS outright
# (the page must render identically with JS disabled).
_EXTERNAL_MARKERS = (
    "http://", "https://", "src=", "<link", "<script", "@import", "url(",
)

_CSS = """
body { font-family: monospace; margin: 1.5em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #bbb; padding: 2px 8px; text-align: right; }
th { background: #eee; } td.name { text-align: left; }
svg { background: #fafafa; border: 1px solid #ddd; }
.lane { font-size: 0.85em; color: #555; margin-top: 1em; }
.note { color: #777; font-size: 0.85em; }
"""


def _esc(value):
    return html.escape(str(value), quote=True)


def _fmt(value):
    """Compact numeric rendering for table cells."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# -- input normalization ------------------------------------------------------
def _normalize_events(doc):
    """Flatten any supported artifact into span/instant event dicts.

    Accepts a Chrome ``trace_event`` document (``{"traceEvents": [...]}``),
    a list of recorder-style event dicts (the JSONL lines, meta line
    included or not), or ``None``.  Output events carry ``name``, ``ph``
    (``"X"`` span / ``"i"`` instant), ``pid``, ``ts_us``, ``dur_us`` and
    ``args``.
    """
    if doc is None:
        return []
    if isinstance(doc, dict):
        raw = doc.get("traceEvents", [])
    else:
        raw = doc
    events = []
    for ev in raw:
        if not isinstance(ev, dict) or ev.get("type") == "meta":
            continue
        if "ph" in ev:  # chrome trace form (microseconds)
            ph = ev["ph"]
            if ph == "M":
                continue
            events.append({
                "name": ev.get("name", "?"),
                "ph": "X" if ph == "X" else "i",
                "pid": ev.get("pid", 0),
                "ts_us": float(ev.get("ts", 0.0)),
                "dur_us": float(ev.get("dur", 0.0)),
                "args": ev.get("args", {}) or {},
            })
        else:  # recorder / JSONL form (seconds)
            kind = "X" if ev.get("type") == "span" else "i"
            events.append({
                "name": ev.get("name", "?"),
                "ph": kind,
                "pid": ev.get("pid", 0),
                "ts_us": float(ev.get("ts", 0.0)) * 1e6,
                "dur_us": float(ev.get("dur", 0.0) or 0.0) * 1e6,
                "args": ev.get("args", {}) or {},
            })
    return events


def load_artifact(path):
    """Parse one artifact file into ``("trace"|"metrics", payload)``.

    Detects the three on-disk formats the exporters produce: a Chrome
    trace (object with ``traceEvents``), a metrics dump (object with
    ``counters``/``gauges``/``histograms``) and a JSONL event log.
    """
    with open(path) as handle:
        text = handle.read()
    try:
        doc = json.loads(text)
    except ValueError:
        doc = [json.loads(line) for line in text.splitlines() if line.strip()]
        return "trace", doc
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "trace", doc
    if isinstance(doc, dict) and "counters" in doc:
        return "metrics", doc
    raise ValueError(f"{path}: not a trace, event log or metrics dump")


# -- sections -----------------------------------------------------------------
def _waterfall_svg(events, max_rows=80):
    """Per-pid span waterfall: one SVG, one lane block per process."""
    spans = [ev for ev in events if ev["ph"] == "X"]
    if not spans:
        return "<p class='note'>no spans recorded</p>"
    t0 = min(ev["ts_us"] for ev in spans)
    t1 = max(ev["ts_us"] + ev["dur_us"] for ev in spans)
    width, row_h, label_w = 940.0, 14, 220
    scale = (width - label_w - 10) / max(t1 - t0, 1.0)
    by_pid = {}
    for ev in spans:
        by_pid.setdefault(ev["pid"], []).append(ev)
    parts = []
    dropped = 0
    for pid in sorted(by_pid):
        rows = sorted(by_pid[pid], key=lambda ev: ev["ts_us"])
        if len(rows) > max_rows:
            dropped += len(rows) - max_rows
            rows = rows[:max_rows]
        height = row_h * len(rows) + 4
        parts.append(f"<div class='lane'>pid {_esc(pid)}</div>")
        parts.append(
            f"<svg width='{width:.0f}' height='{height}' "
            f"viewBox='0 0 {width:.0f} {height}'>"
        )
        for i, ev in enumerate(rows):
            x = label_w + (ev["ts_us"] - t0) * scale
            w = max(ev["dur_us"] * scale, 1.0)
            y = 2 + i * row_h
            routine = ev["args"].get("routine", "")
            label = ev["name"] + (f" [{routine}]" if routine else "")
            ms = ev["dur_us"] / 1000.0
            parts.append(
                f"<text x='2' y='{y + 10}' font-size='10'>"
                f"{_esc(label)[:34]}</text>"
                f"<rect x='{x:.1f}' y='{y}' width='{w:.1f}' "
                f"height='{row_h - 3}' fill='#4a7db3'>"
                f"<title>{_esc(label)}: {ms:.3f} ms</title></rect>"
            )
        parts.append("</svg>")
    if dropped:
        parts.append(
            f"<p class='note'>{dropped} spans beyond the first "
            f"{max_rows} per process not drawn</p>"
        )
    return "\n".join(parts)


def _timeline_svg(timeline, label):
    """One gap-convergence chart (gap over elapsed seconds)."""
    samples = timeline.get("samples", [])
    points = [
        (s["t"], s["gap"]) for s in samples if s.get("gap") is not None
    ]
    width, height, pad = 460.0, 120.0, 24.0
    t_max = max((s["t"] for s in samples), default=0.0) or 1e-9
    g_max = max((g for _, g in points), default=0.0) or 1.0
    sx = (width - 2 * pad) / t_max
    sy = (height - 2 * pad) / g_max

    def xy(t, g):
        return pad + t * sx, height - pad - g * sy

    parts = [
        f"<svg width='{width:.0f}' height='{height:.0f}' "
        f"viewBox='0 0 {width:.0f} {height:.0f}'>",
        f"<text x='{pad}' y='14' font-size='11'>{_esc(label)}</text>",
        f"<line x1='{pad}' y1='{height - pad}' x2='{width - pad}' "
        f"y2='{height - pad}' stroke='#999'/>",
        f"<line x1='{pad}' y1='{pad}' x2='{pad}' y2='{height - pad}' "
        f"stroke='#999'/>",
    ]
    if points:
        coords = " ".join(
            f"{x:.1f},{y:.1f}" for x, y in (xy(t, g) for t, g in points)
        )
        parts.append(
            f"<polyline points='{coords}' fill='none' "
            f"stroke='#b33a3a' stroke-width='1.5'/>"
        )
        for t, g in points:
            x, y = xy(t, g)
            parts.append(
                f"<circle cx='{x:.1f}' cy='{y:.1f}' r='2.5' fill='#b33a3a'>"
                f"<title>t={t:.4g}s gap={g:.4g}</title></circle>"
            )
    status = timeline.get("status") or (
        "closed" if timeline.get("closed") else "OPEN"
    )
    final = timeline.get("final_gap")
    summary = (
        f"{len(samples)} samples, {_fmt(final)} final gap, {_esc(status)}"
    )
    parts.append(
        f"<text x='{pad}' y='{height - 6}' font-size='10' fill='#555'>"
        f"{summary}</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)


def _gap_section(events):
    charts = []
    for ev in events:
        timeline = ev["args"].get("gap_timeline")
        if not isinstance(timeline, dict) or not timeline.get("samples"):
            continue
        routine = ev["args"].get("routine", "")
        label = ev["name"] + (f" [{routine}]" if routine else "")
        charts.append(_timeline_svg(timeline, label))
    if not charts:
        return "<p class='note'>no gap timelines recorded</p>"
    return "\n".join(charts)


def _cut_section(events):
    effects = [
        ev["args"] for ev in events
        if ev["ph"] == "i" and ev["name"] == "cut.effect"
    ]
    if not effects:
        return "<p class='note'>no bundling cuts recorded</p>"
    max_cost = max(
        (float(e.get("resolve_seconds") or 0.0) for e in effects),
        default=0.0,
    ) or 1e-9
    rows = []
    for e in effects:
        cost = float(e.get("resolve_seconds") or 0.0)
        bar_w = max(1.0, 160.0 * cost / max_cost)
        bar = (
            f"<svg width='170' height='12' viewBox='0 0 170 12'>"
            f"<rect x='0' y='1' width='{bar_w:.1f}' height='10' "
            f"fill='#4a7db3'><title>{cost:.4g} s</title></rect></svg>"
        )
        rows.append(
            "<tr>"
            f"<td>{_fmt(e.get('cut_index'))}</td>"
            f"<td>{_fmt(e.get('members'))}</td>"
            f"<td>{_fmt(e.get('bound_delta'))}</td>"
            f"<td>{_fmt(float(e.get('resolve_seconds') or 0.0))}</td>"
            f"<td>{_fmt(e.get('resolve_nodes'))}</td>"
            f"<td class='name'>{_esc(e.get('resolve_status', '-'))}</td>"
            f"<td class='name'>{bar}</td>"
            "</tr>"
        )
    return (
        "<table><tr><th>cut</th><th>members</th><th>bound delta</th>"
        "<th>re-solve s</th><th>nodes</th><th>status</th>"
        "<th>cost</th></tr>" + "".join(rows) + "</table>"
    )


_PAPER_COLUMNS = (
    ("quality", "quality"),
    ("static_reduction", "static red."),
    ("weighted_ipc_in", "IPC in"),
    ("weighted_ipc_out", "IPC out"),
    ("instructions_in", "ins in"),
    ("instructions_out", "ins out"),
    ("delta_bundles", "Δbundles"),
    ("nop_density_out", "nop dens."),
    ("compensation_copies", "comp. copies"),
    ("spec_possible", "spec poss."),
    ("spec_used", "spec used"),
)


def _paper_section(events):
    rows = []
    for ev in events:
        paper = ev["args"].get("paper_metrics")
        if isinstance(paper, dict) and paper.get("routine"):
            rows.append(paper)
    if not rows:
        return "<p class='note'>no paper metrics recorded</p>"
    summary = aggregate_paper_metrics(rows)
    header = "<tr><th>routine</th>" + "".join(
        f"<th>{_esc(label)}</th>" for _, label in _PAPER_COLUMNS
    ) + "</tr>"
    body = []
    for row in rows:
        cells = "".join(
            f"<td class='name'>{_esc(row.get(key, '-'))}</td>"
            if key == "quality" else f"<td>{_fmt(row.get(key))}</td>"
            for key, _ in _PAPER_COLUMNS
        )
        body.append(f"<tr><td class='name'>{_esc(row['routine'])}</td>"
                    f"{cells}</tr>")
    agg_cells = []
    for key, _ in _PAPER_COLUMNS:
        if key == "quality":
            tiers = summary["by_quality"]
            agg_cells.append(
                "<td class='name'>"
                + _esc(",".join(f"{k}:{v}" for k, v in sorted(tiers.items())))
                + "</td>"
            )
        elif key in summary["average"]:
            agg_cells.append(f"<td>{_fmt(summary['average'][key])}</td>")
        elif key in summary["total"]:
            agg_cells.append(f"<td>{_fmt(summary['total'][key])}</td>")
        else:
            agg_cells.append("<td>-</td>")
    body.append(
        f"<tr><th>avg/total ({summary['routines']})</th>"
        + "".join(agg_cells) + "</tr>"
    )
    return f"<table>{header}{''.join(body)}</table>"


def _decompose_rows(metrics):
    """Partition rows for the cache panel (region decomposition).

    Empty string when no routine decomposed — the panel then shows only
    the whole-schedule cache series.
    """
    digest = decompose_summary(metrics)
    if not digest["partitions"] and not digest["solves"]:
        return ""
    rows = "".join(
        f"<tr><td class='name'>{_esc(label)}</td><td>{_fmt(value)}</td></tr>"
        for label, value in (
            ("partitions solved", digest["partitions"]),
            ("partition cache hits", digest["cache_hits"]),
            ("partition cache misses", digest["cache_misses"]),
            ("partition hit rate", digest["hit_rate"]),
            ("partition solve time (s)", digest["solve_seconds"]),
            ("mean per-partition solve (s)", digest["mean_solve_seconds"]),
        )
    )
    return (
        "<h3>region decomposition</h3>"
        f"<table><tr><th>series</th><th>value</th></tr>{rows}</table>"
    )


def _cache_section(metrics):
    """Schedule-cache panel: hit mix bar plus the serve health digest."""
    digest = serve_summary(metrics)
    if not digest["requests"] and not digest["size_bytes"]:
        return (
            "<p class='note'>no schedule-cache activity recorded</p>"
            + _decompose_rows(metrics)
        )
    hits = digest["hits"]
    total = max(digest["requests"], 1)
    colors = {"exact": "#3a8f3a", "family": "#c9a23a", "miss": "#b33a3a"}
    x, bar = 0.0, []
    for kind in ("exact", "family", "miss"):
        w = 400.0 * hits[kind] / total
        if w > 0:
            bar.append(
                f"<rect x='{x:.1f}' y='1' width='{max(w, 1.0):.1f}' "
                f"height='14' fill='{colors[kind]}'>"
                f"<title>{kind}: {hits[kind]:g}</title></rect>"
            )
            x += w
    svg = (
        "<svg width='410' height='16' viewBox='0 0 410 16'>"
        + "".join(bar) + "</svg>"
    )
    rows = "".join(
        f"<tr><td class='name'>{_esc(label)}</td><td>{_fmt(value)}</td></tr>"
        for label, value in (
            ("requests", digest["requests"]),
            ("exact hits", hits["exact"]),
            ("family hits", hits["family"]),
            ("misses (cold solves)", hits["miss"]),
            ("hit rate", digest["hit_rate"]),
            ("coalesced requests", digest["coalesced"]),
            ("store errors (absorbed)", digest["store_errors"]),
            ("corrupt entries dropped", digest["corrupt_entries"]),
            ("evictions", digest["evictions"]),
            ("admission timeouts", digest["admission_timeouts"]),
            ("store size (bytes)", digest["size_bytes"]),
            ("connections shed (busy)", digest["shed"]),
            ("drain-flushed connections", digest["drained"]),
            ("accept errors (absorbed)", digest["accept_errors"]),
            ("queue depth (last)", digest["queue_depth"]),
            ("in-flight (last)", digest["inflight"]),
        )
    )
    return (
        f"<p class='note'>hit mix (exact / family / miss)</p>{svg}"
        f"<table><tr><th>series</th><th>value</th></tr>{rows}</table>"
        + _decompose_rows(metrics)
    )


def _portfolio_section(metrics):
    """Solver-portfolio panel: per-runner win/loss table + race health."""
    digest = portfolio_summary(metrics)
    if not digest["races"]:
        return "<p class='note'>no portfolio races recorded</p>"
    runners = sorted(
        set(digest["wins"]) | set(digest["losses"]) | set(digest["cancelled"])
    )
    runner_rows = "".join(
        "<tr>"
        f"<td class='name'>{_esc(runner)}</td>"
        f"<td>{_fmt(digest['wins'].get(runner, 0))}</td>"
        f"<td>{_fmt(digest['losses'].get(runner, 0))}</td>"
        f"<td>{_fmt(digest['win_rate'].get(runner, 0.0))}</td>"
        f"<td>{_fmt(digest['cancelled'].get(runner, 0))}</td>"
        "</tr>"
        for runner in runners
    )
    proof_mix = ", ".join(
        f"{kind}: {count:g}"
        for kind, count in sorted(digest["proofs"].items())
    ) or "none"
    health_rows = "".join(
        f"<tr><td class='name'>{_esc(label)}</td><td>{_fmt(value)}</td></tr>"
        for label, value in (
            ("races", digest["races"]),
            ("seed transfers (adopted)", digest["seed_transfers"]),
            ("incumbents published", digest["incumbents_published"]),
            ("lane faults (absorbed)", digest["lane_faults"]),
            ("proofs", proof_mix),
        )
    )
    return (
        "<table><tr><th>runner</th><th>wins</th><th>losses</th>"
        f"<th>win rate</th><th>cancelled</th></tr>{runner_rows}</table>"
        f"<table><tr><th>series</th><th>value</th></tr>{health_rows}</table>"
    )


def _swp_section(metrics):
    """Software-pipelining panel: status mix + II-quality health rows."""
    digest = swp_summary(metrics)
    if not digest["loops"]:
        return "<p class='note'>no software-pipelined loops recorded</p>"
    status_rows = "".join(
        f"<tr><td class='name'>{_esc(status)}</td><td>{_fmt(count)}</td></tr>"
        for status, count in sorted(digest["by_status"].items())
    )
    fallback_mix = ", ".join(
        f"{reason}: {count:g}"
        for reason, count in sorted(digest["fallbacks"].items())
    ) or "none"
    oracle = digest["oracle"]
    health_rows = "".join(
        f"<tr><td class='name'>{_esc(label)}</td><td>{_fmt(value)}</td></tr>"
        for label, value in (
            ("loops attempted", digest["loops"]),
            ("pipelined", digest["pipelined"]),
            ("pipelined rate", digest["pipelined_rate"]),
            ("II = MII (modulo-optimal)", digest["ii_at_mii"]),
            ("II = MII rate", digest["ii_at_mii_rate"]),
            ("mean II / MII", digest["mean_ii_over_mii"]),
            ("oracle pass / fail",
             f"{oracle.get('pass', 0):g} / {oracle.get('fail', 0):g}"),
            ("fallbacks", fallback_mix),
            ("kernel cache hit rate", digest["cache_hit_rate"]),
        )
    )
    return (
        "<table><tr><th>ladder status</th><th>loops</th></tr>"
        f"{status_rows}</table>"
        f"<table><tr><th>series</th><th>value</th></tr>{health_rows}</table>"
    )


def _telemetry_section(telemetry):
    """Fleet-telemetry panel from a journal rollup dict."""
    if not telemetry or not telemetry.get("records"):
        return "<p class='note'>no telemetry journal provided</p>"
    outcomes = telemetry.get("outcomes") or {}
    non_probe = max(telemetry.get("requests") or 0, 1)
    colors = {
        "ok": "#3a8f3a", "busy": "#c9a23a", "error": "#b33a3a",
        "drained": "#7a5fb0", "fault": "#b06a3a",
    }
    x, bar = 0.0, []
    for outcome in ("ok", "busy", "error", "drained", "fault"):
        count = outcomes.get(outcome, 0)
        w = 400.0 * count / non_probe
        if w > 0:
            bar.append(
                f"<rect x='{x:.1f}' y='1' width='{max(w, 1.0):.1f}' "
                f"height='14' fill='{colors[outcome]}'>"
                f"<title>{outcome}: {count}</title></rect>"
            )
            x += w
    svg = (
        "<svg width='410' height='16' viewBox='0 0 410 16'>"
        + "".join(bar) + "</svg>"
    )
    counters = telemetry.get("counters") or {}
    latency = telemetry.get("latency") or {}
    total_lat = latency.get("total") or {}
    queue_lat = latency.get("queue_wait") or {}
    rows = "".join(
        f"<tr><td class='name'>{_esc(label)}</td><td>{_fmt(value)}</td></tr>"
        for label, value in (
            ("journal records", telemetry.get("records")),
            ("request exits (non-probe)", telemetry.get("requests")),
            ("distinct traces", telemetry.get("distinct_traces")),
            ("completed", counters.get("completed")),
            ("rejected", counters.get("rejected")),
            ("shed (busy)", counters.get("shed")),
            ("drained", counters.get("drained")),
            ("probes", counters.get("probes")),
            ("cache hit rate", telemetry.get("cache_hit_rate")),
            ("p99 total (s)", total_lat.get("p99_seconds")),
            ("p99 queue wait (s)", queue_lat.get("p99_seconds")),
            ("journal write errors", telemetry.get("write_errors")),
        )
    )
    families = telemetry.get("families") or {}
    family_rows = "".join(
        "<tr>"
        f"<td class='name'>{_esc(family[:16])}</td>"
        f"<td>{_fmt(entry.get('requests'))}</td>"
        f"<td>{_fmt((entry.get('cache_kinds') or {}).get('exact', 0))}</td>"
        f"<td>{_fmt((entry.get('cache_kinds') or {}).get('miss', 0))}</td>"
        f"<td>{_esc(', '.join(f'{s}:{n}' for s, n in sorted((entry.get('portfolio_wins') or {}).items())) or '-')}</td>"
        "</tr>"
        for family, entry in sorted(
            families.items(), key=lambda kv: -(kv[1].get("requests") or 0)
        )[:12]
    )
    family_table = (
        "<table><tr><th>family</th><th>reqs</th><th>exact</th>"
        f"<th>miss</th><th>portfolio wins</th></tr>{family_rows}</table>"
        if family_rows
        else ""
    )
    return (
        "<p class='note'>request exit mix "
        "(ok / busy / error / drained / fault)</p>"
        f"{svg}<table><tr><th>series</th><th>value</th></tr>{rows}</table>"
        + family_table
    )


def _metrics_section(metrics):
    if not metrics:
        return "<p class='note'>no metrics dump provided</p>"
    parts = []
    for section in ("counters", "gauges"):
        series = metrics.get(section, {})
        if not series:
            continue
        rows = "".join(
            f"<tr><td class='name'>{_esc(name)}</td>"
            f"<td>{_fmt(value)}</td></tr>"
            for name, value in sorted(series.items())
        )
        parts.append(
            f"<h3>{section}</h3><table><tr><th>series</th><th>value</th>"
            f"</tr>{rows}</table>"
        )
    hists = metrics.get("histograms", {})
    if hists:
        rows = "".join(
            "<tr>"
            f"<td class='name'>{_esc(name)}</td>"
            f"<td>{_fmt(h.get('count'))}</td>"
            f"<td>{_fmt(h.get('sum'))}</td>"
            f"<td>{_fmt((h.get('sum') or 0) / h['count']) if h.get('count') else '-'}</td>"
            "</tr>"
            for name, h in sorted(hists.items())
        )
        parts.append(
            "<h3>histograms</h3><table><tr><th>series</th><th>count</th>"
            f"<th>sum</th><th>mean</th></tr>{rows}</table>"
        )
    return "\n".join(parts) or "<p class='note'>metrics dump is empty</p>"


# -- entry points -------------------------------------------------------------
def render_dashboard(trace=None, metrics=None, title="tia observatory",
                     telemetry=None):
    """Build the dashboard HTML string from artifact payloads.

    ``trace`` is a Chrome-trace document or a JSONL event list (see
    :func:`load_artifact`), ``metrics`` a flat metrics dump dict,
    ``telemetry`` a journal rollup
    (:func:`repro.obs.telemetry.journal_rollup`); any may be ``None``
    and its sections degrade to a note.
    """
    events = _normalize_events(trace)
    spans = sum(1 for ev in events if ev["ph"] == "X")
    doc = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p class='note'>{spans} spans, {len(events) - spans} instant "
        "events; static page, no scripts, no external resources.</p>",
        "<h2>Span waterfall</h2>", _waterfall_svg(events),
        "<h2>Gap timelines</h2>", _gap_section(events),
        "<h2>Bundling-cut effectiveness</h2>", _cut_section(events),
        "<h2>Paper metrics (Table 1/2 shape)</h2>", _paper_section(events),
        "<h2>Schedule cache</h2>", _cache_section(metrics),
        "<h2>Solver portfolio</h2>", _portfolio_section(metrics),
        "<h2>Software pipelining</h2>", _swp_section(metrics),
        "<h2>Fleet telemetry</h2>", _telemetry_section(telemetry),
        "<h2>Metrics</h2>", _metrics_section(metrics),
        "</body></html>",
    ]
    return "\n".join(doc)


def dashboard_from_recorder(recorder=None, title="tia observatory"):
    """Render straight from a live recorder (no artifact files needed)."""
    from repro.obs import export

    return render_dashboard(
        trace=export.chrome_trace(recorder),
        metrics=export.metrics_dict(recorder),
        title=title,
    )


def write_dashboard(path, trace=None, metrics=None, title="tia observatory",
                    telemetry=None):
    """Render and write; raises if the output is not self-contained."""
    text = render_dashboard(
        trace=trace, metrics=metrics, title=title, telemetry=telemetry
    )
    problems = validate_self_contained(text)
    if problems:
        raise ValueError(
            "dashboard is not self-contained: " + "; ".join(problems)
        )
    with open(path, "w") as handle:
        handle.write(text)
    return len(text)


def validate_self_contained(text):
    """External references in dashboard HTML (empty list = self-contained)."""
    problems = []
    lowered = text.lower()
    for marker in _EXTERNAL_MARKERS:
        index = lowered.find(marker)
        if index >= 0:
            snippet = text[index:index + 60].splitlines()[0]
            problems.append(f"found {marker!r}: {snippet!r}")
    return problems
