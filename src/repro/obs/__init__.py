"""``repro.obs`` — spans, metrics, solver telemetry, trace aggregation.

The pipeline makes many invisible decisions per routine — which
node-selection policy fired, how many bundling cuts were appended, how
much of the deadline each phase consumed, which fallback tier a routine
landed on.  This package is the window: hierarchical spans with
monotonic timing, a metrics registry with fixed-bucket histograms, a
JSONL event log, exporters to Chrome ``trace_event`` format (open in
``chrome://tracing`` / Perfetto) and Prometheus text, and cross-process
aggregation for the routine fan-out pool.

Everything is **off by default and free when off**: call sites guard on
the module-level ``ENABLED`` flag, and :func:`span` returns a shared
no-op singleton while disabled.  Turn it on with :func:`enable`, the
``REPRO_OBS=1`` environment variable, or ``tia-opt --trace/--metrics``.

Typical use::

    from repro import obs

    obs.enable()
    with obs.span("solve.phase1", routine="qSort3"):
        ...
    obs.counter("bundling_cuts_total", 2, routine="qSort3")
    obs.histogram("solve_seconds", 1.7, backend="highs")

    from repro.obs import export
    export.write_chrome_trace("trace.json")
    export.write_metrics("metrics.json")   # or metrics.prom

See ``docs/observability.md`` for the event schema and exporter formats.
"""

from repro.obs.core import (
    ENV_VAR,
    NOOP_SPAN,
    Recorder,
    Span,
    Trace,
    complete_span,
    counter,
    current_span_ref,
    current_trace,
    disable,
    enable,
    enabled,
    event,
    gauge,
    histogram,
    merge_snapshot,
    name_thread,
    new_trace_id,
    recorder,
    reset,
    snapshot,
    span,
    trace_scope,
)
from repro.obs.metrics import BUCKET_BOUNDS, DEFAULT_BUCKETS, MetricsRegistry

__all__ = [
    "ENV_VAR",
    "ENABLED",
    "NOOP_SPAN",
    "Recorder",
    "Span",
    "Trace",
    "BUCKET_BOUNDS",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "complete_span",
    "counter",
    "current_span_ref",
    "current_trace",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "histogram",
    "merge_snapshot",
    "name_thread",
    "new_trace_id",
    "recorder",
    "reset",
    "snapshot",
    "span",
    "trace_scope",
]


def __getattr__(name):
    # ENABLED is mutable module state on repro.obs.core; forward reads so
    # ``obs.ENABLED`` (the documented hot-path guard) always sees the
    # current value instead of a stale import-time copy.
    if name == "ENABLED":
        from repro.obs import core

        return core.ENABLED
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
