"""``repro.obs.journal`` — the crash-safe persistent telemetry journal.

Everything the obs layer records dies with its process: metrics dumps
are per-run, the fleet daemon's counters evaporate at exit, and the
portfolio's per-family win rates — the feed the ROADMAP auto-tuner
needs — never touch disk.  This module is the durable substrate: an
**append-only JSONL journal** written by the serving tier on every
request exit path and read back by ``tia-telemetry`` (and, eventually,
``tia-tune``).

Layout under the journal root::

    shard-<created_ns>-<pid>-<seq>.jsonl     append-only record shards
    quarantine/                              shards that failed verify

Durability discipline (the same rules as :mod:`repro.serve.store`):

* **Append-only, checksummed records.**  One JSON object per line; each
  record carries ``"v"`` (schema version) and ``"crc"`` — the sha256
  prefix of the record's canonical JSON *without* the crc field.  A
  torn tail line from a crash mid-append fails the checksum and is
  skipped on read; it can never corrupt earlier records, because
  earlier bytes are never rewritten.
* **Atomic shard rotation.**  When the active shard exceeds
  ``shard_bytes`` it is flushed, fsynced and closed — *sealed* shards
  are immutable from then on — and a fresh shard (strictly increasing
  sequence number) becomes active.  There is no rename window: a shard
  file is complete at every byte boundary.
* **Size-budgeted GC.**  :meth:`TelemetryJournal.gc` deletes whole
  sealed shards oldest-first until the journal fits the budget; the
  active shard is never deleted.
* **Quarantine on corrupt.**  :meth:`TelemetryJournal.verify` moves any
  shard with an invalid *non-tail* line (mid-file corruption — bit rot,
  truncation, editor damage) into ``quarantine/`` so it cannot poison
  rollups, while plain readers (:func:`read_records`) simply skip
  invalid lines and never mutate the journal.
* **Never into the request path.**  :meth:`TelemetryJournal.append`
  swallows every failure (counted as ``journal_write_errors_total`` and
  returned as ``False``); the ``obs.journal`` fault-injection site
  makes the chaos suite prove that promise.

Records are plain dicts.  The ``request`` kind — one per fleet request
exit (ok / busy / error / drained / fault / probe) — is built by
:func:`request_record` and validated by :func:`validate_record`; see
``docs/observability.md`` for the field-by-field schema.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time

from repro.obs import core as obs
from repro.tools import faults

SCHEMA_VERSION = 1
_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".jsonl"

# Record kinds the schema knows. "request" is one fleet request exit;
# "portfolio_summary" is the drain-time persistence of the per-family
# portfolio win-rate counters; "note" is free-form (markers, tests).
RECORD_KINDS = ("request", "portfolio_summary", "note")

# Outcomes a request record may carry — the fleet daemon's exit paths.
REQUEST_OUTCOMES = ("ok", "busy", "error", "drained", "fault", "probe")


def _crc(record):
    """Checksum of a record's canonical JSON without its crc field."""
    body = {k: v for k, v in record.items() if k != "crc"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def seal_record(record):
    """Stamp schema version + checksum onto ``record`` (returns it)."""
    record.setdefault("v", SCHEMA_VERSION)
    record["crc"] = _crc(record)
    return record


def check_record(record):
    """``True`` when the record's checksum matches its body."""
    crc = record.get("crc")
    return isinstance(crc, str) and crc == _crc(record)


def validate_record(record):
    """Schema problems with one journal record (empty = valid)."""
    problems = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    if record.get("v") != SCHEMA_VERSION:
        problems.append(f"schema version {record.get('v')!r} != {SCHEMA_VERSION}")
    if not check_record(record):
        problems.append("checksum mismatch")
    kind = record.get("kind")
    if kind not in RECORD_KINDS:
        problems.append(f"unknown kind {kind!r}")
    if not isinstance(record.get("ts"), (int, float)):
        problems.append("missing numeric 'ts'")
    if kind == "request":
        if record.get("outcome") not in REQUEST_OUTCOMES:
            problems.append(f"unknown outcome {record.get('outcome')!r}")
        timings = record.get("timings")
        if timings is not None:
            if not isinstance(timings, dict):
                problems.append("'timings' is not an object")
            else:
                for key, value in timings.items():
                    if value is not None and not isinstance(value, (int, float)):
                        problems.append(f"timing {key!r} is not numeric")
        routines = record.get("routines")
        if routines is not None and not isinstance(routines, list):
            problems.append("'routines' is not a list")
    return problems


def request_record(
    outcome,
    *,
    trace_id=None,
    request_id=None,
    family=None,
    routines=None,
    features=None,
    timings=None,
    cache_kinds=None,
    portfolio=None,
    shed_reason=None,
    error=None,
    fault=None,
    replica=None,
):
    """Build (and seal) one ``request`` record.

    ``outcome`` is the exit path (:data:`REQUEST_OUTCOMES`);
    ``routines`` is a list of ``{routine, kind, quality}`` dicts;
    ``features`` the effective wire-safe :class:`ScheduleFeatures`
    knobs; ``timings`` ``{queue_wait, solve, total}`` seconds;
    ``portfolio`` ``{winner, seed_transfers}`` when a race ran.
    """
    record = {
        "v": SCHEMA_VERSION,
        "kind": "request",
        "ts": time.time(),
        "outcome": outcome,
    }
    if trace_id is not None:
        record["trace_id"] = str(trace_id)
    if request_id is not None:
        record["request_id"] = str(request_id)
    if family is not None:
        record["family"] = family
    if routines:
        record["routines"] = list(routines)
    if features:
        record["features"] = dict(features)
    if timings:
        record["timings"] = {
            k: (None if v is None else float(v)) for k, v in timings.items()
        }
    if cache_kinds:
        record["cache_kinds"] = dict(cache_kinds)
    if portfolio:
        record["portfolio"] = dict(portfolio)
    if shed_reason is not None:
        record["shed_reason"] = shed_reason
    if error is not None:
        record["error"] = str(error)
    if fault is not None:
        record["fault"] = str(fault)
    if replica is not None:
        record["replica"] = str(replica)
    return seal_record(record)


class TelemetryJournal:
    """Append-only JSONL journal with shard rotation and GC.

    Thread-safe: the fleet daemon's worker threads append concurrently
    under one lock (appends are tiny — a dict dump and a buffered
    write).  ``shard_bytes`` bounds the active shard before rotation;
    ``size_budget`` (bytes, ``None`` = unbounded) makes every rotation
    also GC oldest sealed shards down to the budget.
    """

    def __init__(self, root, *, shard_bytes=4 * 1024 * 1024,
                 size_budget=256 * 1024 * 1024):
        self.root = str(root)
        self.shard_bytes = int(shard_bytes)
        self.size_budget = size_budget
        self.write_errors = 0
        self.appended = 0
        self._lock = threading.Lock()
        self._handle = None
        self._active = None
        self._active_bytes = 0
        self._seq = 0
        os.makedirs(self.root, exist_ok=True)
        os.makedirs(os.path.join(self.root, "quarantine"), exist_ok=True)

    # -- shard management ----------------------------------------------------
    def _shard_name(self):
        self._seq += 1
        return (
            f"{_SHARD_PREFIX}{time.time_ns()}-{os.getpid()}-{self._seq:04d}"
            f"{_SHARD_SUFFIX}"
        )

    def _open_shard(self):
        name = self._shard_name()
        path = os.path.join(self.root, name)
        # "x": a fresh shard must never clobber an existing one — the
        # name carries a nanosecond stamp + pid + sequence, so a
        # collision means something is badly wrong and should surface.
        handle = open(path, "xb")
        self._handle = handle
        self._active = path
        self._active_bytes = 0

    def _seal_active(self):
        """Flush, fsync and close the active shard (it becomes immutable)."""
        handle, self._handle = self._handle, None
        self._active = None
        if handle is None:
            return
        try:
            handle.flush()
            os.fsync(handle.fileno())
        except (OSError, ValueError):
            pass
        finally:
            try:
                handle.close()
            except OSError:
                pass

    # -- public --------------------------------------------------------------
    def append(self, record):
        """Append one record; **never raises**.  Returns ``True`` on
        success, ``False`` when the write failed (counted, and — when
        recording is on — ``journal_write_errors_total`` incremented).
        The ``obs.journal`` fault site fires here."""
        try:
            seal_record(record)
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            data = line.encode("utf-8") + b"\n"
            with self._lock:
                if faults.fire("obs.journal") is not None:
                    raise OSError("injected journal I/O fault")
                if self._handle is None:
                    self._open_shard()
                self._handle.write(data)
                self._handle.flush()
                self._active_bytes += len(data)
                self.appended += 1
                if self._active_bytes >= self.shard_bytes:
                    self._seal_active()
                    if self.size_budget is not None:
                        self._gc_locked(self.size_budget)
            return True
        except Exception as exc:
            with self._lock:
                self.write_errors += 1
                # A failed handle may be wedged (disk full, closed fd):
                # drop it so the next append starts a fresh shard
                # instead of failing forever.
                try:
                    self._seal_active()
                except Exception:
                    pass
            if obs.ENABLED:
                obs.counter("journal_write_errors_total")
                obs.event("obs.journal_error", error=str(exc))
            return False

    def close(self):
        """Seal the active shard (idempotent)."""
        with self._lock:
            self._seal_active()

    def shards(self):
        """``[(path, size, created_ns)]`` sorted oldest-first."""
        return journal_shards(self.root)

    def size_bytes(self):
        return sum(size for _path, size, _c in self.shards())

    def gc(self, max_bytes=None):
        """Delete sealed shards oldest-first until ≤ ``max_bytes``.

        The active shard is never deleted.  Returns deleted paths.
        """
        if max_bytes is None:
            max_bytes = self.size_budget
        if max_bytes is None:
            return []
        with self._lock:
            return self._gc_locked(max_bytes)

    def _gc_locked(self, max_bytes):
        rows = journal_shards(self.root)
        total = sum(size for _p, size, _c in rows)
        deleted = []
        for path, size, _created in rows:
            if total <= max_bytes:
                break
            if path == self._active:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            deleted.append(path)
        if deleted and obs.ENABLED:
            obs.counter("journal_shards_evicted_total", len(deleted))
        return deleted

    def verify(self):
        """Re-validate every shard; quarantine mid-file corruption.

        Returns ``(ok_records, bad_lines, quarantined_paths)``.  A bad
        *tail* line is crash litter (a torn final append) and tolerated;
        a bad line anywhere else means the shard was damaged after the
        fact, and the whole shard moves to ``quarantine/`` so rollups
        never read around silent corruption.
        """
        ok = 0
        bad = 0
        quarantined = []
        with self._lock:
            self._seal_active()
            for path, _size, _created in journal_shards(self.root):
                good, bad_positions, total_lines = _scan_shard(path)
                ok += good
                bad += len(bad_positions)
                if any(pos < total_lines - 1 for pos in bad_positions):
                    dest = os.path.join(
                        self.root, "quarantine", os.path.basename(path)
                    )
                    try:
                        os.replace(path, dest)
                        quarantined.append(path)
                    except OSError:
                        pass
        if quarantined and obs.ENABLED:
            obs.counter(
                "journal_shards_quarantined_total", len(quarantined)
            )
        return ok, bad, quarantined


# -- reading ------------------------------------------------------------------
def journal_shards(root):
    """``[(path, size, created_ns)]`` for a journal dir, oldest-first."""
    rows = []
    try:
        names = os.listdir(root)
    except OSError:
        return []
    for name in names:
        if not (name.startswith(_SHARD_PREFIX) and name.endswith(_SHARD_SUFFIX)):
            continue
        path = os.path.join(root, name)
        try:
            size = os.stat(path).st_size
        except OSError:
            continue
        stamp = name[len(_SHARD_PREFIX):-len(_SHARD_SUFFIX)]
        try:
            created = int(stamp.split("-", 1)[0])
        except ValueError:
            created = 0
        rows.append((path, size, created))
    rows.sort(key=lambda row: (row[2], row[0]))
    return rows


def _scan_shard(path):
    """``(good_count, [bad line indexes], total_lines)`` for one shard."""
    good = 0
    bad = []
    total = 0
    try:
        with open(path, "rb") as handle:
            for index, raw in enumerate(handle):
                total = index + 1
                if _parse_line(raw) is None:
                    bad.append(index)
                else:
                    good += 1
    except OSError:
        return 0, [], 0
    return good, bad, total


def _parse_line(raw):
    """A validated record dict from one shard line, else ``None``."""
    line = raw.strip()
    if not line:
        return None
    try:
        record = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or not check_record(record):
        return None
    if record.get("v") != SCHEMA_VERSION:
        return None
    return record


def read_records(root, kinds=None):
    """Yield every valid record across a journal dir, oldest shard first.

    Invalid lines (torn tails, corruption) are skipped, never raised on
    and never mutated — quarantine is :meth:`TelemetryJournal.verify`'s
    job.  ``kinds`` (iterable) filters by record kind.
    """
    wanted = None if kinds is None else set(kinds)
    for path, _size, _created in journal_shards(root):
        try:
            with open(path, "rb") as handle:
                for raw in handle:
                    record = _parse_line(raw)
                    if record is None:
                        continue
                    if wanted is not None and record.get("kind") not in wanted:
                        continue
                    yield record
        except OSError:
            continue
