"""``tia-telemetry``: query + SLO layer over the telemetry journal.

The fleet daemon (``tia-serve --listen ... --journal DIR``) appends one
:mod:`repro.obs.journal` record per request exit path.  This module
turns those shards into answers::

    tia-telemetry tail DIR [-n N] [--kind KIND]     newest records, JSONL
    tia-telemetry report DIR [--json]               fleet rollup
    tia-telemetry families DIR [--json]             per-family rollup
    tia-telemetry slo DIR --rule EXPR... [--gate]   declarative SLO check
    tia-telemetry gc DIR --budget BYTES             evict oldest shards
    tia-telemetry verify DIR                        quarantine corruption

The **report** is built from the journal alone, yet reconstructs the
daemon's own ``stats`` counters exactly (one record per exit path is
the invariant that makes this possible): ``completed`` = ``ok``
records, ``shed`` = ``busy``, ``drained`` = ``drained``, ``probes`` =
``probe``, ``accept_errors`` = ``fault``, and ``rejected`` =
``busy + drained + error + fault``.  Drain-time ``portfolio_summary``
records carry each replica's own counter snapshot, so the rollup can
cross-check itself against what the daemon believed at exit.

**SLO rules** are comparisons against rollup metrics, written
``metric<=value`` / ``metric>=value`` (inline ``--rule``, repeatable)
or as a JSON list of ``{"metric": ..., "min": ...}`` /
``{"max": ...}`` objects (``--rules FILE``).  Metrics:

==================  ========================================================
``ok_rate``         ``ok`` / non-probe exits (availability)
``shed_rate``       ``busy`` / non-probe exits
``error_rate``      ``error`` / non-probe exits
``drained_rate``    ``drained`` / non-probe exits
``cache_hit_rate``  (exact + family) / routines served
``p50_total``       median end-to-end seconds of ``ok`` requests
``p99_total``       p99 end-to-end seconds of ``ok`` requests
``p99_queue_wait``  p99 queue-wait seconds of ``ok`` requests
``requests``        non-probe exits (guard: enough traffic to judge)
``write_errors``    journal write errors the replicas reported at drain
==================  ========================================================

``slo --gate`` exits 0 when every rule holds and 1 otherwise — the same
shape as ``tia-bench-diff --gate`` so CI wires both identically.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from repro.obs import journal as journal_mod

# Metrics an SLO rule may reference -> how to read them off a rollup.
SLO_METRICS = (
    "ok_rate",
    "shed_rate",
    "error_rate",
    "drained_rate",
    "cache_hit_rate",
    "p50_total",
    "p99_total",
    "p99_queue_wait",
    "requests",
    "write_errors",
)

_RULE_RE = re.compile(r"^\s*([a-z0-9_]+)\s*(<=|>=)\s*([0-9.eE+-]+)\s*$")


class SloRuleError(ValueError):
    """A malformed SLO rule expression or rules file."""


# -- rollup -------------------------------------------------------------------
def _percentiles(values):
    if not values:
        return None
    ordered = sorted(values)
    return {
        "count": len(values),
        "mean_seconds": sum(values) / len(values),
        "p50_seconds": ordered[len(ordered) // 2],
        "p99_seconds": ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))],
        "max_seconds": ordered[-1],
    }


def reconstruct_counters(outcomes):
    """The daemon's ``stats`` counters, from an outcome histogram."""
    def n(key):
        return int(outcomes.get(key, 0))

    return {
        "completed": n("ok"),
        "shed": n("busy"),
        "drained": n("drained"),
        "probes": n("probe"),
        "accept_errors": n("fault"),
        "rejected": n("busy") + n("drained") + n("error") + n("fault"),
    }


def journal_rollup(root):
    """Aggregate every valid journal record under ``root`` into one dict.

    Pure read — never mutates shards.  The rollup carries the outcome
    histogram, the reconstructed daemon counters, latency percentiles
    of served requests, the cache-hit mix, per-family activity and the
    drain-time portfolio/counter summaries, keyed exactly as the SLO
    metrics and the dashboard panel expect.
    """
    outcomes = {}
    shed_reasons = {}
    errors = {}
    faults_seen = {}
    cache_kinds = {}
    totals, queue_waits, solves = [], [], []
    families = {}
    replicas = set()
    traces = set()
    summaries = []
    records = 0
    ts_min = ts_max = None

    for record in journal_mod.read_records(root):
        records += 1
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            ts_min = ts if ts_min is None else min(ts_min, ts)
            ts_max = ts if ts_max is None else max(ts_max, ts)
        if record.get("replica"):
            replicas.add(record["replica"])
        kind = record.get("kind")
        if kind == "portfolio_summary":
            summaries.append(
                {
                    "replica": record.get("replica"),
                    "families": record.get("families") or {},
                    "counters": record.get("counters") or {},
                    "drain_reason": record.get("drain_reason"),
                    "write_errors": int(record.get("write_errors") or 0),
                }
            )
            continue
        if kind != "request":
            continue
        outcome = record.get("outcome")
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if record.get("trace_id"):
            traces.add(record["trace_id"])
        if record.get("shed_reason"):
            reason = record["shed_reason"]
            shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
        if record.get("error"):
            error = record["error"]
            errors[error] = errors.get(error, 0) + 1
        if record.get("fault"):
            fault = record["fault"]
            faults_seen[fault] = faults_seen.get(fault, 0) + 1

        timings = record.get("timings") or {}
        if outcome == "ok":
            if isinstance(timings.get("total"), (int, float)):
                totals.append(float(timings["total"]))
            if isinstance(timings.get("queue_wait"), (int, float)):
                queue_waits.append(float(timings["queue_wait"]))
            if isinstance(timings.get("solve"), (int, float)):
                solves.append(float(timings["solve"]))
            for hit_kind, count in (record.get("cache_kinds") or {}).items():
                cache_kinds[hit_kind] = cache_kinds.get(hit_kind, 0) + int(count)

        family = record.get("family")
        if family is not None:
            entry = families.setdefault(
                family,
                {
                    "requests": 0,
                    "cache_kinds": {},
                    "quality_tiers": {},
                    "portfolio_wins": {},
                    "seed_transfers": 0,
                    "totals": [],
                },
            )
            entry["requests"] += 1
            for hit_kind, count in (record.get("cache_kinds") or {}).items():
                entry["cache_kinds"][hit_kind] = (
                    entry["cache_kinds"].get(hit_kind, 0) + int(count)
                )
            for routine in record.get("routines") or ():
                quality = routine.get("quality")
                if quality:
                    entry["quality_tiers"][quality] = (
                        entry["quality_tiers"].get(quality, 0) + 1
                    )
            portfolio = record.get("portfolio") or {}
            if portfolio.get("winner"):
                winner = portfolio["winner"]
                entry["portfolio_wins"][winner] = (
                    entry["portfolio_wins"].get(winner, 0) + 1
                )
            entry["seed_transfers"] += int(portfolio.get("seed_transfers") or 0)
            if isinstance(timings.get("total"), (int, float)):
                entry["totals"].append(float(timings["total"]))

    for entry in families.values():
        entry["latency"] = _percentiles(entry.pop("totals"))

    non_probe = sum(
        count for outcome, count in outcomes.items() if outcome != "probe"
    )
    routines_served = sum(cache_kinds.values())
    hits = cache_kinds.get("exact", 0) + cache_kinds.get("family", 0)
    # Drain summaries carry each replica's own view of its counters and
    # journal write errors — the cross-check against the reconstruction.
    reported = {}
    write_errors = 0
    for summary in summaries:
        for name, value in summary["counters"].items():
            reported[name] = reported.get(name, 0) + int(value)
        write_errors += summary["write_errors"]

    return {
        "records": records,
        "requests": non_probe,
        "outcomes": outcomes,
        "counters": reconstruct_counters(outcomes),
        "reported_counters": reported or None,
        "shed_reasons": shed_reasons,
        "errors": errors,
        "faults": faults_seen,
        "cache_kinds": cache_kinds,
        "cache_hit_rate": hits / routines_served if routines_served else None,
        "latency": {
            "total": _percentiles(totals),
            "queue_wait": _percentiles(queue_waits),
            "solve": _percentiles(solves),
        },
        "families": families,
        "portfolio_summaries": summaries,
        "replicas": sorted(replicas),
        "distinct_traces": len(traces),
        "span_seconds": (
            ts_max - ts_min if ts_min is not None and ts_max is not None
            else None
        ),
        "write_errors": write_errors,
    }


# -- SLO rules ----------------------------------------------------------------
def slo_metric(rollup, metric):
    """Value of one SLO metric on a rollup; ``None`` = not measurable."""
    outcomes = rollup["outcomes"]
    non_probe = rollup["requests"]

    def rate(key):
        if not non_probe:
            return None
        return outcomes.get(key, 0) / non_probe

    if metric == "ok_rate":
        return rate("ok")
    if metric == "shed_rate":
        return rate("busy")
    if metric == "error_rate":
        return rate("error")
    if metric == "drained_rate":
        return rate("drained")
    if metric == "cache_hit_rate":
        return rollup["cache_hit_rate"]
    if metric == "requests":
        return float(non_probe)
    if metric == "write_errors":
        return float(rollup["write_errors"])
    if metric in ("p50_total", "p99_total"):
        lat = rollup["latency"]["total"]
        if lat is None:
            return None
        return lat["p50_seconds" if metric == "p50_total" else "p99_seconds"]
    if metric == "p99_queue_wait":
        lat = rollup["latency"]["queue_wait"]
        return None if lat is None else lat["p99_seconds"]
    raise SloRuleError(
        f"unknown SLO metric {metric!r} "
        f"(expected one of {', '.join(SLO_METRICS)})"
    )


def parse_rule(expr):
    """``"metric<=value"`` / ``"metric>=value"`` -> a rule dict."""
    match = _RULE_RE.match(expr)
    if not match:
        raise SloRuleError(
            f"malformed SLO rule {expr!r} (expected metric<=value or "
            "metric>=value)"
        )
    metric, op, raw = match.groups()
    if metric not in SLO_METRICS:
        raise SloRuleError(
            f"unknown SLO metric {metric!r} in {expr!r} "
            f"(expected one of {', '.join(SLO_METRICS)})"
        )
    try:
        value = float(raw)
    except ValueError:
        raise SloRuleError(f"bad threshold in {expr!r}") from None
    rule = {"metric": metric}
    rule["max" if op == "<=" else "min"] = value
    return rule


def load_rules(path):
    """Rules file: a JSON list of ``{"metric", "min"|"max"}`` objects."""
    with open(path, encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, list):
        raise SloRuleError(f"{path}: rules file must be a JSON list")
    rules = []
    for item in raw:
        if not isinstance(item, dict) or "metric" not in item:
            raise SloRuleError(f"{path}: bad rule entry {item!r}")
        if item["metric"] not in SLO_METRICS:
            raise SloRuleError(
                f"{path}: unknown SLO metric {item['metric']!r}"
            )
        if "min" not in item and "max" not in item:
            raise SloRuleError(
                f"{path}: rule {item['metric']!r} needs 'min' and/or 'max'"
            )
        rules.append(item)
    return rules


def check_slos(rollup, rules):
    """Evaluate rules; ``[{metric, value, bound, ok, reason}, ...]``."""
    results = []
    for rule in rules:
        metric = rule["metric"]
        value = slo_metric(rollup, metric)
        for bound_kind in ("min", "max"):
            if bound_kind not in rule:
                continue
            bound = float(rule[bound_kind])
            if value is None:
                ok = False
                reason = "not measurable (no matching records)"
            elif bound_kind == "min":
                ok = value >= bound
                reason = None if ok else f"{value:.6g} < min {bound:.6g}"
            else:
                ok = value <= bound
                reason = None if ok else f"{value:.6g} > max {bound:.6g}"
            results.append(
                {
                    "metric": metric,
                    "bound": f"{bound_kind} {bound:g}",
                    "value": value,
                    "ok": ok,
                    "reason": reason,
                }
            )
    return results


# -- rendering ----------------------------------------------------------------
def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_report(rollup):
    lines = []
    counters = rollup["counters"]
    lines.append(
        f"{rollup['records']} journal record(s), "
        f"{rollup['requests']} request exit(s), "
        f"{rollup['distinct_traces']} distinct trace(s)"
    )
    if rollup["replicas"]:
        lines.append("replicas: " + ", ".join(rollup["replicas"]))
    lines.append(
        "outcomes: "
        + (
            ", ".join(
                f"{k}={v}" for k, v in sorted(rollup["outcomes"].items())
            )
            or "none"
        )
    )
    lines.append(
        "counters (reconstructed): "
        + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
    )
    if rollup["reported_counters"]:
        mismatches = [
            name
            for name, value in rollup["reported_counters"].items()
            if name in counters and counters[name] != value
        ]
        lines.append(
            "counters (replica-reported): "
            + ", ".join(
                f"{k}={v}"
                for k, v in sorted(rollup["reported_counters"].items())
            )
            + (
                f"  [MISMATCH: {', '.join(mismatches)}]"
                if mismatches
                else "  [matches]"
            )
        )
    for name in ("total", "queue_wait", "solve"):
        lat = rollup["latency"][name]
        if lat:
            lines.append(
                f"{name:10s}: p50={lat['p50_seconds']:.4f}s "
                f"p99={lat['p99_seconds']:.4f}s max={lat['max_seconds']:.4f}s "
                f"(n={lat['count']})"
            )
    if rollup["cache_kinds"]:
        lines.append(
            "cache: "
            + ", ".join(
                f"{k}={v}" for k, v in sorted(rollup["cache_kinds"].items())
            )
            + f", hit_rate={_fmt(rollup['cache_hit_rate'])}"
        )
    if rollup["shed_reasons"]:
        lines.append(
            "shed reasons: "
            + ", ".join(
                f"{k}={v}" for k, v in sorted(rollup["shed_reasons"].items())
            )
        )
    if rollup["errors"]:
        top = sorted(
            rollup["errors"].items(), key=lambda kv: -kv[1]
        )[:5]
        lines.append(
            "errors: " + ", ".join(f"{k!r}={v}" for k, v in top)
        )
    if rollup["write_errors"]:
        lines.append(f"journal write errors: {rollup['write_errors']}")
    return "\n".join(lines)


def render_families(rollup):
    lines = [
        f"{'family':16s} {'reqs':>5s} {'exact':>6s} {'family':>6s} "
        f"{'miss':>5s} {'p99s':>8s} {'portfolio wins':s}"
    ]
    for family, entry in sorted(
        rollup["families"].items(), key=lambda kv: -kv[1]["requests"]
    ):
        kinds = entry["cache_kinds"]
        lat = entry["latency"]
        wins = (
            ", ".join(
                f"{spec}:{count}"
                for spec, count in sorted(entry["portfolio_wins"].items())
            )
            or "-"
        )
        lines.append(
            f"{family[:16]:16s} {entry['requests']:5d} "
            f"{kinds.get('exact', 0):6d} {kinds.get('family', 0):6d} "
            f"{kinds.get('miss', 0):5d} "
            f"{lat['p99_seconds'] if lat else float('nan'):8.4f} {wins}"
        )
    return "\n".join(lines)


# -- CLI ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="tia-telemetry", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tail = sub.add_parser("tail", help="newest records as JSON lines")
    p_tail.add_argument("dir")
    p_tail.add_argument("-n", type=int, default=10, dest="count")
    p_tail.add_argument(
        "--kind", choices=journal_mod.RECORD_KINDS, default=None
    )

    p_report = sub.add_parser("report", help="fleet rollup from the journal")
    p_report.add_argument("dir")
    p_report.add_argument("--json", action="store_true")

    p_families = sub.add_parser("families", help="per-family rollup")
    p_families.add_argument("dir")
    p_families.add_argument("--json", action="store_true")

    p_slo = sub.add_parser("slo", help="declarative SLO check")
    p_slo.add_argument("dir")
    p_slo.add_argument(
        "--rule", action="append", default=[], metavar="EXPR",
        help="inline rule, e.g. ok_rate>=0.9 or p99_total<=2.0 (repeat)",
    )
    p_slo.add_argument(
        "--rules", metavar="FILE", default=None,
        help="JSON list of {metric, min|max} rule objects",
    )
    p_slo.add_argument(
        "--gate", action="store_true",
        help="exit 1 when any rule is violated (CI gate)",
    )
    p_slo.add_argument("--json", action="store_true")

    p_gc = sub.add_parser("gc", help="evict oldest shards to a byte budget")
    p_gc.add_argument("dir")
    p_gc.add_argument("--budget", type=int, required=True)

    p_verify = sub.add_parser(
        "verify", help="re-checksum shards; quarantine mid-file corruption"
    )
    p_verify.add_argument("dir")

    args = parser.parse_args(argv)

    if args.command == "tail":
        kinds = None if args.kind is None else (args.kind,)
        records = list(journal_mod.read_records(args.dir, kinds=kinds))
        for record in records[-max(0, args.count):]:
            print(json.dumps(record, sort_keys=True))
        return 0

    if args.command == "report":
        rollup = journal_rollup(args.dir)
        if args.json:
            print(json.dumps(rollup, indent=2, sort_keys=True))
        else:
            print(render_report(rollup))
        return 0

    if args.command == "families":
        rollup = journal_rollup(args.dir)
        if args.json:
            print(json.dumps(rollup["families"], indent=2, sort_keys=True))
        else:
            print(render_families(rollup))
        return 0

    if args.command == "slo":
        try:
            rules = [parse_rule(expr) for expr in args.rule]
            if args.rules:
                rules.extend(load_rules(args.rules))
        except SloRuleError as exc:
            print(f"tia-telemetry: {exc}", file=sys.stderr)
            return 2
        if not rules:
            print("tia-telemetry: no SLO rules given", file=sys.stderr)
            return 2
        rollup = journal_rollup(args.dir)
        results = check_slos(rollup, rules)
        violated = [r for r in results if not r["ok"]]
        if args.json:
            print(json.dumps(
                {"results": results, "violations": len(violated)},
                indent=2, sort_keys=True,
            ))
        else:
            for result in results:
                mark = "ok  " if result["ok"] else "FAIL"
                detail = (
                    "" if result["reason"] is None
                    else f"  ({result['reason']})"
                )
                print(
                    f"{mark} {result['metric']:16s} {result['bound']:12s} "
                    f"value={_fmt(result['value'])}{detail}"
                )
            print(
                f"{len(results) - len(violated)}/{len(results)} SLO(s) met"
            )
        if violated and args.gate:
            return 1
        return 0

    if args.command == "gc":
        journal = journal_mod.TelemetryJournal(
            args.dir, size_budget=args.budget
        )
        deleted = journal.gc(args.budget)
        print(
            f"evicted {len(deleted)} shard(s); "
            f"{journal.size_bytes()} bytes left"
        )
        return 0

    if args.command == "verify":
        journal = journal_mod.TelemetryJournal(args.dir)
        ok, bad, quarantined = journal.verify()
        print(
            f"{ok} record(s) ok, {bad} bad line(s), "
            f"{len(quarantined)} shard(s) quarantined"
        )
        return 0 if not quarantined else 1

    parser.error(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
