"""Solver-search introspection and paper-metric analytics.

The paper's whole argument lives *inside* the solver: proven-optimal
schedules (incumbent/best-bound convergence), the bundling-cut loop of
Sec. 4.2, and the Table 1/2 static metrics.  This module is the plain-data
layer those diagnostics travel on:

* :class:`GapTimeline` — an incumbent/best-bound convergence record
  streamed by both backends.  Samples are monotone in the reported gap
  (a branch-and-bound gap never widens; any apparent widening is clock
  skew between incumbent and bound reads, so it is clamped) and the
  timeline is *always closed* on every exit path — optimal, timeout,
  deadline and injected-fault exits alike — so a dashboard can trust
  ``closed`` as "the search really ended here".
* :func:`solve_telemetry` — one solve's worth of search diagnostics as a
  picklable dict, appended to ``Trace.solves`` by the scheduler so it
  survives the process-pool fan-out with the result.
* :func:`cut_effect` — per-bundling-cut effectiveness: the bound delta
  and re-solve cost attributable to one ``append_bundling_cut``.
* :func:`paper_metrics` / :func:`aggregate_paper_metrics` — the
  Table 1/2-shaped static metrics of one ``OptimizeResult`` and their
  cross-routine aggregation.

Everything here is stdlib-only plain data: no numpy arrays, no solver
objects, nothing that cannot ride a pickle or a JSON dump.
"""

from __future__ import annotations

GAP_EPS = 1e-12


def compute_gap(incumbent, bound):
    """Relative optimality gap, the branch-and-bound convention.

    ``|incumbent - bound| / max(1, |incumbent|)`` — the same formula
    ``BranchBoundSolver`` uses for ``SolverStats.gap``, so a timeline's
    final sample and the stats field agree exactly.  ``None`` when either
    side is unknown.
    """
    if incumbent is None or bound is None:
        return None
    try:
        incumbent = float(incumbent)
        bound = float(bound)
    except (TypeError, ValueError):
        return None
    if incumbent != incumbent or bound != bound:  # NaN guard
        return None
    if incumbent in (float("inf"), float("-inf")):
        return None
    if bound in (float("inf"), float("-inf")):
        return None
    return abs(incumbent - bound) / max(1.0, abs(incumbent))


class GapTimeline:
    """Incumbent/best-bound convergence samples for one solve.

    Samples are plain dicts ``{"t", "incumbent", "bound", "gap",
    "nodes"}`` (plus an optional ``"label"``), ordered by elapsed time.
    The reported gap is clamped monotone non-increasing: once the search
    has proven a gap it never un-proves it, so a sample computing a
    *larger* gap (clock skew between the incumbent and bound reads, or a
    heap rebuild mid-sample) records the previous, tighter value.

    ``close`` appends the final sample and latches ``closed`` with the
    exit status; closing twice is a no-op so defensive callers on
    multi-return exit paths stay correct.
    """

    __slots__ = ("samples", "closed", "status", "_best_gap")

    def __init__(self):
        self.samples = []
        self.closed = False
        self.status = None
        self._best_gap = None

    def sample(self, elapsed, incumbent=None, bound=None, nodes=0, label=None):
        """Record one convergence sample; returns the (clamped) gap."""
        if self.closed:
            return self._best_gap
        gap = compute_gap(incumbent, bound)
        if gap is not None:
            if self._best_gap is not None and gap > self._best_gap:
                gap = self._best_gap  # monotone clamp
            self._best_gap = gap
        entry = {
            "t": float(elapsed),
            "incumbent": None if incumbent is None else float(incumbent),
            "bound": None if bound is None else float(bound),
            "gap": gap,
            "nodes": int(nodes),
        }
        if label is not None:
            entry["label"] = label
        self.samples.append(entry)
        return gap

    def close(self, elapsed, incumbent=None, bound=None, nodes=0, status=None):
        """Append the final sample and latch the exit status (idempotent)."""
        if self.closed:
            return self._best_gap
        gap = self.sample(
            elapsed, incumbent=incumbent, bound=bound, nodes=nodes,
            label="close",
        )
        self.closed = True
        self.status = status
        return gap

    @property
    def final_gap(self):
        return self._best_gap

    def __len__(self):
        return len(self.samples)

    def as_dict(self):
        """JSON/pickle-ready plain-data form (what rides span attrs)."""
        return {
            "samples": [dict(s) for s in self.samples],
            "closed": self.closed,
            "status": self.status,
            "final_gap": self._best_gap,
        }


def fault_timeline(status, incumbent=None, bound=None):
    """A minimal closed timeline for injected-fault / short-circuit exits.

    Fault exits skip the search loop entirely, but the "always closed on
    every exit path" contract still holds: they get an opening sample at
    t=0 and an immediate close stamped with the exit status.
    """
    timeline = GapTimeline()
    timeline.sample(0.0, incumbent=incumbent, bound=bound, label="start")
    timeline.close(0.0, incumbent=incumbent, bound=bound, status=status)
    return timeline


def solve_telemetry(site, backend, solution):
    """One solve's search diagnostics as a picklable plain dict.

    ``site`` is the pipeline stage (``solve.phase1`` /
    ``solve.cut_resolve`` / ``solve.phase2``), ``solution`` the backend's
    :class:`~repro.ilp.status.Solution`.  The dict is what the scheduler
    appends to ``Trace.solves`` — keep it free of solver objects.
    """
    stats = solution.stats
    timeline = getattr(stats, "gap_timeline", None)
    entry = {
        "site": site,
        "backend": backend,
        "status": solution.status.name,
        "objective": solution.objective,
        "nodes": stats.nodes,
        "lp_solves": stats.lp_solves,
        "time_seconds": stats.time_seconds,
        "best_bound": stats.best_bound,
        "gap": stats.gap,
        "gap_timeline": timeline.as_dict() if timeline is not None else None,
    }
    pseudocosts = getattr(stats, "pseudocosts", None)
    if pseudocosts:
        entry["pseudocosts"] = pseudocosts
    portfolio = getattr(stats, "portfolio", None)
    if portfolio:
        entry["portfolio"] = portfolio
    return entry


def cut_effect(cut_index, members, prev_objective, solution, site):
    """Effectiveness attribution for one appended bundling cut.

    ``bound_delta`` is the objective movement the cut forced on the
    re-solve (positive: the cut made the schedule provably longer, the
    usual Sec. 4.2 outcome); ``resolve_seconds`` / ``resolve_nodes`` the
    cost of proving it.
    """
    delta = None
    if prev_objective is not None and solution.objective is not None:
        delta = float(solution.objective) - float(prev_objective)
    return {
        "cut_index": int(cut_index),
        "members": int(members),
        "site": site,
        "bound_delta": delta,
        "resolve_seconds": solution.stats.time_seconds,
        "resolve_nodes": solution.stats.nodes,
        "resolve_status": solution.status.name,
    }


# -- paper-metric analytics ---------------------------------------------------
def compensation_copies(schedule):
    """Number of duplicated placements (compensation copies) in a schedule.

    Global code motion duplicates an instruction into several blocks; each
    appearance beyond the first of one original instruction
    (``root_origin``) is a compensation copy — the quantity behind the
    paper's Δinstructions column.
    """
    appearances = {}
    for placement in schedule.placements():
        instr = placement.instr
        if instr.is_nop:
            continue
        key = instr.root_origin
        appearances[key] = appearances.get(key, 0) + 1
    return sum(count - 1 for count in appearances.values() if count > 1)


def paper_metrics(result):
    """Table 1/2-shaped static metrics for one ``OptimizeResult``.

    Wires :class:`repro.perf.static_eval.ScheduleComparison` into the
    result's trace: static reduction, weighted IPC in/out, Δinstructions,
    Δbundles, nop density, compensation copies and speculation counts —
    all plain floats/ints, safe on a pickle or span attribute.
    """
    from repro.perf.static_eval import compare_schedules

    comparison = compare_schedules(
        result.fn,
        result.input_schedule,
        result.output_schedule,
        result.bundles_in,
        result.bundles_out,
    )
    m_in, m_out = comparison.metrics_in, comparison.metrics_out
    return {
        "routine": result.fn.name,
        "quality": result.quality,
        "static_reduction": comparison.static_reduction,
        "weighted_ipc_in": m_in.weighted_ipc,
        "weighted_ipc_out": m_out.weighted_ipc,
        "instructions_in": m_in.instructions,
        "instructions_out": m_out.instructions,
        "delta_instructions": comparison.delta_instructions,
        "bundles_in": m_in.bundles,
        "bundles_out": m_out.bundles,
        "delta_bundles": comparison.delta_bundles,
        "nop_density_in": m_in.nop_density,
        "nop_density_out": m_out.nop_density,
        "compensation_copies": compensation_copies(result.output_schedule),
        "spec_possible": result.spec_possible,
        "spec_used": result.spec_used,
    }


# Columns averaged by aggregate_paper_metrics (the Table 1 "Average" row);
# the remaining numeric columns are summed.
_AVERAGED = (
    "static_reduction", "weighted_ipc_in", "weighted_ipc_out",
    "delta_instructions", "delta_bundles", "nop_density_in",
    "nop_density_out",
)
_SUMMED = (
    "instructions_in", "instructions_out", "bundles_in", "bundles_out",
    "compensation_copies", "spec_possible", "spec_used",
)


def serve_summary(metrics):
    """Schedule-cache health digest from a ``--metrics`` dump.

    ``metrics`` is :func:`repro.obs.export.metrics_dict` output —
    ``{"counters": {...}, "gauges": {...}, "histograms": {...}}`` with
    labelled series rendered as ``name{k="v"}`` keys.  Returns
    ``{"requests", "hits": {exact, family, miss}, "hit_rate",
    "coalesced", "solves", "store_errors", "corrupt_entries",
    "evictions", "admission_timeouts", "size_bytes", "shed",
    "drained", "accept_errors", "queue_depth", "inflight"}`` — the
    numbers behind the dashboard's cache panel and the CI serve-smoke
    artifact.  The last five come from the fleet daemon
    (:mod:`repro.serve.fleet`): load-shed and drain-flushed connection
    counts plus the latest queue-depth/in-flight gauges.  All fields
    are plain ints/floats and default to zero, so the digest is safe
    on an obs-disabled (empty) dump.
    """
    metrics = metrics or {}
    counters = metrics.get("counters", {}) or {}
    gauges = metrics.get("gauges", {}) or {}

    def _sum(section, prefix):
        return sum(
            value for key, value in section.items()
            if (key == prefix or key.startswith(prefix + "{"))
            and isinstance(value, (int, float))
        )

    hits = {
        kind: _sum(counters, f'cache_hits_total{{kind="{kind}"}}')
        for kind in ("exact", "family", "miss")
    }
    requests = sum(hits.values())
    served = hits["exact"] + hits["family"]
    return {
        "requests": requests,
        "hits": hits,
        "hit_rate": served / requests if requests else 0.0,
        "coalesced": _sum(counters, "coalesced_requests_total"),
        "solves": hits["miss"],
        "store_errors": _sum(counters, "cache_store_errors_total"),
        "corrupt_entries": _sum(counters, "cache_corrupt_entries_total"),
        "evictions": _sum(counters, "cache_evictions_total"),
        "admission_timeouts": _sum(counters, "serve_admission_timeouts_total"),
        "size_bytes": _sum(gauges, "cache_size_bytes"),
        "shed": _sum(counters, "serve_shed_total"),
        "drained": _sum(counters, "serve_drained_total"),
        "accept_errors": _sum(counters, "serve_accept_errors_total"),
        "queue_depth": _sum(gauges, "serve_conn_queue_depth"),
        "inflight": _sum(gauges, "serve_inflight"),
    }


def decompose_summary(metrics):
    """Region-decomposition digest from a ``--metrics`` dump.

    Same input shape as :func:`serve_summary`.  Returns
    ``{"partitions", "cache_hits", "cache_misses", "hit_rate",
    "solves", "solve_seconds", "mean_solve_seconds"}`` — the numbers
    behind the dashboard's partition rows and the CI decompose-smoke
    artifact.  ``partitions`` counts partitions solved across all
    decomposed routines (``decompose_partitions_total``); the cache
    fields come from the per-partition schedule-cache probe in
    :mod:`repro.sched.decompose`.  All fields default to zero, so the
    digest is safe on an obs-disabled (empty) dump.
    """
    metrics = metrics or {}
    counters = metrics.get("counters", {}) or {}
    histograms = metrics.get("histograms", {}) or {}

    def _sum(section, prefix, field=None):
        total = 0.0
        for key, value in section.items():
            if key != prefix and not key.startswith(prefix + "{"):
                continue
            if field is not None:
                value = (value or {}).get(field, 0)
            if isinstance(value, (int, float)):
                total += value
        return total

    hits = _sum(counters, "partition_cache_hits_total")
    misses = _sum(counters, "partition_cache_misses_total")
    probes = hits + misses
    solves = _sum(histograms, "partition_solve_seconds", field="count")
    seconds = _sum(histograms, "partition_solve_seconds", field="sum")
    return {
        "partitions": _sum(counters, "decompose_partitions_total"),
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": hits / probes if probes else 0.0,
        "solves": solves,
        "solve_seconds": seconds,
        "mean_solve_seconds": seconds / solves if solves else 0.0,
    }


def portfolio_summary(metrics):
    """Solver-portfolio digest from a ``--metrics`` dump.

    Same input shape as :func:`serve_summary`.  Returns ``{"races",
    "wins": {runner: n}, "losses": {runner: n}, "win_rate": {runner:
    fraction-of-races-won}, "cancelled": {runner: n}, "lane_faults",
    "seed_transfers", "incumbents_published", "proofs": {kind: n}}`` —
    the numbers behind the dashboard's portfolio panel and the raw
    material for the ROADMAP's telemetry-driven backend auto-tuner
    (per-family win-rates).  All fields default to zero/empty, so the
    digest is safe on an obs-disabled (empty) dump.
    """
    metrics = metrics or {}
    counters = metrics.get("counters", {}) or {}

    def _by_label(prefix, label):
        out = {}
        marker = f'{prefix}{{{label}="'
        for key, value in counters.items():
            if not key.startswith(marker):
                continue
            if not isinstance(value, (int, float)):
                continue
            name = key[len(marker):].split('"', 1)[0]
            out[name] = out.get(name, 0) + value
        return out

    def _sum(prefix):
        return sum(
            value for key, value in counters.items()
            if (key == prefix or key.startswith(prefix + "{"))
            and isinstance(value, (int, float))
        )

    races = _sum("portfolio_races_total")
    wins = _by_label("portfolio_wins_total", "runner")
    return {
        "races": races,
        "wins": wins,
        "losses": _by_label("portfolio_losses_total", "runner"),
        "win_rate": {
            runner: count / races for runner, count in wins.items()
        } if races else {},
        "cancelled": _by_label("portfolio_cancelled_total", "runner"),
        "lane_faults": _sum("portfolio_lane_faults_total"),
        "seed_transfers": _sum("portfolio_seed_transfers_total"),
        "incumbents_published": _sum("portfolio_incumbents_published_total"),
        "proofs": _by_label("portfolio_proofs_total", "proof"),
    }


def swp_summary(metrics):
    """Software-pipelining digest from a ``--metrics`` dump.

    Same input shape as :func:`serve_summary`.  Returns ``{"loops",
    "by_status": {status: n}, "pipelined", "pipelined_rate", "ii_at_mii",
    "ii_at_mii_rate", "mean_ii_over_mii", "oracle": {"pass": n, "fail":
    n}, "fallbacks": {reason: n}, "cache_hits", "cache_misses",
    "cache_hit_rate"}`` — the numbers behind the dashboard's SWP panel
    and the CI swp-smoke artifact.  ``ii_at_mii_rate`` is the fraction
    of *pipelined* loops whose achieved II equals max(ResMII, RecMII) —
    the paper-style optimality headline the sweep's 80% acceptance bar
    reads.  All fields default to zero/empty, so the digest is safe on
    an obs-disabled (empty) dump.
    """
    metrics = metrics or {}
    counters = metrics.get("counters", {}) or {}
    histograms = metrics.get("histograms", {}) or {}

    def _by_label(prefix, label):
        out = {}
        marker = f'{prefix}{{{label}="'
        for key, value in counters.items():
            if not key.startswith(marker):
                continue
            if not isinstance(value, (int, float)):
                continue
            name = key[len(marker):].split('"', 1)[0]
            out[name] = out.get(name, 0) + value
        return out

    def _sum(section, prefix, field=None):
        total = 0.0
        for key, value in section.items():
            if key != prefix and not key.startswith(prefix + "{"):
                continue
            if field is not None:
                value = (value or {}).get(field, 0)
            if isinstance(value, (int, float)):
                total += value
        return total

    by_status = _by_label("swp_loops_total", "status")
    loops = sum(by_status.values())
    pipelined = by_status.get("pipelined", 0) + by_status.get(
        "fallback_swp", 0
    )
    at_mii = _sum(counters, "swp_ii_at_mii_total")
    ratio_count = _sum(histograms, "swp_ii_over_mii", field="count")
    ratio_sum = _sum(histograms, "swp_ii_over_mii", field="sum")
    hits = _sum(counters, "swp_cache_hits_total")
    misses = _sum(counters, "swp_cache_misses_total")
    probes = hits + misses
    return {
        "loops": loops,
        "by_status": by_status,
        "pipelined": pipelined,
        "pipelined_rate": pipelined / loops if loops else 0.0,
        "ii_at_mii": at_mii,
        "ii_at_mii_rate": at_mii / ratio_count if ratio_count else 0.0,
        "mean_ii_over_mii": ratio_sum / ratio_count if ratio_count else 0.0,
        "oracle": _by_label("swp_oracle_total", "result"),
        "fallbacks": _by_label("swp_fallbacks_total", "reason"),
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": hits / probes if probes else 0.0,
    }


def aggregate_paper_metrics(rows):
    """Cross-routine run summary in the shape of Table 1's bottom row.

    ``rows`` is a list of :func:`paper_metrics` dicts; returns
    ``{"routines": n, "by_quality": {...}, "average": {...},
    "total": {...}}``.  Rows of ``None`` (degraded pool outcomes) are
    skipped.
    """
    rows = [row for row in rows if row]
    summary = {
        "routines": len(rows),
        "by_quality": {},
        "average": {},
        "total": {},
    }
    if not rows:
        return summary
    for row in rows:
        tier = row.get("quality") or "unknown"
        summary["by_quality"][tier] = summary["by_quality"].get(tier, 0) + 1
    n = len(rows)
    for key in _AVERAGED:
        values = [row[key] for row in rows if row.get(key) is not None]
        if values:
            summary["average"][key] = sum(values) / len(values)
    for key in _SUMMED:
        values = [row[key] for row in rows if row.get(key) is not None]
        if values:
            summary["total"][key] = sum(values)
    return summary
