"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is deliberately boring — plain dicts keyed by
``(name, sorted(label items))`` — because everything downstream depends
on it being trivially serializable: worker processes ship their registry
as part of an :func:`repro.obs.snapshot` and the parent merges it with
:meth:`MetricsRegistry.merge_state` (counters add, gauges last-write,
histograms add bucket-wise).

Histograms use *fixed* bucket boundaries declared per metric name in
:data:`BUCKET_BOUNDS` (upper bounds, ``le`` semantics, implicit +inf
overflow bucket).  Fixed boundaries are what make cross-process and
cross-run aggregation exact: two histograms with identical bounds merge
by adding counts, with no re-binning error.  Metrics without a declared
boundary set fall back to :data:`DEFAULT_BUCKETS`.
"""

from __future__ import annotations

import math

# Generic latency-ish default (seconds or small counts).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)

# Declared boundaries for the subsystem's known histograms.
BUCKET_BOUNDS = {
    # Wall-clock cost of a single backend solve.
    "solve_seconds": (
        0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
        120.0, 300.0,
    ),
    # Branch-and-bound nodes explored by a single solve (0 = solved at
    # the root, the paper's Table 2 convention).
    "solve_nodes": (
        0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
    ),
    # Share of the routine's shared Deadline a pipeline site consumed.
    "deadline_fraction_consumed": (
        0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0,
    ),
    # Bundling cuts appended over one routine's cut loop.
    "bundling_cuts_per_routine": (0, 1, 2, 3, 4, 6, 8, 12, 16),
    # Final relative optimality gap of a solve (0 = proven optimal; the
    # paper accepts only gap 0, so everything above the first bucket is a
    # degraded solve worth seeing).
    "solve_gap": (
        0.0, 1e-6, 1e-4, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5,
        1.0,
    ),
    # End-to-end serving latency per request, labeled by hit kind: the
    # sub-millisecond buckets resolve exact hits (deserialization only),
    # the long tail covers cold solves.
    "serve_request_seconds": (
        0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
        1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
    ),
    # Cache lookup cost alone (mem LRU vs disk read + checksum).
    "serve_lookup_seconds": (
        0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
        0.025, 0.05, 0.1, 0.5, 1.0,
    ),
    # Wall-clock cost of one partition's sub-pipeline in a decomposed
    # routine (repro.sched.decompose) — sub-ILPs are much smaller than
    # whole-function models, so the buckets lean short.
    "partition_solve_seconds": (
        0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    ),
}

# ``# HELP`` text for the exposition format, keyed by metric name.
# Unknown metrics get a generic line so every family still carries HELP.
METRIC_HELP = {
    "solves_total": "ILP solves started, by backend",
    "bb_nodes_total": "branch-and-bound nodes explored, by backend",
    "simplex_iterations_total": "simplex pivots across all solves",
    "warm_start_hits_total": "LP relaxations answered from a warm basis",
    "warm_start_misses_total": "LP relaxations solved cold",
    "incumbent_seeded_solves_total": "solves seeded with a prior incumbent",
    "presolve_calls_total": "presolve invocations (bb backend)",
    "presolve_fixed_vars_total": "variables fixed by presolve",
    "phase2_solves_total": "phase-2 solves, by model reuse",
    "routine_fallback_total": "final quality tier per routine",
    "routine_nodes_total": "branch-and-bound nodes per routine",
    "routine_warm_start_hits_total": "warm-start hits per routine",
    "routine_warm_start_misses_total": "warm-start misses per routine",
    "bundling_cuts_total": "bundling cuts appended per routine",
    "compensation_copies_total": "compensation copies emitted per routine",
    "routine_final_gap": "final optimality gap of the emitted schedule",
    "routine_static_reduction":
        "weighted static schedule-length reduction per routine (Table 1)",
    "routine_weighted_ipc_out":
        "frequency-weighted IPC of the emitted schedule (Table 1)",
    "routine_nop_density_out":
        "share of issue slots wasted on nops in the emitted schedule",
    "faults_fired_total": "injected faults that actually fired",
    "pool_rebuilds_total": "process pools rebuilt after a worker crash",
    "worker_retries_total": "routines retried in-process after pool failure",
    "solve_seconds": "wall-clock cost of a single backend solve",
    "solve_nodes": "branch-and-bound nodes explored by a single solve",
    "solve_gap": "final relative optimality gap of a solve",
    "deadline_fraction_consumed":
        "share of the routine deadline a pipeline site consumed",
    "bundling_cuts_per_routine":
        "bundling cuts appended over one routine's cut loop",
    "cache_hits_total": "schedule-cache requests by hit kind",
    "coalesced_requests_total":
        "requests answered by another request's in-flight solve",
    "cache_store_writes_total": "cache entries published to the store",
    "cache_store_errors_total": "cache store I/O failures, by operation",
    "cache_corrupt_entries_total": "cache entries quarantined on load",
    "cache_evictions_total": "cache entries LRU-evicted by the size budget",
    "cache_size_bytes": "on-disk cache size after the last eviction pass",
    "serve_queue_depth": "requests queued for an admission slot",
    "serve_admission_timeouts_total":
        "requests whose budget expired while queued for admission",
    "serve_request_seconds": "end-to-end serving latency by hit kind",
    "serve_lookup_seconds": "schedule-cache lookup cost",
    "decompose_partitions_total": "partitions solved by decomposed routines",
    "partition_cache_hits_total":
        "partition schedule-cache probes answered from the store",
    "partition_cache_misses_total":
        "partition schedule-cache probes that found no usable entry",
    "partition_solve_seconds":
        "wall-clock cost of one partition's sub-pipeline",
}


def labels_key(labels):
    """Canonical hashable form of a label mapping."""
    return tuple(sorted(labels.items()))


def _series_name(name, key):
    if not key:
        return name
    rendered = ",".join(f'{k}="{v}"' for k, v in key)
    return f"{name}{{{rendered}}}"


def _escape_label_value(value):
    """Escape a label value per the Prometheus exposition format:
    backslash, double quote and newline must be backslash-escaped."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_series(name, key):
    """Exposition-format series name with *escaped* label values.

    Distinct from :func:`_series_name`, which renders raw values for the
    JSON dump keys (where escaping would change the key the tests and
    diff tooling grep for).
    """
    if not key:
        return name
    rendered = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Counters, gauges and histograms for one process."""

    def __init__(self):
        self.counters = {}  # (name, labels_key) -> float
        self.gauges = {}  # (name, labels_key) -> float
        self.histograms = {}  # (name, labels_key) -> _Histogram state dict

    # -- recording ----------------------------------------------------------
    def counter_add(self, name, value=1.0, **labels):
        key = (name, labels_key(labels))
        self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def gauge_set(self, name, value, **labels):
        self.gauges[(name, labels_key(labels))] = float(value)

    def observe(self, name, value, **labels):
        key = (name, labels_key(labels))
        hist = self.histograms.get(key)
        if hist is None:
            bounds = BUCKET_BOUNDS.get(name, DEFAULT_BUCKETS)
            hist = self.histograms[key] = {
                "bounds": tuple(float(b) for b in bounds),
                # one slot per bound plus the +inf overflow slot
                "counts": [0] * (len(bounds) + 1),
                "sum": 0.0,
                "count": 0,
            }
        value = float(value)
        hist["sum"] += value
        hist["count"] += 1
        hist["counts"][_bucket_index(hist["bounds"], value)] += 1

    # -- serialization / aggregation ----------------------------------------
    def to_state(self):
        """Plain-data form: JSON-free but pickle/JSON friendly after
        key stringification is applied by the exporters."""
        return {
            "counters": [
                [name, list(key), value]
                for (name, key), value in self.counters.items()
            ],
            "gauges": [
                [name, list(key), value]
                for (name, key), value in self.gauges.items()
            ],
            "histograms": [
                [
                    name,
                    list(key),
                    {
                        "bounds": list(hist["bounds"]),
                        "counts": list(hist["counts"]),
                        "sum": hist["sum"],
                        "count": hist["count"],
                    },
                ]
                for (name, key), hist in self.histograms.items()
            ],
        }

    def merge_state(self, state):
        """Fold a :meth:`to_state` snapshot (typically from a worker
        process) into this registry: counters add, gauges last-write,
        histograms add bucket-wise (bounds must match — they do, because
        bounds are fixed per metric name)."""
        for name, key, value in state.get("counters", ()):
            k = (name, tuple(tuple(item) for item in key))
            self.counters[k] = self.counters.get(k, 0.0) + value
        for name, key, value in state.get("gauges", ()):
            self.gauges[(name, tuple(tuple(item) for item in key))] = value
        for name, key, incoming in state.get("histograms", ()):
            k = (name, tuple(tuple(item) for item in key))
            hist = self.histograms.get(k)
            if hist is None:
                self.histograms[k] = {
                    "bounds": tuple(incoming["bounds"]),
                    "counts": list(incoming["counts"]),
                    "sum": incoming["sum"],
                    "count": incoming["count"],
                }
                continue
            if tuple(incoming["bounds"]) != hist["bounds"]:
                raise ValueError(
                    f"histogram {name!r}: bucket bounds mismatch on merge"
                )
            hist["counts"] = [
                a + b for a, b in zip(hist["counts"], incoming["counts"])
            ]
            hist["sum"] += incoming["sum"]
            hist["count"] += incoming["count"]

    # -- export -------------------------------------------------------------
    def as_dict(self):
        """Flat JSON-ready dump (the ``--metrics`` file format)."""
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, key), value in sorted(self.counters.items()):
            out["counters"][_series_name(name, key)] = value
        for (name, key), value in sorted(self.gauges.items()):
            out["gauges"][_series_name(name, key)] = value
        for (name, key), hist in sorted(self.histograms.items()):
            buckets = {}
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += count
                buckets[f"{bound:g}"] = cumulative
            buckets["+Inf"] = hist["count"]
            out["histograms"][_series_name(name, key)] = {
                "buckets": buckets,
                "sum": hist["sum"],
                "count": hist["count"],
            }
        return out

    def prometheus_text(self):
        """Prometheus exposition-format dump (counters/gauges/histograms).

        Each metric family carries a ``# HELP`` line (from
        :data:`METRIC_HELP`, generic text for unregistered names) ahead
        of its ``# TYPE`` line, and label values are escaped per the
        exposition format (``\\`` ``"`` and newlines).
        """
        lines = []
        seen_types = set()

        def header(name, kind):
            if name not in seen_types:
                seen_types.add(name)
                help_text = METRIC_HELP.get(name, f"{name} (unregistered)")
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")

        for (name, key), value in sorted(self.counters.items()):
            header(name, "counter")
            lines.append(f"{_prom_series(name, key)} {value:g}")
        for (name, key), value in sorted(self.gauges.items()):
            header(name, "gauge")
            lines.append(f"{_prom_series(name, key)} {value:g}")
        for (name, key), hist in sorted(self.histograms.items()):
            header(name, "histogram")
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += count
                series = _prom_series(name + "_bucket", key + (("le", f"{bound:g}"),))
                lines.append(f"{series} {cumulative}")
            series = _prom_series(name + "_bucket", key + (("le", "+Inf"),))
            lines.append(f"{series} {hist['count']}")
            lines.append(f"{_prom_series(name + '_sum', key)} {hist['sum']:g}")
            lines.append(f"{_prom_series(name + '_count', key)} {hist['count']}")
        return "\n".join(lines) + "\n"


def _bucket_index(bounds, value):
    """First bucket whose upper bound admits ``value`` (``le``), else the
    +inf overflow slot."""
    if math.isnan(value):
        return len(bounds)
    for i, bound in enumerate(bounds):
        if value <= bound:
            return i
    return len(bounds)
