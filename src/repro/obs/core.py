"""Recorder, spans and the process-global observability switch.

Design constraints, in priority order:

1. **Free when off.**  Every hot call site guards on the module-level
   :data:`ENABLED` flag (an attribute load plus a bool test) before
   building any attribute dict; :func:`span` returns one shared no-op
   singleton when recording is off, so the disabled path allocates
   nothing.
2. **Zero dependencies.**  Stdlib only — the subsystem must be importable
   from solver internals, fault injection and pool workers without
   creating cycles, and must pickle/JSON cleanly across processes.
3. **Mergeable.**  A recorder's whole state round-trips through
   :func:`snapshot` / :func:`merge_snapshot` as plain data: pool workers
   record into their own (reset) recorder and ship the snapshot back
   with the routine outcome; the parent folds worker events into its
   trace on distinct pid lanes, with timestamps re-based onto the
   parent's clock via the wall-clock epochs.

Two span mechanisms share one implementation:

* :func:`span` — the process-global API. Nothing is recorded (and the
  no-op singleton is returned) unless :func:`enable` was called or
  ``REPRO_OBS`` is set.
* :class:`Trace` — a *local*, always-on span tree used by
  ``IlpScheduler.optimize`` so every ``OptimizeResult`` carries its
  per-phase timing breakdown even with global recording off.  A trace
  span costs two ``perf_counter`` calls and one small dict — a dozen
  per routine, against solves measured in seconds.  When the global
  recorder is live, trace spans mirror themselves into it, which is how
  the scheduler's phases end up in the Chrome trace.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

ENV_VAR = "REPRO_OBS"

# The process-global switch. Read directly (``if obs.ENABLED:``) on hot
# paths; mutate only through enable()/disable().
ENABLED = False
_recorder = None
_state_lock = threading.Lock()


class Recorder:
    """Event buffer + metrics registry for one process.

    Events are finished spans and instants, stored as plain dicts with
    timestamps in seconds relative to the recorder's monotonic epoch
    (``epoch_perf``).  ``epoch_wall`` (``time.time()`` at construction)
    is what lets a parent re-base a worker's events onto its own
    timeline without trusting monotonic clocks to be comparable across
    processes.
    """

    def __init__(self):
        self.pid = os.getpid()
        self.epoch_wall = time.time()
        self.epoch_perf = time.perf_counter()
        self.events = []
        self.metrics = MetricsRegistry()
        self.process_labels = {self.pid: f"repro pid {self.pid}"}
        # (pid, tid) -> display name; foreign pids arrive via
        # merge_snapshot. Rendered as Chrome thread_name metadata so
        # e.g. fleet worker threads get their own named lanes.
        self.thread_labels = {}
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_span_id = 0
        self._tids = {}

    # -- clocks / ids -------------------------------------------------------
    def now(self):
        return time.perf_counter() - self.epoch_perf

    def _new_span_id(self):
        with self._lock:
            self._next_span_id += 1
            return self._next_span_id

    def _tid(self):
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids))
        return tid

    def _stack(self):
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # -- recording ----------------------------------------------------------
    def add_instant(self, name, attrs=None):
        event = {
            "type": "instant",
            "name": name,
            "ts": self.now(),
            "pid": self.pid,
            "tid": self._tid(),
        }
        stack = self._stack()
        if stack:
            event["parent"] = stack[-1].span_id
        if attrs:
            event["args"] = dict(attrs)
        trace_id, _parent = current_trace()
        if trace_id is not None:
            event["trace"] = trace_id
        with self._lock:
            self.events.append(event)
        return event

    def add_complete_span(self, name, start, duration, attrs=None):
        """Record an already-finished span (timestamps recorder-relative).

        For retroactively-timed intervals — e.g. the fleet daemon's
        queue wait, measured between accept and dispatch — where no
        context manager bracketed the work.  The span joins the active
        trace context (if any) but takes no part in the thread's local
        parent stack.
        """
        event = {
            "type": "span",
            "name": name,
            "ts": float(start),
            "dur": max(0.0, float(duration)),
            "pid": self.pid,
            "tid": self._tid(),
            "id": self._new_span_id(),
        }
        stack = self._stack()
        if stack:
            event["parent"] = stack[-1].span_id
        trace_id, remote_parent = current_trace()
        if trace_id is not None:
            event["trace"] = trace_id
            if "parent" not in event and remote_parent is not None:
                event["remote_parent"] = remote_parent
        if attrs:
            event["args"] = dict(attrs)
        with self._lock:
            self.events.append(event)
        return event


class Span:
    """A live span: context manager pushing onto the recorder's stack."""

    __slots__ = ("recorder", "name", "attrs", "span_id", "parent_id",
                 "start", "duration", "trace_id", "remote_parent")

    def __init__(self, recorder, name, attrs):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id = recorder._new_span_id()
        self.parent_id = None
        self.start = None
        self.duration = None
        self.trace_id = None
        self.remote_parent = None

    def set_attr(self, key, value):
        self.attrs[key] = value

    @property
    def ref(self):
        """Globally-unique span reference (``"pid.span_id"``) for the wire."""
        return f"{self.recorder.pid}.{self.span_id}"

    def __enter__(self):
        stack = self.recorder._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        self.trace_id, self.remote_parent = current_trace()
        stack.append(self)
        self.start = self.recorder.now()
        return self

    def __exit__(self, exc_type, exc, tb):
        rec = self.recorder
        self.duration = rec.now() - self.start
        stack = rec._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # tolerate out-of-order exits
            stack.remove(self)
        event = {
            "type": "span",
            "name": self.name,
            "ts": self.start,
            "dur": self.duration,
            "pid": rec.pid,
            "tid": rec._tid(),
            "id": self.span_id,
        }
        if self.parent_id is not None:
            event["parent"] = self.parent_id
        if self.trace_id is not None:
            event["trace"] = self.trace_id
            # A span with a local parent is reachable through it; only
            # the local root of a remote trace carries the cross-process
            # link that the Chrome exporter stitches into a flow arrow.
            if self.parent_id is None and self.remote_parent is not None:
                event["remote_parent"] = self.remote_parent
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["args"] = dict(self.attrs)
        with rec._lock:
            rec.events.append(event)
        return False


class _NoopSpan:
    """Shared do-nothing span; the entire disabled-mode span cost."""

    __slots__ = ()
    duration = None
    span_id = None
    parent_id = None
    ref = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set_attr(self, key, value):
        pass


NOOP_SPAN = _NoopSpan()


# -- distributed trace context ------------------------------------------------
# W3C-traceparent-style propagation: a request-scoped ``trace_id`` (32
# hex chars) plus the parent span's globally-unique reference
# (``"pid.span_id"``).  The context is a *thread-local stack* independent
# of the recorder, so trace ids flow through the wire protocol and the
# telemetry journal even when span recording is off; spans opened while
# a scope is active stamp themselves with the trace id and — at the
# local root — the remote parent reference, which is what lets the
# Chrome exporter stitch one client request into a single connected
# flow across the client, daemon and worker processes.
_trace_tls = threading.local()


def new_trace_id():
    """A fresh 32-hex-char trace id (W3C ``trace-id`` shaped)."""
    return uuid.uuid4().hex


def current_trace():
    """``(trace_id, parent_ref)`` of the innermost active scope.

    ``(None, None)`` when no scope is active on this thread.
    """
    stack = getattr(_trace_tls, "stack", None)
    if not stack:
        return (None, None)
    return stack[-1]


def current_span_ref():
    """Reference of the innermost *open* span on this thread, or ``None``.

    This is what a caller puts on the wire as the remote parent of
    whatever work the peer does on its behalf.
    """
    rec = _recorder
    if rec is None:
        return None
    stack = rec._stack()
    if not stack:
        return None
    return stack[-1].ref


@contextmanager
def trace_scope(trace_id, parent_ref=None):
    """Activate a trace context for the calling thread.

    Spans opened inside the scope carry ``trace_id``; the first span
    with no local parent additionally records ``parent_ref`` as its
    remote parent.  A falsy ``trace_id`` makes the scope a no-op, so
    call sites can pass whatever the wire carried without guarding.
    """
    if not trace_id:
        yield
        return
    stack = getattr(_trace_tls, "stack", None)
    if stack is None:
        stack = _trace_tls.stack = []
    entry = (str(trace_id), parent_ref)
    stack.append(entry)
    try:
        yield
    finally:
        if stack and stack[-1] is entry:
            stack.pop()
        elif entry in stack:  # tolerate out-of-order exits
            stack.remove(entry)


def name_thread(name):
    """Label the calling thread's lane in the Chrome trace.

    No-op when recording is off.  The fleet daemon names its worker
    threads (``fleet worker N``) so queue wait and solve time land on
    visually separate lanes.
    """
    rec = _recorder
    if rec is not None:
        tid = rec._tid()  # may take the lock itself; resolve first
        with rec._lock:
            rec.thread_labels[(rec.pid, tid)] = str(name)


def complete_span(name, duration, **attrs):
    """Record a span that just finished (started ``duration`` seconds ago).

    For retroactively-timed intervals (queue wait); no-op when disabled.
    """
    rec = _recorder
    if rec is not None:
        end = rec.now()
        rec.add_complete_span(name, end - max(0.0, duration), duration, attrs)


# -- module-level API ---------------------------------------------------------
def enabled():
    return ENABLED


def enable():
    """Turn recording on (idempotent); returns the live recorder."""
    global ENABLED, _recorder
    with _state_lock:
        if _recorder is None:
            _recorder = Recorder()
        ENABLED = True
        return _recorder


def disable():
    """Turn recording off and drop the recorder."""
    global ENABLED, _recorder
    with _state_lock:
        ENABLED = False
        _recorder = None


def reset():
    """Replace the recorder with a fresh one, keeping recording on.

    Pool workers call this at task start: a forked child inherits the
    parent's recorder (including the parent's events), and ``reset``
    gives it an empty buffer stamped with the *worker's* pid and epoch,
    so the snapshot it ships back contains exactly its own activity.
    """
    global ENABLED, _recorder
    with _state_lock:
        ENABLED = True
        _recorder = Recorder()
        return _recorder


def recorder():
    """The live recorder, or ``None`` when recording is off."""
    return _recorder


def span(name, **attrs):
    """A recording span when enabled, else the shared no-op singleton.

    Hot call sites that would build an attribute dict should guard with
    ``if obs.ENABLED:`` *before* calling, so the disabled path does not
    even allocate the kwargs.
    """
    rec = _recorder
    if rec is None:
        return NOOP_SPAN
    return Span(rec, name, attrs)


def event(name, **attrs):
    """Record an instant event (no duration); no-op when disabled."""
    rec = _recorder
    if rec is not None:
        rec.add_instant(name, attrs)


def counter(name, value=1.0, **labels):
    rec = _recorder
    if rec is not None:
        rec.metrics.counter_add(name, value, **labels)


def gauge(name, value, **labels):
    rec = _recorder
    if rec is not None:
        rec.metrics.gauge_set(name, value, **labels)


def histogram(name, value, **labels):
    rec = _recorder
    if rec is not None:
        rec.metrics.observe(name, value, **labels)


# -- cross-process aggregation ------------------------------------------------
SNAPSHOT_VERSION = 1


def snapshot():
    """Plain-data dump of the live recorder (``None`` when disabled).

    This is what a pool worker ships back with its
    :class:`~repro.tools.parallel.RoutineOutcome`; it is pickle- and
    JSON-serializable by construction.
    """
    rec = _recorder
    if rec is None:
        return None
    with rec._lock:
        events = [dict(ev) for ev in rec.events]
        thread_labels = [
            [pid, tid, label]
            for (pid, tid), label in rec.thread_labels.items()
        ]
    return {
        "version": SNAPSHOT_VERSION,
        "pid": rec.pid,
        "epoch_wall": rec.epoch_wall,
        "process_labels": dict(rec.process_labels),
        "thread_labels": thread_labels,
        "events": events,
        "metrics": rec.metrics.to_state(),
    }


def merge_snapshot(snap, role=None):
    """Fold a worker snapshot into the live recorder.

    Events keep their originating ``pid`` — each worker gets its own
    process lane in the Chrome trace — while timestamps are re-based
    onto the parent's timeline using the wall-clock epochs (monotonic
    clocks are not comparable across processes; wall clocks are, to
    well under a scheduling quantum on one host). Metrics merge
    add-wise. A no-op when recording is off or ``snap`` is ``None``.
    """
    rec = _recorder
    if rec is None or snap is None:
        return
    offset = snap["epoch_wall"] - rec.epoch_wall
    merged = []
    for ev in snap["events"]:
        ev = dict(ev)
        ev["ts"] += offset
        merged.append(ev)
    with rec._lock:
        rec.events.extend(merged)
        for pid, label in snap.get("process_labels", {}).items():
            rec.process_labels.setdefault(
                int(pid), label if role is None else f"{role} pid {pid}"
            )
        if role is not None:
            rec.process_labels[int(snap["pid"])] = f"{role} pid {snap['pid']}"
        for entry in snap.get("thread_labels", []):
            try:
                pid, tid, label = entry
            except (TypeError, ValueError):
                continue
            rec.thread_labels.setdefault((int(pid), int(tid)), str(label))
    rec.metrics.merge_state(snap["metrics"])


# -- always-on local span trees ----------------------------------------------
class Trace:
    """A per-routine span tree, recorded unconditionally.

    The scheduler builds one per ``optimize`` call so the per-phase
    timing breakdown in ``OptimizeResult.report()`` works with global
    recording off.  Finished spans are stored as plain record dicts
    (name, start offset, duration, parent index, attrs) — picklable, so
    an ``OptimizeResult`` shipped back from a pool worker keeps its
    tree.  When the global recorder is live, each trace span mirrors
    itself into it (same name/attrs), putting the scheduler's phases on
    the process timeline.
    """

    __slots__ = (
        "records", "counters", "solves", "cuts", "paper_metrics",
        "_stack", "_epoch",
    )

    def __init__(self):
        self.records = []
        # Plain tallies that must survive even when a pipeline stage
        # aborts mid-flight (e.g. warm-start hits before a _Degrade):
        # the scheduler reads them on both the success and fallback
        # paths when publishing per-routine metrics.
        self.counters = {}
        # Search telemetry (repro.obs.insight): one plain dict per ILP
        # solve (gap timeline, pseudocosts), one per attributed bundling
        # cut, and the routine's Table 1/2-shaped paper metrics. Plain
        # data so the trace pickles across the pool unchanged.
        self.solves = []
        self.cuts = []
        self.paper_metrics = None
        self._stack = []
        self._epoch = time.perf_counter()

    def span(self, name, **attrs):
        return _TraceSpan(self, name, attrs)

    def count(self, name, value=1):
        self.counters[name] = self.counters.get(name, 0) + value

    # -- queries ------------------------------------------------------------
    def durations(self):
        """Aggregate ``{name: {"seconds": total, "count": n}}``."""
        out = {}
        for record in self.records:
            slot = out.setdefault(record["name"], {"seconds": 0.0, "count": 0})
            slot["seconds"] += record["dur"]
            slot["count"] += 1
        return out

    def total_seconds(self, name):
        total = 0.0
        for record in self.records:
            if record["name"] == name:
                total += record["dur"]
        return total


class _TraceSpan:
    __slots__ = ("trace", "name", "attrs", "_start", "_mirror", "duration")

    def __init__(self, trace, name, attrs):
        self.trace = trace
        self.name = name
        self.attrs = attrs
        self._start = None
        self._mirror = None
        self.duration = None

    def set_attr(self, key, value):
        self.attrs[key] = value
        if self._mirror is not None:
            self._mirror.set_attr(key, value)

    def __enter__(self):
        if ENABLED:
            self._mirror = span(self.name, **self.attrs)
            self._mirror.__enter__()
        self.trace._stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration = time.perf_counter() - self._start
        trace = self.trace
        if trace._stack and trace._stack[-1] is self:
            trace._stack.pop()
        elif self in trace._stack:
            trace._stack.remove(self)
        parent = trace._stack[-1] if trace._stack else None
        record = {
            "name": self.name,
            "ts": self._start - trace._epoch,
            "dur": self.duration,
            "parent": parent.name if parent is not None else None,
        }
        if self.attrs:
            record["args"] = dict(self.attrs)
        trace.records.append(record)
        if self._mirror is not None:
            self._mirror.__exit__(exc_type, exc, tb)
            self._mirror = None  # recorders must never ride along a pickle
        return False


# Ambient activation: REPRO_OBS=1 (anything but ""/"0") turns recording
# on at import, in this process and — because the environment is
# inherited — in every pool worker it forks.
if os.environ.get(ENV_VAR, "").strip() not in ("", "0"):
    enable()
