"""Setup script.

Metadata lives here rather than in a ``[project]`` table because this
offline environment lacks the ``wheel`` package: with ``[project]`` present
pip insists on the PEP 517 path (which needs ``bdist_wheel``), while a plain
``setup.py`` lets ``pip install -e .`` use the legacy develop install.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "ILP-based global instruction scheduling for Itanium 2 "
        "(reproduction of Winkel, CGO 2004)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.11", "networkx>=3.0"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "tia-opt = repro.tools.optimize:main",
            "tia-report = repro.tools.report:main",
            "tia-bench-diff = repro.tools.bench_diff:main",
            "tia-serve = repro.serve.daemon:serve_main",
            "tia-cache = repro.serve.daemon:cache_main",
            "tia-client = repro.serve.client:client_main",
            "tia-telemetry = repro.obs.telemetry:main",
        ]
    },
)
