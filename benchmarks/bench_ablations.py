"""Ablation benches for design choices called out in DESIGN.md.

Not a paper artifact, but the knobs the paper discusses qualitatively:

* cycle-range reserve k (Sec. 6.1: "plus a constant reserve, usually
  k = 1") — how much head-room costs in model size and buys in quality;
* the code-motion distance bound (our search-space compaction);
* phase 2 (Sec. 5.5) — instruction-count cleanup cost;
* solver backend — HiGHS vs the pure-Python branch-and-bound on a small
  routine.

Run:  pytest benchmarks/bench_ablations.py --benchmark-only -q
"""

import pytest

from repro.sched.scheduler import ScheduleFeatures, optimize_function
from repro.tools.experiments import default_time_limit
from repro.workloads.spec_routines import build_spec_routine

SCALE = 0.5  # ablations compare configurations, not absolute sizes


def _features(**kw):
    base = dict(time_limit=default_time_limit(), max_hops=4)
    base.update(kw)
    return ScheduleFeatures(**base)


@pytest.mark.parametrize("reserve", [0, 1, 2], ids=["k0", "k1", "k2"])
def test_cycle_reserve(benchmark, reserve):
    fn = build_spec_routine("xfree", scale=SCALE)
    result = benchmark.pedantic(
        lambda: optimize_function(fn, _features(reserve=reserve)),
        rounds=1,
        iterations=1,
    )
    assert result.verification.ok
    # More head-room can only help the objective.
    assert result.static_reduction >= -1e-9


@pytest.mark.parametrize("hops", [2, 4, None], ids=["hops2", "hops4", "hopsAll"])
def test_motion_distance(benchmark, hops):
    fn = build_spec_routine("prune_match", scale=SCALE)
    result = benchmark.pedantic(
        lambda: optimize_function(fn, _features(max_hops=hops)),
        rounds=1,
        iterations=1,
    )
    assert result.verification.ok


@pytest.mark.parametrize("two_phase", [False, True], ids=["phase1", "phase1+2"])
def test_phase2_cost(benchmark, two_phase):
    fn = build_spec_routine("get_heap_head", scale=SCALE)
    result = benchmark.pedantic(
        lambda: optimize_function(fn, _features(two_phase=two_phase)),
        rounds=1,
        iterations=1,
    )
    assert result.verification.ok


@pytest.mark.parametrize("tight", [True, False], ids=["tight", "compact"])
def test_length_linking_mode(benchmark, tight):
    """OASIC-grade per-variable linking vs aggregated compact rows."""
    fn = build_spec_routine("xfree", scale=SCALE)
    result = benchmark.pedantic(
        lambda: optimize_function(
            fn, _features(tight_lengths=tight, two_phase=False)
        ),
        rounds=1,
        iterations=1,
    )
    assert result.verification.ok


@pytest.mark.parametrize("baseline", ["local", "greedy"])
def test_baseline_strength(benchmark, baseline):
    """How much of the gap a greedy global heuristic already closes."""
    fn = build_spec_routine("prune_match", scale=SCALE)
    result = benchmark.pedantic(
        lambda: optimize_function(fn, _features(baseline=baseline)),
        rounds=1,
        iterations=1,
    )
    assert result.verification.ok
    assert result.static_reduction >= -1e-9


@pytest.mark.parametrize("backend", ["highs", "bb"])
def test_solver_backend(benchmark, backend):
    # The pure-Python branch-and-bound is orders of magnitude slower than
    # HiGHS (that is the point of the comparison) — keep the model small.
    fn = build_spec_routine("firstone", scale=0.4)
    result = benchmark.pedantic(
        lambda: optimize_function(
            fn, _features(backend=backend, time_limit=60, two_phase=False)
        ),
        rounds=1,
        iterations=1,
    )
    assert result.verification.ok
