"""Helpers shared by the benchmark files (kept out of conftest so they
can be imported by name without colliding with other conftest modules)."""

import os


def parallel_workers():
    """Fan-out width for multi-routine sweeps (0/unset = one per CPU)."""
    configured = int(os.environ.get("REPRO_PARALLEL", "0"))
    return configured if configured > 0 else (os.cpu_count() or 1)


def fill_cache_parallel(experiment_cache, names, **kwargs):
    """Run the missing ``names`` via the process-pool fan-out.

    Failed routines are left out of the cache so callers hit the normal
    "missing routine" path (and its error) instead of a silent stub.
    """
    from repro.tools.parallel import run_routines_parallel

    missing = [n for n in names if n not in experiment_cache]
    if not missing:
        return []
    outcomes = run_routines_parallel(
        missing, max_workers=parallel_workers(), **kwargs
    )
    for outcome in outcomes:
        if outcome.ok:
            experiment_cache[outcome.name] = outcome.experiment
    return outcomes
