"""Regenerate Table 2: routine characteristics and the solution process.

Columns: #BB, #loops, speculation in/possible/used, ILP constraints and
variables, branch-and-bound nodes and solve time. The measured table is
written to ``benchmarks/results/table2.txt`` next to the paper's CPLEX
numbers.

The per-routine pipeline runs are shared with bench_table1 through the
session cache; this file benchmarks the *solver-facing* piece in
isolation (model construction + solve) for three representative
routines, which is what Table 2's last columns time.

Run:  pytest benchmarks/bench_table2.py --benchmark-only -q
"""

import pytest

from support import fill_cache_parallel
from repro.ilp import solve_model
from repro.ir.cfg import CfgInfo
from repro.ir.ddg import build_dependence_graph
from repro.ir.liveness import compute_liveness
from repro.ir.rename import rename_registers
from repro.sched.cycles import lengths_from_input
from repro.sched.ilp_formulation import SchedulingIlp
from repro.sched.list_scheduler import ListScheduler
from repro.sched.prep import clone_function, undo_speculation
from repro.sched.regions import build_region
from repro.machine.itanium2 import ITANIUM2
from repro.tools.experiments import default_time_limit, run_routine
from repro.tools.report import render_table2
from repro.workloads.spec_routines import SPEC_ROUTINES, build_spec_routine

ROUTINES = [spec.name for spec in SPEC_ROUTINES]
SOLVE_SAMPLES = ["firstone", "xfree", "get_heap_head"]


@pytest.mark.parametrize("name", SOLVE_SAMPLES)
def test_table2_model_build_and_solve(benchmark, name):
    """Time the Table 2 'solution process' piece: build + solve the ILP."""
    fn = build_spec_routine(name)
    work = clone_function(fn)
    undo_speculation(work)
    rename_registers(work)
    cfg = CfgInfo(work)
    ddg = build_dependence_graph(work, cfg, compute_liveness(work))
    input_schedule = ListScheduler().schedule(work, ddg)
    region = build_region(work, cfg, ddg, max_hops=4)
    lengths = lengths_from_input(input_schedule, work)

    def build_and_solve():
        ilp = SchedulingIlp(region, dict(lengths), ITANIUM2)
        model = ilp.generate()
        return solve_model(model, time_limit=default_time_limit())

    solution = benchmark.pedantic(build_and_solve, rounds=1, iterations=1)
    assert solution.status.has_solution


def test_render_table2(benchmark, experiment_cache, results_dir):
    """Write the measured-vs-published Table 2 artifact."""
    fill_cache_parallel(experiment_cache, ROUTINES)
    for name in ROUTINES:
        if name not in experiment_cache:
            experiment_cache[name] = run_routine(name)
    experiments = [experiment_cache[n] for n in ROUTINES]
    text = benchmark.pedantic(lambda: render_table2(experiments), rounds=1, iterations=1)
    (results_dir / "table2.txt").write_text(text + "\n")
    print()
    print(text)

    rows = [e.table2_row() for e in experiments]
    # Shape assertions against the paper's Table 2:
    # model sizes span the 10^2..10^5 range with qSort3 among the largest,
    sizes = {r["routine"]: r["constraints"] for r in rows}
    assert sizes["qSort3"] >= max(sizes["firstone"], sizes["xfree"])
    # most routines solve in few nodes; planted input speculation is
    # within the generator's best-effort tolerance of the Table 2 target.
    for row, spec in zip(rows, SPEC_ROUTINES):
        assert abs(row["spec_in"] - spec.input_spec_loads) <= 2
        assert row["spec_poss"] >= row["spec_out"]
