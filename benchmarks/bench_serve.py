#!/usr/bin/env python
"""Schedule-cache serving benchmark — the numbers behind ``repro.serve``.

Three sections, each a dict in ``BENCH_serve.json`` at the repo root:

* ``cold_vs_hit``   — per-routine cold-solve latency vs byte-identical
  exact-hit latency over the same store (``hit_speedup`` is the
  headline: an exact hit must be at least an order of magnitude
  cheaper than the solve it replaced, and ``byte_identical`` asserts
  the hit really is the same schedule);
* ``family_warm``   — cold solve vs a family-warm-started solve of the
  same routine under a different solver budget (same family, new
  exact key).  ``family_vs_cold_ratio`` ≈ 1.0 means the near-miss
  seeding is free; far above 1 would mean the hint hurts;
* ``hit_rate_sweep``— a replayed request mix over *generator*
  workloads (a pool of seeded synthetic routines, every one requested
  ``rounds`` times) through one service: hit rate, coalescing and
  store growth of a steady-state serving loop.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --out fresh.json

CI gates with the noise-aware diff: ``tia-bench-diff BENCH_serve.json
fresh.json --gate``.  Run with ``PYTHONHASHSEED=0`` (CI does) — solver
wall time follows dict/set iteration order, and the committed baseline
was recorded under a pinned hash seed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.ir.printer import format_function, format_schedule  # noqa: E402
from repro.sched.scheduler import ScheduleFeatures  # noqa: E402
from repro.serve.service import ScheduleService  # noqa: E402
from repro.workloads.generator import RoutineSpec, generate_routine  # noqa: E402
from repro.workloads.spec_routines import build_spec_routine  # noqa: E402

SMOKE_ROUTINES = ("xfree", "firstone", "get_heap_head")
FULL_ROUTINES = (
    "xfree", "firstone", "get_heap_head", "add_to_heap", "send_bits",
)
SMOKE_SEEDS = 4
FULL_SEEDS = 8


def _emitted(result):
    return format_function(result.fn) + "\n" + format_schedule(
        result.output_schedule, result.fn
    )


def _service(root, features):
    return ScheduleService(root, default_features=features)


def bench_cold_vs_hit(names, scale, time_limit, workdir):
    features = ScheduleFeatures(time_limit=time_limit)
    service = _service(workdir / "cold_vs_hit", features)
    fns = [build_spec_routine(name, scale=scale) for name in names]

    cold_seconds = 0.0
    cold_texts = []
    for fn in fns:
        t0 = time.perf_counter()
        outcome = service.request(fn)
        cold_seconds += time.perf_counter() - t0
        assert outcome.kind == "miss", outcome.kind
        cold_texts.append(_emitted(outcome.result))

    service.store.drop_mem()  # disk-hit numbers, not in-process-LRU ones
    hit_seconds = 0.0
    byte_identical = True
    for fn, cold_text in zip(fns, cold_texts):
        t0 = time.perf_counter()
        outcome = service.request(fn)
        hit_seconds += time.perf_counter() - t0
        byte_identical &= (
            outcome.kind == "exact" and _emitted(outcome.result) == cold_text
        )

    mem_seconds = 0.0  # second pass: served from the in-process front
    for fn in fns:
        t0 = time.perf_counter()
        service.request(fn)
        mem_seconds += time.perf_counter() - t0

    return {
        "routines": list(names),
        "scale": scale,
        "time_limit": time_limit,
        "cold_seconds": cold_seconds,
        "exact_hit_seconds": hit_seconds,
        "mem_hit_seconds": mem_seconds,
        "hit_speedup": cold_seconds / max(hit_seconds, 1e-9),
        "byte_identical": byte_identical,
    }


def bench_family_warm(names, scale, time_limit, workdir):
    cold_features = ScheduleFeatures(time_limit=time_limit)
    warm_features = ScheduleFeatures(time_limit=time_limit * 2)
    service = _service(workdir / "family_warm", cold_features)
    fns = [build_spec_routine(name, scale=scale) for name in names]

    cold_seconds = 0.0
    for fn in fns:
        t0 = time.perf_counter()
        outcome = service.request(fn)
        cold_seconds += time.perf_counter() - t0
        assert outcome.kind == "miss"

    warm_seconds = 0.0
    warm_hits = 0
    for fn in fns:
        t0 = time.perf_counter()
        outcome = service.request(fn, warm_features)
        warm_seconds += time.perf_counter() - t0
        warm_hits += outcome.kind == "family"

    return {
        "routines": list(names),
        "scale": scale,
        "time_limit": time_limit,
        "cold_seconds": cold_seconds,
        "family_warm_seconds": warm_seconds,
        "family_hits": warm_hits,
        "family_vs_cold_ratio": warm_seconds / max(cold_seconds, 1e-9),
    }


def bench_hit_rate_sweep(seeds, time_limit, rounds, workdir):
    """Generator-workload traffic: each seeded routine requested
    ``rounds`` times through one service."""
    features = ScheduleFeatures(time_limit=time_limit)
    service = _service(workdir / "hit_rate", features)
    fns = [
        generate_routine(RoutineSpec(
            name=f"gen{seed}", seed=seed, instructions=16, blocks=4, loops=1,
        ))
        for seed in range(seeds)
    ]

    kinds = {"exact": 0, "family": 0, "miss": 0}
    coalesced = 0
    t0 = time.perf_counter()
    for _round in range(rounds):
        outcomes = service.request_many(fns)
        for outcome in outcomes:
            kinds[outcome.kind] += 1
            coalesced += outcome.coalesced
    elapsed = time.perf_counter() - t0
    requests = rounds * len(fns)

    stats = service.store.stats()
    return {
        "seeds": seeds,
        "rounds": rounds,
        "time_limit": time_limit,
        "requests": requests,
        "hits": kinds,
        "coalesced": coalesced,
        "hit_rate": (kinds["exact"] + kinds["family"]) / requests,
        "total_seconds": elapsed,
        "store_entries": stats["entries"],
        "store_bytes": stats["bytes"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--out", default=str(REPO / "BENCH_serve.json"),
        help="snapshot path (merged under the 'full'/'smoke' mode key)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        names, scale, time_limit, rounds = SMOKE_ROUTINES, 0.3, 20.0, 3
        seeds = SMOKE_SEEDS
    else:
        names, scale, time_limit, rounds = FULL_ROUTINES, 1.0, 60.0, 3
        seeds = FULL_SEEDS
    mode = "smoke" if args.smoke else "full"

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench_serve_"))
    try:
        report = {
            "cold_vs_hit": bench_cold_vs_hit(names, scale, time_limit, workdir),
            "family_warm": bench_family_warm(names, scale, time_limit, workdir),
            "hit_rate_sweep": bench_hit_rate_sweep(
                seeds, time_limit, rounds, workdir
            ),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    print(json.dumps(report, indent=2, sort_keys=True))
    out_path = pathlib.Path(args.out)
    merged = json.loads(out_path.read_text()) if out_path.exists() else {}
    existing = merged.get(mode, {})
    existing.update(report)
    merged[mode] = existing
    out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)

    problems = []
    cvh = report["cold_vs_hit"]
    if not cvh["byte_identical"]:
        problems.append("exact hits were not byte-identical")
    if cvh["hit_speedup"] < 10.0:
        problems.append(
            f"exact-hit speedup {cvh['hit_speedup']:.1f}x < 10x"
        )
    if problems:
        print("FAIL: " + "; ".join(problems), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
